"""Constant folding over lowered Wasm bodies.

Folds adjacent constant computations — ``const``/``const``/``binop``,
``const``/``unop``, tests, comparisons and conversions — using the *same*
numeric semantics the interpreters share (:mod:`repro.core.semantics.numerics`),
so a folded module is observationally identical to the original.  Operations
that would trap at runtime (division by zero, invalid float-to-int
conversions) are deliberately left in place.

Constant conditions also fold control: ``const`` + ``br_if`` becomes ``br``
or nothing, ``const`` + ``if`` selects a branch statically, and ``const`` +
``select`` between two pure producers keeps only the taken operand.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.semantics import numerics
from ..wasm.ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    LocalGet,
    Relop,
    Testop,
    Unop,
    ValType,
    WasmFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WIf,
    WInstr,
    WSelect,
)
from .manager import FunctionPass
from .rewrite import map_sequences

_INT_BINOPS = {
    "add": numerics.int_add,
    "sub": numerics.int_sub,
    "mul": numerics.int_mul,
    "div_s": numerics.int_div_s,
    "div_u": numerics.int_div_u,
    "rem_s": numerics.int_rem_s,
    "rem_u": numerics.int_rem_u,
    "and": numerics.int_and,
    "or": numerics.int_or,
    "xor": numerics.int_xor,
    "shl": numerics.int_shl,
    "shr_s": numerics.int_shr_s,
    "shr_u": numerics.int_shr_u,
    "rotl": numerics.int_rotl,
    "rotr": numerics.int_rotr,
}

_INT_UNOPS = {
    "clz": numerics.int_clz,
    "ctz": numerics.int_ctz,
    "popcnt": numerics.int_popcnt,
}

#: Instructions that push exactly one value and have no side effects — safe to
#: delete when their result turns out to be unused.
_PURE_PRODUCERS = (Const, LocalGet, GlobalGet)


def _const_value(instr: Const) -> Union[int, float]:
    """The value a ``Const`` actually pushes at runtime (normalized)."""

    if instr.valtype.is_integer:
        return numerics.wrap(int(instr.value), instr.valtype.bit_width)
    return numerics.float_canon(float(instr.value), instr.valtype.bit_width)


def _fold_binop(instr: Binop, lhs: Const, rhs: Const) -> Optional[Const]:
    a, b = _const_value(lhs), _const_value(rhs)
    try:
        if instr.valtype.is_integer:
            result = _INT_BINOPS[instr.op](int(a), int(b), instr.valtype.bit_width)
        else:
            result = numerics.float_binop(instr.op, float(a), float(b), instr.valtype.bit_width)
    except numerics.NumericTrap:
        return None  # keep the trapping computation in place
    return Const(instr.valtype, result)


def _fold_unop(instr: Unop, operand: Const) -> Const:
    value = _const_value(operand)
    if instr.valtype.is_integer:
        result = _INT_UNOPS[instr.op](int(value), instr.valtype.bit_width)
    else:
        result = numerics.float_unop(instr.op, float(value), instr.valtype.bit_width)
    return Const(instr.valtype, result)


def _fold_relop(instr: Relop, lhs: Const, rhs: Const) -> Const:
    a, b = _const_value(lhs), _const_value(rhs)
    if instr.valtype.is_integer:
        base = instr.op.split("_")[0]
        signed = instr.op.endswith("_s")
        result = numerics.int_relop(base, int(a), int(b), instr.valtype.bit_width, signed)
    else:
        result = numerics.float_relop(instr.op, float(a), float(b))
    return Const(ValType.I32, result)


def _fold_cvtop(instr: Cvtop, operand: Const) -> Optional[Const]:
    value = _const_value(operand)
    try:
        if instr.op == "wrap":
            return Const(instr.target, numerics.wrap(int(value), 32))
        if instr.op in ("extend_s", "extend_u"):
            signed = instr.op == "extend_s"
            widened = numerics.to_signed(int(value), 32) if signed else numerics.to_unsigned(int(value), 32)
            return Const(instr.target, numerics.wrap(widened, 64))
        if instr.op in ("trunc_s", "trunc_u"):
            return Const(
                instr.target,
                numerics.trunc_float_to_int(float(value), instr.target.bit_width, instr.op == "trunc_s"),
            )
        if instr.op in ("convert_s", "convert_u"):
            return Const(
                instr.target,
                numerics.convert_int_to_float(
                    int(value), instr.source.bit_width, instr.op == "convert_s", instr.target.bit_width
                ),
            )
        if instr.op == "promote":
            return Const(instr.target, float(value))
        if instr.op == "demote":
            return Const(instr.target, numerics.float_canon(float(value), 32))
        if instr.op == "reinterpret":
            if instr.source.is_integer:
                return Const(instr.target, numerics.reinterpret_int_to_float(int(value), instr.source.bit_width))
            return Const(instr.target, numerics.reinterpret_float_to_int(float(value), instr.source.bit_width))
    except numerics.NumericTrap:
        return None
    return None


class ConstantFoldingPass(FunctionPass):
    """Fold constant arithmetic, comparisons, conversions and branches."""

    name = "constfold"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        rewrites = 0

        def fold(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            changed = True
            while changed:
                changed = False
                out: list[WInstr] = []
                i = 0
                while i < len(seq):
                    instr = seq[i]
                    replacement = self._match(out, instr)
                    if replacement is not None:
                        rewrites += 1
                        changed = True
                        out.extend(replacement)
                    else:
                        out.append(instr)
                    i += 1
                seq = tuple(out)
            return seq

        body = map_sequences(function.body, fold)
        if rewrites == 0:
            return function, 0
        from dataclasses import replace

        return replace(function, body=body), rewrites

    # -- pattern matching against the already-rebuilt prefix --------------------

    @staticmethod
    def _match(prefix: list[WInstr], instr: WInstr) -> Optional[list[WInstr]]:
        """If ``prefix + [instr]`` ends in a foldable pattern, pop the consumed
        producers off ``prefix`` and return the replacement instructions."""

        if isinstance(instr, Binop) and len(prefix) >= 2:
            rhs, lhs = prefix[-1], prefix[-2]
            if isinstance(lhs, Const) and isinstance(rhs, Const):
                folded = _fold_binop(instr, lhs, rhs)
                if folded is not None:
                    del prefix[-2:]
                    return [folded]
        elif isinstance(instr, Relop) and len(prefix) >= 2:
            rhs, lhs = prefix[-1], prefix[-2]
            if isinstance(lhs, Const) and isinstance(rhs, Const):
                del prefix[-2:]
                return [_fold_relop(instr, lhs, rhs)]
        elif isinstance(instr, Unop) and prefix and isinstance(prefix[-1], Const):
            operand = prefix.pop()
            return [_fold_unop(instr, operand)]
        elif isinstance(instr, Testop) and prefix and isinstance(prefix[-1], Const):
            operand = prefix.pop()
            value = numerics.int_eqz(int(_const_value(operand)), instr.valtype.bit_width)
            return [Const(ValType.I32, value)]
        elif isinstance(instr, Cvtop) and prefix and isinstance(prefix[-1], Const):
            folded = _fold_cvtop(instr, prefix[-1])
            if folded is not None:
                prefix.pop()
                return [folded]
        elif isinstance(instr, WBrIf) and prefix and isinstance(prefix[-1], Const):
            taken = int(_const_value(prefix.pop())) != 0
            return [WBr(instr.depth)] if taken else []
        elif isinstance(instr, WIf) and prefix and isinstance(prefix[-1], Const):
            taken = int(_const_value(prefix.pop())) != 0
            chosen = instr.then_body if taken else instr.else_body
            return [WBlock(instr.blocktype, chosen)]
        elif (
            isinstance(instr, WSelect)
            and len(prefix) >= 3
            and isinstance(prefix[-1], Const)
            and isinstance(prefix[-2], _PURE_PRODUCERS)
            and isinstance(prefix[-3], _PURE_PRODUCERS)
        ):
            condition = int(_const_value(prefix[-1]))
            first, second = prefix[-3], prefix[-2]
            del prefix[-3:]
            return [first if condition != 0 else second]
        return None
