"""Named optimization pipelines — the ``O0``/``O1``/``O2`` levels.

:class:`repro.api.CompileConfig` speaks in *levels*, not pass lists; this
module is where a level name expands to an ordered pass pipeline:

* ``O0`` — no optimization (the lowered module runs as emitted);
* ``O1`` — the cheap structural cleanups: unreachable-code removal, block
  flattening, spill/reload peepholes and dead-local pruning.  No dataflow
  passes, so it is fast enough to run on every compile;
* ``O2`` — the full default pipeline (:func:`repro.opt.default_passes`),
  adding i64-bank local coalescing, copy propagation, constant folding and
  ABI-preserving dead-function stubbing.

Every pipeline is semantics-preserving by contract: the tier-1 suite runs
each level through :func:`repro.opt.run_differential` against the
unoptimized twin on both execution engines and requires bit-identical
results, traps, memories and globals.

The table is a registry: projects may install additional named levels (e.g.
a size-focused ``Os``) via :func:`register_pipeline`;
``CompileConfig.validate`` accepts whatever is registered here.

Pass *names* carry semantic weight beyond reporting: the incremental
pipeline (:mod:`repro.compilepipe`) memoizes each (pass name, function
version) step, so a registered pass must be a pure function of the function
body, and two passes sharing a name must perform the same rewrite.  Levels
built from the same passes (``O1`` ⊂ ``O2``) therefore share per-function
units for the passes they have in common.
"""

from __future__ import annotations

from typing import Callable, List, Union

from .dce import DeadCodeEliminationPass, UnusedLocalPass
from .flatten import BlockFlatteningPass
from .manager import FunctionPass, ModulePass, default_passes
from .peephole import PeepholePass

Pipeline = List[Union[FunctionPass, ModulePass]]


def o0_passes() -> Pipeline:
    """``O0``: no optimization."""

    return []


def o1_passes() -> Pipeline:
    """``O1``: cheap structural cleanups only (no dataflow passes)."""

    return [
        DeadCodeEliminationPass(),
        BlockFlatteningPass(),
        PeepholePass(),
        UnusedLocalPass(),
    ]


PIPELINES: dict[str, Callable[[], Pipeline]] = {
    "O0": o0_passes,
    "O1": o1_passes,
    "O2": default_passes,
}


def pipeline_names() -> tuple[str, ...]:
    """The registered level names, sorted."""

    return tuple(sorted(PIPELINES))


def pipeline_passes(level: str) -> Pipeline:
    """Expand a level name to a fresh pass pipeline.

    Raises :class:`ValueError` naming the registered levels for an unknown
    name — the same contract :meth:`repro.api.CompileConfig.validate` and
    :func:`repro.wasm.create_engine` follow for their registries.
    """

    try:
        build = PIPELINES[level]
    except KeyError:
        raise ValueError(
            f"unknown optimization level {level!r}; registered levels: {', '.join(pipeline_names())}"
        ) from None
    return build()


def register_pipeline(name: str, build: Callable[[], Pipeline], *, replace: bool = False) -> None:
    """Install a custom named pipeline (``replace=True`` to override)."""

    if name in PIPELINES and not replace:
        raise ValueError(
            f"optimization level {name!r} is already registered; pass replace=True to override"
        )
    PIPELINES[name] = build
