"""The optimization pass manager.

The lowering compiler (:mod:`repro.lower.compiler`) is deliberately naive:
locals-splitting stores every RichWasm local across a bank of ``i64`` Wasm
locals with conversions at every access, erasure leaves dead shuffles behind,
and boxing spills values through scratch locals.  The passes in this package
clean the emitted :class:`~repro.wasm.ast.WasmModule` up after the fact.

A :class:`FunctionPass` rewrites one function body at a time and reports how
many rewrites it performed.  The :class:`PassManager` runs a named, ordered,
re-runnable pipeline of passes over every defined function of a module until
a fixpoint (or an iteration budget) is reached, collecting per-pass
statistics along the way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

from ..wasm.ast import WasmFunction, WasmModule, count_instrs


@dataclass
class PassStats:
    """Cumulative statistics for one named pass across a manager run."""

    name: str
    runs: int = 0
    rewrites: int = 0
    seconds: float = 0.0

    def merge_run(self, rewrites: int, seconds: float) -> None:
        self.runs += 1
        self.rewrites += rewrites
        self.seconds += seconds


class FunctionPass:
    """Base class for function-at-a-time rewrites.

    Subclasses implement :meth:`run` and return the rewritten function plus
    the number of rewrites applied (0 means "already at fixpoint here").
    """

    name: str = "pass"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        raise NotImplementedError


class ModulePass:
    """Base class for whole-module rewrites (e.g. dead-function analysis)."""

    name: str = "module-pass"

    def run_module(self, module: WasmModule) -> tuple[WasmModule, int]:
        raise NotImplementedError


@dataclass
class OptimizationResult:
    """The outcome of running a pass pipeline over a module."""

    module: WasmModule
    stats: list[PassStats]
    iterations: int
    instructions_before: int
    instructions_after: int

    @property
    def instructions_removed(self) -> int:
        return self.instructions_before - self.instructions_after

    @property
    def reduction(self) -> float:
        """Fraction of instructions removed (0.0 when the module was empty)."""

        if self.instructions_before == 0:
            return 0.0
        return self.instructions_removed / self.instructions_before

    def format_report(self) -> str:
        lines = [
            f"optimization: {self.instructions_before} -> {self.instructions_after} instructions"
            f" ({self.reduction:.1%} removed, {self.iterations} iteration(s))",
            f"{'pass':<20} {'runs':>6} {'rewrites':>9} {'seconds':>9}",
        ]
        for stats in self.stats:
            lines.append(f"{stats.name:<20} {stats.runs:>6} {stats.rewrites:>9} {stats.seconds:>9.4f}")
        return "\n".join(lines)


class PassManager:
    """Runs an ordered pipeline of function passes to a fixpoint."""

    def __init__(
        self,
        passes: Optional[Sequence[Union[FunctionPass, ModulePass]]] = None,
        *,
        max_iterations: int = 8,
        validate: bool = True,
        unit_cache=None,
    ) -> None:
        self.passes: list[Union[FunctionPass, ModulePass]] = (
            list(passes) if passes is not None else default_passes()
        )
        self.max_iterations = max_iterations
        self.validate = validate
        # A repro.compilepipe.FunctionUnitCache: memoizes each (pass name,
        # function version) step.  Sound because FunctionPasses are pure
        # functions of the body — they receive the module but none of the
        # shipped passes reads it.
        self.unit_cache = unit_cache
        names = [p.name for p in self.passes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate pass names in pipeline: {names}")

    def run(self, module: WasmModule) -> OptimizationResult:
        stats = {p.name: PassStats(p.name) for p in self.passes}
        before = module.instruction_count()
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            module, rewrites = self._run_pipeline_once(module, stats)
            if rewrites == 0:
                break
        if self.validate:
            from ..wasm.validation import validate_module

            validate_module(module, unit_cache=self.unit_cache)
        return OptimizationResult(
            module=module,
            stats=list(stats.values()),
            iterations=iterations,
            instructions_before=before,
            instructions_after=module.instruction_count(),
        )

    def _run_function_pass(self, pass_: FunctionPass, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        units = self.unit_cache
        if units is None:
            return pass_.run(function, module)
        key = units.optimize_key(function, pass_.name)
        cached = units.get("optimize", key)
        if cached is None:
            cached = pass_.run(function, module)
            units.put("optimize", key, cached)
        return cached

    def _run_pipeline_once(self, module: WasmModule, stats: dict[str, PassStats]) -> tuple[WasmModule, int]:
        total_rewrites = 0
        for pass_ in self.passes:
            started = time.perf_counter()
            if isinstance(pass_, ModulePass):
                module, rewrites = pass_.run_module(module)
            else:
                rewrites = 0
                functions = list(module.functions)
                changed = False
                for index, function in enumerate(functions):
                    if not isinstance(function, WasmFunction):
                        continue
                    rewritten, count = self._run_function_pass(pass_, function, module)
                    if count:
                        functions[index] = rewritten
                        rewrites += count
                        changed = True
                if changed:
                    module = replace(module, functions=tuple(functions))
            stats[pass_.name].merge_run(rewrites, time.perf_counter() - started)
            total_rewrites += rewrites
        return module, total_rewrites


def default_passes() -> list[Union[FunctionPass, ModulePass]]:
    """The default pipeline, in dependency order.

    Unreachable-code removal first (cheap, exposes dead locals), block
    flattening (merges sequences, exposing matches to everything after it),
    then local coalescing (rewrites the i64 local banks, removing the
    per-access conversions locals-splitting inserts), copy propagation (kills
    the prologue's parameter-to-bank copies once coalescing made them
    same-typed), constant folding, the peephole pass (which fuses the
    ``local.set``/``local.get`` round-trips the other passes expose),
    dead-local pruning to drop the storage the earlier passes orphaned, and
    finally dead-function stubbing at module scope.
    """

    from .coalesce import LocalCoalescingPass
    from .constfold import ConstantFoldingPass
    from .copyprop import CopyPropagationPass
    from .dce import DeadCodeEliminationPass, UnusedLocalPass
    from .deadfuncs import DeadFunctionPass
    from .flatten import BlockFlatteningPass
    from .peephole import PeepholePass

    return [
        DeadCodeEliminationPass(),
        BlockFlatteningPass(),
        LocalCoalescingPass(),
        CopyPropagationPass(),
        ConstantFoldingPass(),
        PeepholePass(),
        UnusedLocalPass(),
        DeadFunctionPass(),
    ]


def optimize_module(
    module: WasmModule,
    passes: Optional[Sequence[FunctionPass]] = None,
    *,
    max_iterations: int = 8,
    validate: bool = True,
    unit_cache=None,
) -> OptimizationResult:
    """Optimize a lowered module with the default (or a custom) pipeline."""

    return PassManager(
        passes, max_iterations=max_iterations, validate=validate, unit_cache=unit_cache
    ).run(module)
