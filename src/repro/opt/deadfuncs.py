"""Dead-function elimination (ABI-preserving).

Functions unreachable from any root — exports, the function table, the
``start`` function — can never execute.  Their bodies are replaced by a
single ``unreachable`` stub rather than removed outright, so every function
index in the module (calls, table entries, the lowering's
:class:`~repro.lower.runtime.RuntimeLayout` bookkeeping) stays valid.

The classic example: ML modules never free memory, so the emitted
``rw_free`` allocator half is dead weight in every ML-only module.
"""

from __future__ import annotations

from dataclasses import replace

from ..wasm.ast import (
    WasmFunction,
    WasmModule,
    WCall,
    WUnreachable,
    count_instrs,
)
from .manager import ModulePass
from .rewrite import iter_sequences


def _callees(function: WasmFunction) -> set[int]:
    indices: set[int] = set()
    for seq in iter_sequences(function.body):
        for instr in seq:
            if isinstance(instr, WCall):
                indices.add(instr.func_index)
    return indices


def reachable_functions(module: WasmModule) -> set[int]:
    """Function indices reachable from exports, the table, and ``start``."""

    roots = set(module.table.entries)
    if module.start is not None:
        roots.add(module.start)
    for index, function in enumerate(module.functions):
        if function.exports:
            roots.add(index)
    seen: set[int] = set()
    frontier = list(roots)
    while frontier:
        index = frontier.pop()
        if index in seen:
            continue
        seen.add(index)
        function = module.functions[index]
        if isinstance(function, WasmFunction):
            frontier.extend(_callees(function) - seen)
    return seen


class DeadFunctionPass(ModulePass):
    """Stub out functions no export, table entry or start chain can reach."""

    name = "deadfuncs"

    def run_module(self, module: WasmModule) -> tuple[WasmModule, int]:
        live = reachable_functions(module)
        rewrites = 0
        functions = list(module.functions)
        for index, function in enumerate(functions):
            if index in live or not isinstance(function, WasmFunction):
                continue
            if len(function.body) == 1 and isinstance(function.body[0], WUnreachable):
                continue  # already stubbed
            # Count at least 1 so a one-instruction dead body still registers
            # as a change (otherwise the stub would be silently discarded).
            rewrites += max(1, count_instrs(function.body) - 1)
            functions[index] = replace(function, locals=(), body=(WUnreachable(),))
        if rewrites == 0:
            return module, 0
        return replace(module, functions=tuple(functions)), rewrites
