"""Peephole simplification of short instruction idioms.

The patterns target what the lowering compiler actually emits — spill/reload
traffic and bank conversions:

* ``local.set i`` + ``local.get i``     → ``local.tee i``
* ``local.tee i`` + ``drop``            → ``local.set i``
* ``local.tee i`` + ``local.set i``     → ``local.set i``
* ``local.get i`` + ``local.set i``     → (nothing)
* pure producer + ``drop``              → (nothing)
* ``nop``                               → (nothing)
* inverse conversion pairs              → (nothing), e.g.
  ``i64.extend_i32_u`` + ``i32.wrap_i64`` or the ``reinterpret`` round-trips
  that are bit-exact in both directions.
* spill/reload shuffles over two pure producers, when the scratch locals are
  read nowhere else: the identity restore ``p1 p2 set a set b get b get a``
  → ``p1 p2`` and the swap ``p1 p2 set a set b get a get b`` → ``p2 p1``
  (both produced by the lowering's ``_spill``/``_reload`` discipline).

The conversion-pair removals are sound because the interpreter normalizes
function arguments and constants, so every ``i32`` value on the stack is
already in wrapped (unsigned) form — the extend/wrap round-trip is the
identity on it.  Integer→float ``reinterpret`` round-trips are *not* removed:
re-quieting of NaN payloads in the float domain could be observable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..wasm.ast import (
    Const,
    Cvtop,
    GlobalGet,
    LocalGet,
    LocalSet,
    LocalTee,
    ValType,
    WasmFunction,
    WasmModule,
    WDrop,
    WInstr,
    WNop,
)
from .manager import FunctionPass
from .rewrite import map_sequences

_PURE_PRODUCERS = (Const, LocalGet, GlobalGet)

#: ``first`` then ``second`` is the identity on every normalized stack value.
_IDENTITY_CONV_PAIRS = {
    (Cvtop(ValType.I64, "extend_u", ValType.I32), Cvtop(ValType.I32, "wrap", ValType.I64)),
    (Cvtop(ValType.I64, "extend_s", ValType.I32), Cvtop(ValType.I32, "wrap", ValType.I64)),
    # float -> int bits -> float: exact bit round-trips.
    (Cvtop(ValType.I32, "reinterpret", ValType.F32), Cvtop(ValType.F32, "reinterpret", ValType.I32)),
    (Cvtop(ValType.I64, "reinterpret", ValType.F64), Cvtop(ValType.F64, "reinterpret", ValType.I64)),
}


class PeepholePass(FunctionPass):
    """Window-of-two simplifications over every instruction sequence."""

    name = "peephole"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        rewrites = 0
        # Read counts over the whole body, for the shuffle windows.  Rewrites
        # during this run only ever *remove* reads, so the counts stay a safe
        # over-approximation.
        reads: dict[int, int] = {}
        from .rewrite import iter_sequences

        for seq in iter_sequences(function.body):
            for instr in seq:
                if isinstance(instr, LocalGet):
                    reads[instr.index] = reads.get(instr.index, 0) + 1

        def simplify(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            for instr in seq:
                replacement = self._match(out, instr, reads)
                if replacement is not None:
                    rewrites += 1
                    out.extend(replacement)
                else:
                    out.append(instr)
            return tuple(out)

        body = map_sequences(function.body, simplify)
        if rewrites == 0:
            return function, 0
        return replace(function, body=body), rewrites

    @staticmethod
    def _match(prefix: list[WInstr], instr: WInstr, reads: dict[int, int]) -> Optional[list[WInstr]]:
        """Match ``prefix[-1], instr`` windows; pops consumed prefix entries."""

        if isinstance(instr, WNop):
            return []
        shuffled = PeepholePass._match_shuffle(prefix, instr, reads)
        if shuffled is not None:
            return shuffled
        previous = prefix[-1] if prefix else None
        if isinstance(instr, LocalGet):
            if isinstance(previous, LocalSet) and previous.index == instr.index:
                prefix.pop()
                return [LocalTee(instr.index)]
        elif isinstance(instr, LocalSet):
            if isinstance(previous, LocalGet) and previous.index == instr.index:
                prefix.pop()
                return []
            if isinstance(previous, LocalTee) and previous.index == instr.index:
                prefix.pop()
                return [LocalSet(instr.index)]
        elif isinstance(instr, WDrop):
            if isinstance(previous, LocalTee):
                prefix.pop()
                return [LocalSet(previous.index)]
            if isinstance(previous, _PURE_PRODUCERS):
                prefix.pop()
                return []
        elif isinstance(instr, Cvtop):
            if isinstance(previous, Cvtop) and (previous, instr) in _IDENTITY_CONV_PAIRS:
                prefix.pop()
                return []
        return None

    @staticmethod
    def _match_shuffle(prefix: list[WInstr], instr: WInstr, reads: dict[int, int]) -> Optional[list[WInstr]]:
        """Spill/reload identity-restores and swaps over two pure producers.

        The identity restore arrives as ``p1 p2 set_a tee_b get_a``: its
        ``set_b``/``get_b`` core was already fused to ``tee_b`` by the
        window-of-two rule, leaving ``b``'s store dead.  The swap keeps both
        ``set``s because its reloads are not adjacent to them.
        """

        if not isinstance(instr, LocalGet):
            return None
        if len(prefix) >= 4:
            p1, p2, set_a, tee_b = prefix[-4:]
            if (
                isinstance(p1, _PURE_PRODUCERS)
                and isinstance(p2, _PURE_PRODUCERS)
                and isinstance(set_a, LocalSet)
                and isinstance(tee_b, LocalTee)
                and set_a.index != tee_b.index
                and instr.index == set_a.index
                and reads.get(set_a.index, 0) == 1
                and reads.get(tee_b.index, 0) == 0
            ):
                # p1 p2, a := v2, b := tee v1, push a (v2): the stack ends as
                # [v1, v2] and neither scratch local is read again — identity.
                del prefix[-4:]
                return [p1, p2]
        if len(prefix) >= 5:
            p1, p2, set_a, set_b, get_a = prefix[-5:]
            if (
                isinstance(p1, _PURE_PRODUCERS)
                and isinstance(p2, _PURE_PRODUCERS)
                and isinstance(set_a, LocalSet)
                and isinstance(set_b, LocalSet)
                and isinstance(get_a, LocalGet)
                and set_a.index != set_b.index
                and get_a.index == set_a.index
                and instr.index == set_b.index
                and reads.get(set_a.index, 0) == 1
                and reads.get(set_b.index, 0) == 1
            ):
                # p1 p2, a := v2, b := v1, push a (v2), push b (v1): a swap of
                # the two produced values — re-emit the producers reversed.
                del prefix[-5:]
                return [p2, p1]
        return None
