"""Block flattening: splice out ``block`` wrappers nobody branches to.

The lowering wraps ``mem.unpack``/``exist.unpack`` bodies and several other
constructs in ``block``s for label bookkeeping, but many of them are never
the target of a branch.  Such a block is transparent — its parameters and
results just pass through the operand stack — so its body can be spliced
into the enclosing sequence.  Branches inside that cross the removed level
have their depths decremented.

Flattening also merges instruction sequences, exposing additional matches to
the peephole and coalescing passes.
"""

from __future__ import annotations

from dataclasses import replace

from ..wasm.ast import (
    WasmFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WIf,
    WInstr,
    WLoop,
)
from .manager import FunctionPass
from .rewrite import map_sequences

_NESTING = (WBlock, WLoop, WIf)


def _targets_level(body: tuple[WInstr, ...], level: int) -> bool:
    """Does any branch in ``body`` target the frame ``level`` labels out?"""

    for instr in body:
        if isinstance(instr, (WBr, WBrIf)) and instr.depth == level:
            return True
        if isinstance(instr, WBrTable) and (instr.default == level or level in instr.depths):
            return True
        if isinstance(instr, (WBlock, WLoop)):
            if _targets_level(instr.body, level + 1):
                return True
        elif isinstance(instr, WIf):
            if _targets_level(instr.then_body, level + 1) or _targets_level(instr.else_body, level + 1):
                return True
    return False


def _shift_branches(body: tuple[WInstr, ...], level: int) -> tuple[WInstr, ...]:
    """Decrement branch depths that cross the removed frame at ``level``."""

    out: list[WInstr] = []
    for instr in body:
        if isinstance(instr, (WBr, WBrIf)) and instr.depth > level:
            out.append(type(instr)(instr.depth - 1))
        elif isinstance(instr, WBrTable):
            out.append(
                WBrTable(
                    tuple(d - 1 if d > level else d for d in instr.depths),
                    instr.default - 1 if instr.default > level else instr.default,
                )
            )
        elif isinstance(instr, (WBlock, WLoop)):
            out.append(replace(instr, body=_shift_branches(instr.body, level + 1)))
        elif isinstance(instr, WIf):
            out.append(
                replace(
                    instr,
                    then_body=_shift_branches(instr.then_body, level + 1),
                    else_body=_shift_branches(instr.else_body, level + 1),
                )
            )
        else:
            out.append(instr)
    return tuple(out)


class BlockFlatteningPass(FunctionPass):
    """Inline ``block`` bodies whose label is never branched to."""

    name = "flatten"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        rewrites = 0

        def flatten(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            for instr in seq:
                if isinstance(instr, WBlock) and not _targets_level(instr.body, 0):
                    rewrites += 1
                    out.extend(_shift_branches(instr.body, 0))
                else:
                    out.append(instr)
            return tuple(out)

        body = map_sequences(function.body, flatten)
        if rewrites == 0:
            return function, 0
        return replace(function, body=body), rewrites
