"""Copy propagation for the single-assignment copies the prologue emits.

The lowering's function prologue copies every Wasm parameter into its local
bank (``local.get p`` / ``local.set b``), and after coalescing has stripped
the conversions these are plain same-typed copies.  When the copy is the
*only* write to ``b``, the source is never written at all, and every read of
``b`` happens after the copy, each ``local.get b`` can read ``p`` directly
and the copy disappears (the orphaned local is later pruned by the
dead-local pass).

Restricting copies to the top-level body sequence gives dominance for free:
function-level control flow cannot jump backwards past an earlier top-level
instruction, so every read in the suffix observes the copy.
"""

from __future__ import annotations

from dataclasses import replace

from ..wasm.ast import (
    LocalGet,
    LocalSet,
    LocalTee,
    ValType,
    WasmFunction,
    WasmModule,
    WInstr,
)
from .manager import FunctionPass
from .rewrite import iter_sequences, map_sequences


def _local_type(function: WasmFunction, index: int) -> ValType:
    params = function.functype.params
    if index < len(params):
        return params[index]
    return function.locals[index - len(params)]


class CopyPropagationPass(FunctionPass):
    """Forward never-written sources through single-assignment copies."""

    name = "copyprop"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        writes: dict[int, int] = {}
        reads: dict[int, int] = {}
        for seq in iter_sequences(function.body):
            for instr in seq:
                if isinstance(instr, (LocalSet, LocalTee)):
                    writes[instr.index] = writes.get(instr.index, 0) + 1
                elif isinstance(instr, LocalGet):
                    reads[instr.index] = reads.get(instr.index, 0) + 1

        body = function.body
        # Copy targets found at top level: target -> source.
        forwarded: dict[int, int] = {}
        reads_seen: set[int] = set()
        kept: list[WInstr] = []
        for position, instr in enumerate(body):
            if (
                isinstance(instr, LocalSet)
                and kept
                and isinstance(kept[-1], LocalGet)
                and instr.index != kept[-1].index
                and writes.get(instr.index, 0) == 1
                and writes.get(kept[-1].index, 0) == 0
                and instr.index not in reads_seen
                and instr.index not in forwarded
                and kept[-1].index not in forwarded
                and _local_type(function, instr.index) is _local_type(function, kept[-1].index)
            ):
                source = kept.pop().index
                forwarded[instr.index] = source
                continue
            kept.append(instr)
            for seq in iter_sequences((instr,)):
                for nested in seq:
                    if isinstance(nested, LocalGet):
                        reads_seen.add(nested.index)

        if not forwarded:
            return function, 0

        rewrites = len(forwarded)

        def redirect(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            for instr in seq:
                if isinstance(instr, LocalGet) and instr.index in forwarded:
                    rewrites += 1
                    out.append(LocalGet(forwarded[instr.index]))
                else:
                    out.append(instr)
            return tuple(out)

        return replace(function, body=map_sequences(tuple(kept), redirect)), rewrites
