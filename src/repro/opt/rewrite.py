"""Shared instruction-tree rewriting helpers for the optimization passes.

Wasm function bodies are immutable tuples of instructions with nested
sequences inside ``block``/``loop``/``if``.  Passes express themselves as
*sequence rewriters*: a function taking one flat instruction sequence and
returning a new one.  :func:`map_sequences` applies such a rewriter to every
sequence in a body, bottom-up, so a rewriter never needs to recurse itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Sequence

from ..wasm.ast import (
    LocalGet,
    LocalSet,
    LocalTee,
    WBlock,
    WIf,
    WInstr,
    WLoop,
)

SequenceRewriter = Callable[[tuple[WInstr, ...]], tuple[WInstr, ...]]


def map_sequences(body: Sequence[WInstr], rewriter: SequenceRewriter) -> tuple[WInstr, ...]:
    """Apply ``rewriter`` to every instruction sequence in ``body``, bottom-up."""

    rebuilt: list[WInstr] = []
    for instr in body:
        if isinstance(instr, (WBlock, WLoop)):
            rebuilt.append(replace(instr, body=map_sequences(instr.body, rewriter)))
        elif isinstance(instr, WIf):
            rebuilt.append(
                replace(
                    instr,
                    then_body=map_sequences(instr.then_body, rewriter),
                    else_body=map_sequences(instr.else_body, rewriter),
                )
            )
        else:
            rebuilt.append(instr)
    return rewriter(tuple(rebuilt))


def iter_sequences(body: Sequence[WInstr]) -> Iterable[tuple[WInstr, ...]]:
    """Yield every instruction sequence in ``body`` (including ``body`` itself)."""

    for instr in body:
        if isinstance(instr, (WBlock, WLoop)):
            yield from iter_sequences(instr.body)
        elif isinstance(instr, WIf):
            yield from iter_sequences(instr.then_body)
            yield from iter_sequences(instr.else_body)
    yield tuple(body)


def remap_locals(body: Sequence[WInstr], mapping: dict[int, int]) -> tuple[WInstr, ...]:
    """Renumber every local reference in ``body`` through ``mapping``."""

    def rewrite(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
        out: list[WInstr] = []
        for instr in seq:
            if isinstance(instr, (LocalGet, LocalSet, LocalTee)):
                out.append(type(instr)(mapping[instr.index]))
            else:
                out.append(instr)
        return tuple(out)

    return map_sequences(body, rewrite)
