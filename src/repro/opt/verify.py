"""Differential verification of optimized modules.

The evidence standing in for a translation-validation proof: run an optimized
module and its unoptimized twin side by side in
:class:`~repro.wasm.interpreter.WasmInterpreter` — same exports, same
arguments, in the same order on one shared pair of instances — and require
identical observable behaviour: results (bit-exact, NaN-aware), traps, and
optionally the final linear memory and globals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..wasm.ast import WasmModule
from ..wasm.interpreter import HostFunction, WasmInterpreter, WasmTrap, WasmValue

HostImports = dict[tuple[str, str], HostFunction]
HostImportFactory = Callable[[], HostImports]


@dataclass(frozen=True)
class Invocation:
    """One export call to replay on both modules."""

    export: str
    args: tuple[WasmValue, ...] = ()


@dataclass(frozen=True)
class CallOutcome:
    export: str
    args: tuple[WasmValue, ...]
    baseline: Union[list[WasmValue], str]  # results, or the trap message
    candidate: Union[list[WasmValue], str]
    matches: bool


@dataclass
class DifferentialReport:
    outcomes: list[CallOutcome] = field(default_factory=list)
    state_matches: bool = True

    @property
    def ok(self) -> bool:
        return self.state_matches and all(outcome.matches for outcome in self.outcomes)

    def mismatches(self) -> list[CallOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.matches]

    def format_report(self) -> str:
        lines = [f"differential check: {len(self.outcomes)} call(s), ok={self.ok}"]
        for outcome in self.mismatches():
            lines.append(
                f"  MISMATCH {outcome.export}{outcome.args!r}: "
                f"baseline={outcome.baseline!r} candidate={outcome.candidate!r}"
            )
        if not self.state_matches:
            lines.append("  MISMATCH in final memory/global state")
        return "\n".join(lines)


def _values_equal(a: Sequence[WasmValue], b: Sequence[WasmValue]) -> bool:
    """Bit-exact comparison: floats by their f64 bit pattern, so NaN payloads
    and signed zeros must agree; an int/float type divergence is a mismatch."""

    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if isinstance(left, float) != isinstance(right, float):
            return False
        if isinstance(left, float):
            if struct.pack("<d", left) != struct.pack("<d", right):
                return False
        elif left != right:
            return False
    return True


def _resolve_hosts(host_imports: Union[HostImports, HostImportFactory, None]) -> HostImports:
    if host_imports is None:
        return {}
    if callable(host_imports):
        return host_imports()
    return host_imports


def run_differential(
    baseline: WasmModule,
    candidate: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    *,
    host_imports: Union[HostImports, HostImportFactory, None] = None,
    compare_state: bool = True,
    max_steps: Optional[int] = None,
) -> DifferentialReport:
    """Replay ``calls`` on both modules and compare every observation.

    ``host_imports`` may be a dict (shared by both runs — fine for stateless
    hosts) or a zero-argument factory called once per module so stateful
    hosts do not leak observations across the two runs.
    """

    normalized_calls = [call if isinstance(call, Invocation) else Invocation(call[0], tuple(call[1])) for call in calls]

    baseline_interp = WasmInterpreter(max_steps=max_steps)
    candidate_interp = WasmInterpreter(max_steps=max_steps)
    baseline_instance = baseline_interp.instantiate(baseline, _resolve_hosts(host_imports))
    candidate_instance = candidate_interp.instantiate(candidate, _resolve_hosts(host_imports))

    report = DifferentialReport()
    for call in normalized_calls:
        outcomes: list[Union[list[WasmValue], str]] = []
        for interp, instance in ((baseline_interp, baseline_instance), (candidate_interp, candidate_instance)):
            try:
                outcomes.append(interp.invoke(instance, call.export, list(call.args)))
            except WasmTrap as trap:
                outcomes.append(f"trap: {trap}")
        first, second = outcomes
        if isinstance(first, str) or isinstance(second, str):
            # Both must trap, for the same reason.
            matches = first == second
        else:
            matches = _values_equal(first, second)
        report.outcomes.append(CallOutcome(call.export, call.args, first, second, matches))

    if compare_state:
        baseline_memory = bytes(baseline_instance.memory.data) if baseline_instance.memory else b""
        candidate_memory = bytes(candidate_instance.memory.data) if candidate_instance.memory else b""
        report.state_matches = baseline_memory == candidate_memory and _values_equal(
            baseline_instance.globals, candidate_instance.globals
        )
    return report


def verify_optimization(
    module: WasmModule,
    optimized: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    **kwargs,
) -> DifferentialReport:
    """Alias of :func:`run_differential` with the argument roles spelled out."""

    return run_differential(module, optimized, calls, **kwargs)
