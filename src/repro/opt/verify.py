"""Differential verification of optimized modules and execution engines.

The evidence standing in for a translation-validation proof: run an optimized
module and its unoptimized twin side by side in
:class:`~repro.wasm.interpreter.WasmInterpreter` — same exports, same
arguments, in the same order on one shared pair of instances — and require
identical observable behaviour: results (bit-exact, NaN-aware), traps, and
optionally the final linear memory and globals.

The same machinery doubles as the engine cross-check: with the execution
engine now pluggable (:mod:`repro.wasm.engine`), ``engine=`` pins both runs
to one engine, and :func:`run_engine_cross_check` replays one module on
every registered engine (tree-walker, flat VM, and the compiled tier by
default) and requires all of them to agree on every observation — including
the cumulative step count, so ``max_steps`` budgets trap at the same
instruction on any engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..wasm.ast import WasmModule
from ..wasm.interpreter import HostFunction, WasmInterpreter, WasmTrap, WasmValue

HostImports = dict[tuple[str, str], HostFunction]
HostImportFactory = Callable[[], HostImports]


@dataclass(frozen=True)
class Invocation:
    """One export call to replay on both modules."""

    export: str
    args: tuple[WasmValue, ...] = ()


@dataclass(frozen=True)
class CallOutcome:
    export: str
    args: tuple[WasmValue, ...]
    baseline: Union[list[WasmValue], str]  # results, or the trap message
    candidate: Union[list[WasmValue], str]
    matches: bool


@dataclass
class DifferentialReport:
    outcomes: list[CallOutcome] = field(default_factory=list)
    state_matches: bool = True
    steps_match: bool = True
    baseline_steps: int = 0
    candidate_steps: int = 0

    @property
    def ok(self) -> bool:
        return self.state_matches and self.steps_match and all(outcome.matches for outcome in self.outcomes)

    def mismatches(self) -> list[CallOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.matches]

    def format_report(self) -> str:
        lines = [f"differential check: {len(self.outcomes)} call(s), ok={self.ok}"]
        for outcome in self.mismatches():
            lines.append(
                f"  MISMATCH {outcome.export}{outcome.args!r}: "
                f"baseline={outcome.baseline!r} candidate={outcome.candidate!r}"
            )
        if not self.state_matches:
            lines.append("  MISMATCH in final memory/global state")
        if not self.steps_match:
            lines.append(
                f"  MISMATCH in step counts: baseline={self.baseline_steps} candidate={self.candidate_steps}"
            )
        return "\n".join(lines)


def _values_equal(a: Sequence[WasmValue], b: Sequence[WasmValue]) -> bool:
    """Bit-exact comparison: floats by their f64 bit pattern, so NaN payloads
    and signed zeros must agree; an int/float type divergence is a mismatch."""

    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if isinstance(left, float) != isinstance(right, float):
            return False
        if isinstance(left, float):
            if struct.pack("<d", left) != struct.pack("<d", right):
                return False
        elif left != right:
            return False
    return True


def _resolve_hosts(host_imports: Union[HostImports, HostImportFactory, None]) -> HostImports:
    if host_imports is None:
        return {}
    if callable(host_imports):
        return host_imports()
    return host_imports


def _compare_runs(
    baseline_interp: WasmInterpreter,
    baseline_instance,
    candidate_interp: WasmInterpreter,
    candidate_instance,
    calls: Sequence[Invocation],
    *,
    compare_state: bool,
    compare_steps: bool = False,
) -> DifferentialReport:
    report = DifferentialReport()
    for call in calls:
        outcomes: list[Union[list[WasmValue], str]] = []
        for interp, instance in ((baseline_interp, baseline_instance), (candidate_interp, candidate_instance)):
            try:
                outcomes.append(interp.invoke(instance, call.export, list(call.args)))
            except WasmTrap as trap:
                outcomes.append(f"trap: {trap}")
        first, second = outcomes
        if isinstance(first, str) or isinstance(second, str):
            # Both must trap, for the same reason.
            matches = first == second
        else:
            matches = _values_equal(first, second)
        report.outcomes.append(CallOutcome(call.export, call.args, first, second, matches))

    if compare_state:
        baseline_memory = bytes(baseline_instance.memory.data) if baseline_instance.memory else b""
        candidate_memory = bytes(candidate_instance.memory.data) if candidate_instance.memory else b""
        report.state_matches = baseline_memory == candidate_memory and _values_equal(
            baseline_instance.globals, candidate_instance.globals
        )
    report.baseline_steps = baseline_interp.steps
    report.candidate_steps = candidate_interp.steps
    if compare_steps:
        report.steps_match = baseline_interp.steps == candidate_interp.steps
    return report


def _normalize_calls(calls: Sequence[Union[Invocation, tuple]]) -> list[Invocation]:
    return [call if isinstance(call, Invocation) else Invocation(call[0], tuple(call[1])) for call in calls]


def _fresh_engine_spec(engine, max_steps: Optional[int]):
    """Make an engine spec safe to use for two independent runs.

    Passing one :class:`~repro.wasm.engine.ExecutionEngine` *instance* would
    share its cumulative ``steps`` counter (and ``max_steps`` budget) between
    the baseline and candidate runs — a self-comparison could then diverge.
    Resolve instances to their registry name (inheriting the instance's
    ``max_steps`` unless overridden) so each side gets a fresh engine of the
    same kind.
    """

    from ..wasm.engine import ExecutionEngine

    if isinstance(engine, ExecutionEngine):
        return engine.name, max_steps if max_steps is not None else engine.max_steps
    return engine, max_steps


def run_differential(
    baseline: WasmModule,
    candidate: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    *,
    host_imports: Union[HostImports, HostImportFactory, None] = None,
    compare_state: bool = True,
    max_steps: Optional[int] = None,
    engine=None,
) -> DifferentialReport:
    """Replay ``calls`` on both modules and compare every observation.

    ``host_imports`` may be a dict (shared by both runs — fine for stateless
    hosts) or a zero-argument factory called once per module so stateful
    hosts do not leak observations across the two runs.  ``engine`` pins both
    runs to one execution engine (name or instance spec accepted by
    :func:`repro.wasm.create_engine`); ``None`` uses the default (flat VM).
    """

    normalized_calls = _normalize_calls(calls)
    engine, max_steps = _fresh_engine_spec(engine, max_steps)

    baseline_interp = WasmInterpreter(max_steps=max_steps, engine=engine)
    candidate_interp = WasmInterpreter(max_steps=max_steps, engine=engine)
    baseline_instance = baseline_interp.instantiate(baseline, _resolve_hosts(host_imports))
    candidate_instance = candidate_interp.instantiate(candidate, _resolve_hosts(host_imports))

    return _compare_runs(
        baseline_interp,
        baseline_instance,
        candidate_interp,
        candidate_instance,
        normalized_calls,
        compare_state=compare_state,
    )


def run_engine_cross_check(
    module: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    *,
    engines: tuple = ("tree", "flat", "compiled"),
    host_imports: Union[HostImports, HostImportFactory, None] = None,
    compare_state: bool = True,
    compare_steps: bool = True,
    max_steps: Optional[int] = None,
) -> DifferentialReport:
    """Replay one module on every listed engine and require agreement.

    The cross-check mode of the differential harness: the first engine (the
    tree-walker by default) is the baseline and every other engine is a
    candidate compared against it, call by call in lockstep.  Results,
    traps, final memory, globals, and — unlike the module-vs-module check —
    the cumulative step counters must all match across every engine, so
    ``repro.analysis`` step deltas stay engine-independent.  The report
    carries one :class:`CallOutcome` per (call, candidate engine) pair.
    """

    normalized_calls = _normalize_calls(calls)
    specs = [_fresh_engine_spec(engine, max_steps) for engine in engines]
    interps = [WasmInterpreter(max_steps=steps, engine=name) for name, steps in specs]
    instances = [interp.instantiate(module, _resolve_hosts(host_imports)) for interp in interps]

    report = DifferentialReport()
    for call in normalized_calls:
        outcomes: list[Union[list[WasmValue], str]] = []
        for interp, instance in zip(interps, instances):
            try:
                outcomes.append(interp.invoke(instance, call.export, list(call.args)))
            except WasmTrap as trap:
                outcomes.append(f"trap: {trap}")
        baseline = outcomes[0]
        for candidate in outcomes[1:]:
            if isinstance(baseline, str) or isinstance(candidate, str):
                matches = baseline == candidate  # both must trap, same reason
            else:
                matches = _values_equal(baseline, candidate)
            report.outcomes.append(CallOutcome(call.export, call.args, baseline, candidate, matches))

    if compare_state:
        memories = [bytes(inst.memory.data) if inst.memory else b"" for inst in instances]
        report.state_matches = all(memory == memories[0] for memory in memories) and all(
            _values_equal(inst.globals, instances[0].globals) for inst in instances
        )
    report.baseline_steps = interps[0].steps
    report.candidate_steps = interps[-1].steps
    if compare_steps:
        report.steps_match = len({interp.steps for interp in interps}) == 1
    return report


def run_pool_reset_cross_check(
    module: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    *,
    engines: tuple = ("tree", "flat", "compiled"),
    host_imports: Union[HostImports, HostImportFactory, None] = None,
    compare_state: bool = True,
    max_steps: Optional[int] = None,
    warmup: Optional[Sequence[Union[Invocation, tuple]]] = None,
    setup=None,
) -> dict[str, DifferentialReport]:
    """Require a pooled-reset instance to be bit-identical to a fresh one.

    The correctness contract of :class:`repro.runtime.InstancePool`: for each
    engine, instantiate a *fresh* baseline and compare it against a pooled
    instance that already served a previous run (``warmup``, defaulting to
    the same call script) and was recycled by the pool's reset.  Results,
    traps, final memory, globals and the cumulative ``steps`` counter must
    all agree — a reset that leaked any state (a grown memory, a dirty
    global, a stale step counter) fails here.

    ``setup`` (``setup(interpreter, instance)``) runs on the fresh baseline
    and on every pooled instance before its image capture — pass
    :func:`repro.runtime.run_initializers_setup` for linked FFI programs.
    ``host_imports`` should be a factory when the hosts are stateful, so the
    baseline, the warm-up and the pooled run cannot observe each other.
    Returns one report per engine name.
    """

    from ..runtime.pool import InstancePool

    normalized_calls = _normalize_calls(calls)
    warmup_calls = _normalize_calls(warmup) if warmup is not None else normalized_calls

    reports: dict[str, DifferentialReport] = {}
    for engine in engines:
        engine_name, engine_steps = _fresh_engine_spec(engine, max_steps)

        baseline_interp = WasmInterpreter(max_steps=engine_steps, engine=engine_name)
        baseline_instance = baseline_interp.instantiate(module, _resolve_hosts(host_imports))
        if setup is not None:
            setup(baseline_interp, baseline_instance)

        pool = InstancePool(
            module,
            engine=engine_name,
            max_steps=engine_steps,
            host_imports=host_imports,
            setup=setup,
        )
        entry = pool.acquire()
        for call in warmup_calls:  # dirty the instance: memory, globals, steps
            try:
                entry.invoke(call.export, list(call.args))
            except WasmTrap:
                pass
        pool.release(entry)
        recycled = pool.acquire()

        report = _compare_runs(
            baseline_interp,
            baseline_instance,
            recycled.interpreter,
            recycled.instance,
            normalized_calls,
            compare_state=compare_state,
            compare_steps=True,
        )
        pool.release(recycled)
        reports[recycled.interpreter.engine_name] = report
    return reports


def verify_optimization(
    module: WasmModule,
    optimized: WasmModule,
    calls: Sequence[Union[Invocation, tuple]],
    **kwargs,
) -> DifferentialReport:
    """Alias of :func:`run_differential` with the argument roles spelled out."""

    return run_differential(module, optimized, calls, **kwargs)
