"""Dead-code elimination: unreachable tails, empty control, dead locals.

Two passes live here:

* :class:`DeadCodeEliminationPass` — drops the code after an unconditional
  control transfer (``unreachable``, ``br``, ``br_table``, ``return``) inside
  a sequence, removes empty ``block``/``loop`` shells, and degrades an ``if``
  with two empty arms to a ``drop`` of its condition.
* :class:`UnusedLocalPass` — rewrites stores to never-read locals into
  ``drop`` (or deletes the ``tee``), then prunes locals with no remaining
  references from the declaration list, renumbering the survivors.  The
  lowering's spill pools and i64 local banks leave plenty of these behind,
  especially after :class:`~repro.opt.coalesce.LocalCoalescingPass` has
  retyped the banks.
"""

from __future__ import annotations

from dataclasses import replace

from ..wasm.ast import (
    LocalGet,
    LocalSet,
    LocalTee,
    WasmFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrTable,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WReturn,
    WUnreachable,
    count_instrs,
)
from .manager import FunctionPass
from .rewrite import iter_sequences, map_sequences, remap_locals

_TERMINATORS = (WUnreachable, WBr, WBrTable, WReturn)

_EMPTY = lambda blocktype: not blocktype.params and not blocktype.results


class DeadCodeEliminationPass(FunctionPass):
    """Remove code that can never execute and control shells with no content."""

    name = "dce"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        rewrites = 0

        def sweep(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            for position, instr in enumerate(seq):
                if isinstance(instr, (WBlock, WLoop)) and not instr.body and _EMPTY(instr.blocktype):
                    rewrites += 1
                    continue
                if isinstance(instr, WIf) and not instr.then_body and not instr.else_body and _EMPTY(instr.blocktype):
                    rewrites += 1
                    out.append(WDrop())
                    continue
                out.append(instr)
                if isinstance(instr, _TERMINATORS):
                    rewrites += count_instrs(seq[position + 1 :])
                    break
            return tuple(out)

        body = map_sequences(function.body, sweep)
        # A trailing ``return`` in the top-level body is the fall-off-end
        # behaviour spelled out; drop it.
        if body and isinstance(body[-1], WReturn):
            rewrites += 1
            body = body[:-1]
        if rewrites == 0:
            return function, 0
        return replace(function, body=body), rewrites


class UnusedLocalPass(FunctionPass):
    """Eliminate dead stores and prune unreferenced locals."""

    name = "deadlocals"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        rewrites = 0
        param_count = len(function.functype.params)

        read = set()
        for seq in iter_sequences(function.body):
            for instr in seq:
                if isinstance(instr, LocalGet):
                    read.add(instr.index)

        def kill_dead_stores(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            for instr in seq:
                if isinstance(instr, LocalSet) and instr.index not in read:
                    rewrites += 1
                    out.append(WDrop())
                elif isinstance(instr, LocalTee) and instr.index not in read:
                    rewrites += 1
                else:
                    out.append(instr)
            return tuple(out)

        body = map_sequences(function.body, kill_dead_stores)

        referenced = set()
        for seq in iter_sequences(body):
            for instr in seq:
                if isinstance(instr, (LocalGet, LocalSet, LocalTee)):
                    referenced.add(instr.index)

        mapping: dict[int, int] = {index: index for index in range(param_count)}
        kept_locals = []
        for offset, valtype in enumerate(function.locals):
            index = param_count + offset
            if index in referenced:
                mapping[index] = param_count + len(kept_locals)
                kept_locals.append(valtype)
            else:
                rewrites += 1
        if len(kept_locals) != len(function.locals):
            body = remap_locals(body, mapping)

        if rewrites == 0:
            return function, 0
        return replace(function, locals=tuple(kept_locals), body=body), rewrites
