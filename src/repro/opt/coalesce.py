"""Local coalescing: collapse the lowering's uniform ``i64`` local banks.

Locals-splitting (:mod:`repro.lower.compiler`) stores every RichWasm local
component in an ``i64`` Wasm local and brackets *every* access with
conversions: an ``i32`` component is written as ``i64.extend_i32_u`` +
``local.set`` and read as ``local.get`` + ``i32.wrap_i64`` (floats go through
``reinterpret``).  For the common case — a local that only ever holds one
value type — the bank slot can simply be retyped to that value type and all
the conversions deleted.

The pass analyses each declared ``i64`` local: if *every* write site is
bracketed by the to-``i64`` conversion sequence of one candidate type and
*every* read site by the matching from-``i64`` sequence (and the local is
never ``tee``'d), the local is retyped and the conversion instructions
removed.  Locals that genuinely hold different types over their lifetime
(RichWasm strong updates) fail the site checks and are left untouched.

Soundness relies on the conversion pairs being exact inverses on the values
that reach them: ``extend_u``/``wrap`` on a normalized ``i32`` and the
``reinterpret`` round-trips are bit-exact, and the interpreter normalizes
function arguments and constants, so every runtime stack value is in
normalized form.  An uninitialized bank slot reads as ``0``/``0.0`` under
both the old and the new typing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..wasm.ast import (
    Cvtop,
    LocalGet,
    LocalSet,
    LocalTee,
    ValType,
    WasmFunction,
    WasmModule,
    WInstr,
)
from .manager import FunctionPass
from .rewrite import iter_sequences, map_sequences

#: Conversion sequence emitted immediately *before* ``local.set`` when a value
#: of the key type is stored into an i64 bank slot (``_to_i64`` in the
#: lowering compiler).
_WRITE_CONVS: dict[ValType, tuple[Cvtop, ...]] = {
    ValType.I32: (Cvtop(ValType.I64, "extend_u", ValType.I32),),
    ValType.F32: (
        Cvtop(ValType.I32, "reinterpret", ValType.F32),
        Cvtop(ValType.I64, "extend_u", ValType.I32),
    ),
    ValType.F64: (Cvtop(ValType.I64, "reinterpret", ValType.F64),),
}

#: Conversion sequence emitted immediately *after* ``local.get`` when the slot
#: is read back at the key type (``_from_i64`` in the lowering compiler).
_READ_CONVS: dict[ValType, tuple[Cvtop, ...]] = {
    ValType.I32: (Cvtop(ValType.I32, "wrap", ValType.I64),),
    ValType.F32: (
        Cvtop(ValType.I32, "wrap", ValType.I64),
        Cvtop(ValType.F32, "reinterpret", ValType.I32),
    ),
    ValType.F64: (Cvtop(ValType.F64, "reinterpret", ValType.I64),),
}

#: Candidate retypings, widest removal first: an F32 site also matches the I32
#: patterns as a suffix/prefix, so F32 must be tried before I32.
_CANDIDATES = (ValType.F32, ValType.F64, ValType.I32)


class LocalCoalescingPass(FunctionPass):
    """Retype single-typed i64 bank locals and drop their access conversions."""

    name = "coalesce"

    def run(self, function: WasmFunction, module: WasmModule) -> tuple[WasmFunction, int]:
        param_count = len(function.functype.params)
        coalesced: dict[int, ValType] = {}
        for offset, valtype in enumerate(function.locals):
            if valtype is not ValType.I64:
                continue
            index = param_count + offset
            chosen = self._qualify(function, index)
            if chosen is not None:
                coalesced[index] = chosen
        if not coalesced:
            return function, 0

        rewrites = 0

        def rewrite(seq: tuple[WInstr, ...]) -> tuple[WInstr, ...]:
            nonlocal rewrites
            out: list[WInstr] = []
            i = 0
            while i < len(seq):
                instr = seq[i]
                target = self._write_target(seq, i, coalesced)
                if target is not None:
                    convs = len(_WRITE_CONVS[coalesced[target]])
                    out.append(seq[i + convs])  # the local.set itself
                    rewrites += convs
                    i += convs + 1
                    continue
                out.append(instr)
                if isinstance(instr, LocalGet) and instr.index in coalesced:
                    convs = len(_READ_CONVS[coalesced[instr.index]])
                    rewrites += convs
                    i += convs
                i += 1
            return tuple(out)

        body = map_sequences(function.body, rewrite)
        locals_ = tuple(
            coalesced.get(param_count + offset, valtype) for offset, valtype in enumerate(function.locals)
        )
        if rewrites == 0:
            # Sites matched vacuously (local unreferenced); leave it for the
            # dead-local pass rather than reporting a no-op rewrite.
            return function, 0
        return replace(function, locals=locals_, body=body), rewrites

    # -- analysis ---------------------------------------------------------------

    @staticmethod
    def _qualify(function: WasmFunction, index: int) -> Optional[ValType]:
        """The value type all accesses of local ``index`` agree on, if any."""

        for candidate in _CANDIDATES:
            write = _WRITE_CONVS[candidate]
            read = _READ_CONVS[candidate]
            sites = 0
            ok = True
            for seq in iter_sequences(function.body):
                for position, instr in enumerate(seq):
                    if isinstance(instr, LocalTee) and instr.index == index:
                        ok = False
                    elif isinstance(instr, LocalSet) and instr.index == index:
                        sites += 1
                        if tuple(seq[position - len(write) : position]) != write or position < len(write):
                            ok = False
                    elif isinstance(instr, LocalGet) and instr.index == index:
                        sites += 1
                        if tuple(seq[position + 1 : position + 1 + len(read)]) != read:
                            ok = False
                    if not ok:
                        break
                if not ok:
                    break
            if ok and sites:
                return candidate
        return None

    @staticmethod
    def _write_target(seq: tuple[WInstr, ...], i: int, coalesced: dict[int, ValType]) -> Optional[int]:
        """If a coalesced write pattern starts at ``seq[i]``, its local index."""

        if not isinstance(seq[i], Cvtop):
            return None
        for length in (2, 1):
            follower = seq[i + length] if i + length < len(seq) else None
            if not isinstance(follower, LocalSet) or follower.index not in coalesced:
                continue
            target_type = coalesced[follower.index]
            if tuple(seq[i : i + length]) == _WRITE_CONVS[target_type] and len(_WRITE_CONVS[target_type]) == length:
                return follower.index
        return None
