"""Wasm optimization passes over lowered RichWasm modules (post §6).

The lowering compiler is deliberately naive — uniform ``i64`` local banks,
conversion-bracketed local accesses, dead shuffles left by erasure.  This
package cleans its output up:

* :mod:`repro.opt.manager` — :class:`PassManager`: named, ordered,
  re-runnable passes with per-pass statistics.
* :mod:`repro.opt.dce` — unreachable-code removal and dead-local pruning.
* :mod:`repro.opt.coalesce` — collapses the i64 local banks produced by
  locals-splitting.
* :mod:`repro.opt.constfold` — constant folding via the shared numeric
  semantics (:mod:`repro.core.semantics.numerics`).
* :mod:`repro.opt.peephole` — spill/reload and conversion-pair fusion.
* :mod:`repro.opt.pipelines` — the named ``O0``/``O1``/``O2`` levels
  consumed by :class:`repro.api.CompileConfig`.
* :mod:`repro.opt.verify` — the differential harness executing optimized and
  unoptimized twins side by side and requiring identical behaviour.

Entry points: :func:`optimize_module` for a lowered
:class:`~repro.wasm.ast.WasmModule`, or pass ``optimize=True`` to
:func:`repro.lower.lower_module`, :func:`repro.ml.compile_ml_module`,
:func:`repro.l3.compile_l3_module`, or the FFI ``Program`` execution path.
"""

from .coalesce import LocalCoalescingPass
from .constfold import ConstantFoldingPass
from .copyprop import CopyPropagationPass
from .dce import DeadCodeEliminationPass, UnusedLocalPass
from .deadfuncs import DeadFunctionPass, reachable_functions
from .flatten import BlockFlatteningPass
from .manager import (
    FunctionPass,
    ModulePass,
    OptimizationResult,
    PassManager,
    PassStats,
    default_passes,
    optimize_module,
)
from .peephole import PeepholePass
from .pipelines import (
    PIPELINES,
    o1_passes,
    pipeline_names,
    pipeline_passes,
    register_pipeline,
)
from .verify import (
    CallOutcome,
    DifferentialReport,
    Invocation,
    run_differential,
    run_engine_cross_check,
    run_pool_reset_cross_check,
    verify_optimization,
)

__all__ = [name for name in dir() if not name.startswith("_")]
