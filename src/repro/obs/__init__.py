"""``repro.obs`` — observability across the compile and serving tiers.

Four pieces, each usable alone, wired together through the rest of the repo:

* :mod:`repro.obs.trace` — nested spans (trace/span/parent ids, attrs,
  error/trap status) with a thread-local context stack and a no-op global
  default, so disabled tracing costs one attribute check.  The facade's
  compile stages, the serving tier's per-request work, and the benchmark
  driver all emit spans when a real :class:`Tracer` is installed.
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms in a
  named registry with a cheap :meth:`~MetricsRegistry.snapshot`; the module
  cache, instance pool and batch runner record into
  :func:`default_registry`.  (Distinct from :mod:`repro.analysis.metrics`,
  the paper-statistics module.)
* :mod:`repro.obs.export` — the schema-versioned JSONL interchange format
  (:data:`SCHEMA_VERSION`), its validator, the :class:`JsonlSink` writer and
  :func:`read_records` reader; :mod:`repro.obs.report` is the bundled
  aggregator CLI (``python -m repro.obs.report trace.jsonl``).
* :mod:`repro.obs.profile` — :class:`StepProfiler`, a sampled
  hot-function profiler both execution engines host at ~zero cost when
  detached (the flat VM folds the sample check into its existing step-budget
  comparison).

``benchmarks/bench_obs.py`` enforces the overhead contract in CI:
obs-disabled execution within 2% of baseline steps/sec, tracing-enabled
within 10%.
"""

from .export import (
    RECORD_KINDS,
    SCHEMA_VERSION,
    SPAN_STATUSES,
    JsonlSink,
    SchemaError,
    event_record,
    read_records,
    span_record,
    validate_record,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
)
from .profile import UNNAMED_FUNCTION, StepProfiler
from .trace import (
    NOOP_TRACER,
    NoOpSpan,
    NoOpTracer,
    Span,
    Tracer,
    current_span,
    get_tracer,
    new_trace_id,
    set_tracer,
    use_tracer,
)

__all__ = [
    # trace
    "Span",
    "NoOpSpan",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "current_span",
    "new_trace_id",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
    # export
    "SCHEMA_VERSION",
    "RECORD_KINDS",
    "SPAN_STATUSES",
    "SchemaError",
    "JsonlSink",
    "span_record",
    "event_record",
    "validate_record",
    "read_records",
    # profile
    "StepProfiler",
    "UNNAMED_FUNCTION",
]
