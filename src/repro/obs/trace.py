"""Tracing: nested spans over the compile and serving tiers.

A :class:`Span` is one timed operation — a facade stage, a served request, a
benchmark phase — carrying a ``trace_id`` shared by every span of one
logical trace, its own ``span_id``, the ``parent_id`` linking it into the
tree, string-keyed attributes, and an error/trap status.  Spans nest via a
thread-local context stack: a span opened while another is active becomes
its child and inherits the trace id, which is how one request's trace
crosses the ``Service`` → ``BatchRunner`` → pool layers without threading an
argument through every call.

The layer is built to be *free when off*: the process-global tracer defaults
to :data:`NOOP_TRACER`, whose :meth:`~NoOpTracer.span` returns one shared
do-nothing span — the disabled instrumentation path costs an attribute load
and a method call, never an allocation.  Enable tracing with
:func:`set_tracer` (or the :func:`use_tracer` context manager in tests);
finished spans are buffered thread-safely on the tracer and optionally
forwarded to a sink such as :class:`repro.obs.export.JsonlSink`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

__all__ = [
    "Span",
    "NoOpSpan",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "current_span",
    "new_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, process-independent)."""

    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(4).hex()


def _trap_exception_types() -> tuple:
    # Resolved lazily so the obs package stays importable without the wasm
    # layer (and keeps no import cycle: wasm never imports obs.trace).
    global _TRAP_TYPES
    if _TRAP_TYPES is None:
        try:
            from ..wasm.interpreter import WasmTrap

            _TRAP_TYPES = (WasmTrap,)
        except Exception:  # pragma: no cover - wasm layer always present here
            _TRAP_TYPES = ()
    return _TRAP_TYPES


_TRAP_TYPES: Optional[tuple] = None


class Span:
    """One timed, attributed operation inside a trace.

    Use as a context manager: ``with tracer.span("lower", key=...) as span``.
    ``start_s``/``duration_s`` come from the monotonic clock
    (``time.perf_counter``); ``ts`` is the wall-clock time the span *ended*
    (what the JSONL record carries, so cross-process traces line up).
    Status is ``"ok"`` unless the body raised — a ``WasmTrap`` marks the span
    ``"trap"``, any other exception ``"error"`` — or :meth:`set_trap` was
    called explicitly (the batch runner's isolated traps never raise).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "error",
        "start_s",
        "duration_s",
        "ts",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str], attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.error: Optional[str] = None
        self.start_s: Optional[float] = None
        self.duration_s: Optional[float] = None
        self.ts: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def set_attr(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_trap(self, message: str, *, kind: Optional[str] = None) -> "Span":
        """Tag the span as trapped (without raising through it)."""

        self.status = "trap"
        self.error = message
        if kind is not None:
            self.attrs["trap_kind"] = kind
        return self

    def set_error(self, message: str) -> "Span":
        self.status = "error"
        self.error = message
        return self

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        self.ts = time.time()
        if exc is not None and self.status == "ok":
            if isinstance(exc, _trap_exception_types()):
                self.set_trap(str(exc))
            else:
                self.set_error(f"{exc_type.__name__}: {exc}")
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"status={self.status!r}, duration={self.duration_s})"
        )


class Tracer:
    """Produces spans, tracks the per-thread context stack, buffers output.

    ``sink`` is any object with an ``emit_span(span)`` method (see
    :class:`repro.obs.export.JsonlSink`); without one, finished spans
    accumulate in an in-memory buffer drained with :meth:`drain`.  Both the
    buffer and the sink hand-off are lock-protected; the context stack is
    thread-local, so concurrent threads nest independently.
    """

    enabled = True

    def __init__(self, sink=None, *, max_buffer: int = 100_000) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._max_buffer = max_buffer
        self.dropped = 0

    # -- span construction -------------------------------------------------

    def span(self, name: str, *, trace_id: Optional[str] = None, **attrs) -> Span:
        """A new span, child of the current one (if any).

        An explicit ``trace_id`` (e.g. propagated from a
        :class:`repro.runtime.Request`) overrides the inherited one — that is
        how a caller-assigned id follows a request through the serving tier.
        """

        parent = self.current_span()
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else new_trace_id()
        parent_id = parent.span_id if parent is not None else None
        return Span(self, name, trace_id, parent_id, attrs)

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- context stack / buffering (called by Span) ------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # unbalanced exit; recover
            stack.remove(span)
        with self._lock:
            if self._sink is not None:
                self._sink.emit_span(span)
            elif len(self._finished) < self._max_buffer:
                self._finished.append(span)
            else:
                self.dropped += 1

    def drain(self) -> list[Span]:
        """Return and clear the buffered finished spans (sink-less mode)."""

        with self._lock:
            finished, self._finished = self._finished, []
        return finished


class NoOpSpan:
    """The shared do-nothing span handed out by :class:`NoOpTracer`."""

    __slots__ = ()

    name = None
    trace_id = None
    span_id = None
    parent_id = None
    status = "ok"
    error = None
    start_s = None
    duration_s = None
    ts = None

    @property
    def attrs(self) -> dict:
        return {}

    def set_attr(self, **attrs) -> "NoOpSpan":
        return self

    def set_trap(self, message, *, kind=None) -> "NoOpSpan":
        return self

    def set_error(self, message) -> "NoOpSpan":
        return self

    def __enter__(self) -> "NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = NoOpSpan()


class NoOpTracer:
    """The disabled tracer: every method is constant-time and allocation-free.

    ``tracer.enabled`` is the one attribute instrumentation sites may check
    to skip attribute computation; ``span()`` always returns the same
    :class:`NoOpSpan` instance, so even un-guarded ``with tracer.span(...)``
    sites cost a method call and nothing else.
    """

    enabled = False

    def span(self, name: str, *, trace_id: Optional[str] = None, **attrs) -> NoOpSpan:
        return _NOOP_SPAN

    def current_span(self) -> None:
        return None

    def drain(self) -> list:
        return []


NOOP_TRACER = NoOpTracer()

_tracer = NOOP_TRACER


def get_tracer():
    """The process-global tracer (the :data:`NOOP_TRACER` by default)."""

    return _tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` globally; pass :data:`NOOP_TRACER` to disable."""

    global _tracer
    _tracer = tracer if tracer is not None else NOOP_TRACER


class use_tracer:
    """``with use_tracer(Tracer()) as t: ...`` — scoped install/restore."""

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = get_tracer()
        set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False


def current_span():
    """The active span of the global tracer (``None`` when disabled/idle)."""

    return _tracer.current_span()
