"""Aggregate obs JSONL files into per-stage / per-request summary tables.

The interchange idiom is the one the ROADMAP's CLI item commits to: tools
emit schema-versioned JSONL (:mod:`repro.obs.export`), and downstream
consumers pipe the files through small aggregators.  This module is the
first such consumer::

    python -m repro.obs.report trace.jsonl            # summary tables
    python -m repro.obs.report w0.jsonl w1.jsonl      # cluster-wide merge
    python -m repro.obs.report --validate trace.jsonl # schema check only

Spans aggregate by name (count, total/mean/max duration, error and trap
counts); spans named ``request`` additionally break down per export (the
``Service``/``BatchRunner`` serving tier), with trap kinds; ``metric``
records fold through :func:`repro.obs.merge_snapshots` (so the per-worker
files a :class:`repro.cluster.ClusterService` exports sum instead of
overwriting each other), ``profile`` records print their hot-function
tables.  Every line is validated against the schema on the way in — the CLI
exits non-zero on the first bad record, which is exactly the gate the CI
obs smoke job needs.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .export import SchemaError, read_records
from .metrics import merge_snapshots

__all__ = ["Summary", "summarize", "format_summary", "main"]


@dataclass
class _SpanAgg:
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0
    traps: int = 0

    def add(self, record: dict) -> None:
        self.count += 1
        self.total_s += record["duration_s"]
        self.max_s = max(self.max_s, record["duration_s"])
        if record["status"] == "error":
            self.errors += 1
        elif record["status"] == "trap":
            self.traps += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class Summary:
    """The aggregate view of one record stream."""

    records: int = 0
    spans: dict[str, _SpanAgg] = field(default_factory=dict)
    requests: dict[str, _SpanAgg] = field(default_factory=dict)
    trap_kinds: dict[str, int] = field(default_factory=dict)
    traces: set = field(default_factory=set)
    counters: dict[str, object] = field(default_factory=dict)
    gauges: dict[str, object] = field(default_factory=dict)
    histograms: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    profiles: list[dict] = field(default_factory=list)
    #: Per-function compile units by stage: ``{stage: {event: count}}``,
    #: aggregated from the ``compile.units.events`` counter labels.
    unit_events: dict[str, dict[str, int]] = field(default_factory=dict)


def summarize(records: Iterable[dict]) -> Summary:
    summary = Summary()
    metric_records: list[dict] = []
    for record in records:
        summary.records += 1
        kind = record["kind"]
        if kind == "span":
            summary.spans.setdefault(record["name"], _SpanAgg()).add(record)
            summary.traces.add(record["trace_id"])
            if record["name"] == "request":
                export = record["attrs"].get("export", "?")
                summary.requests.setdefault(export, _SpanAgg()).add(record)
                trap_kind = record["attrs"].get("trap_kind")
                if trap_kind:
                    summary.trap_kinds[trap_kind] = summary.trap_kinds.get(trap_kind, 0) + 1
        elif kind == "metric":
            metric_records.append(record)
        elif kind == "event":
            summary.events.append(record)
        else:  # profile
            summary.profiles.append(record)
    # Fold every metric record through merge_snapshots: a single file keeps
    # its values verbatim, while the per-worker exports of a cluster (one
    # JSONL per process, same metric names) sum into cluster-wide totals.
    for record in merge_snapshots(*([record] for record in metric_records)):
        if record["type"] == "counter":
            summary.counters[record["name"]] = record
            if record["name"] == "compile.units.events":
                summary.unit_events = _aggregate_unit_events(record)
        elif record["type"] == "gauge":
            summary.gauges[record["name"]] = record
        else:
            summary.histograms.append(record)
    return summary


def _aggregate_unit_events(record: dict) -> dict[str, dict[str, int]]:
    """``compile.units.events`` labels → ``{stage: {event: count}}``."""

    stages: dict[str, dict[str, int]] = {}
    for entry in record.get("labels") or []:
        labels = entry.get("labels") or {}
        stage = labels.get("stage", "?")
        event = labels.get("event", "?")
        per_stage = stages.setdefault(stage, {})
        per_stage[event] = per_stage.get(event, 0) + entry["value"]
    return stages


def format_summary(summary: Summary) -> str:
    lines = [f"{summary.records} record(s), {len(summary.traces)} trace(s)"]

    if summary.spans:
        lines.append("")
        lines.append(f"{'span':<24} {'count':>7} {'total s':>10} {'mean s':>10} {'max s':>10} {'err':>4} {'trap':>5}")
        for name, agg in sorted(summary.spans.items(), key=lambda item: -item[1].total_s):
            lines.append(
                f"{name:<24} {agg.count:>7} {agg.total_s:>10.4f} {agg.mean_s:>10.6f} "
                f"{agg.max_s:>10.6f} {agg.errors:>4} {agg.traps:>5}"
            )

    if summary.requests:
        lines.append("")
        lines.append(f"{'request export':<24} {'count':>7} {'total s':>10} {'mean s':>10} {'err':>4} {'trap':>5}")
        for export, agg in sorted(summary.requests.items(), key=lambda item: -item[1].count):
            lines.append(
                f"{export:<24} {agg.count:>7} {agg.total_s:>10.4f} {agg.mean_s:>10.6f} "
                f"{agg.errors:>4} {agg.traps:>5}"
            )
        if summary.trap_kinds:
            kinds = ", ".join(f"{kind}={count}" for kind, count in sorted(summary.trap_kinds.items()))
            lines.append(f"trap kinds: {kinds}")

    if summary.counters or summary.gauges:
        lines.append("")
        lines.append(f"{'metric':<40} {'value':>12}")
        for name, record in sorted(summary.counters.items()):
            lines.append(f"{name:<40} {record['value']:>12}")
            for entry in record.get("labels") or []:
                label = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                lines.append(f"  {label:<38} {entry['value']:>12}")
        for name, record in sorted(summary.gauges.items()):
            lines.append(f"{name:<40} {record['value']:>12} (gauge)")

    if summary.unit_events:
        lines.append("")
        lines.append(f"{'compile units':<12} {'reused':>9} {'compiled':>9} {'evicted':>9}")
        for stage, events in sorted(summary.unit_events.items()):
            lines.append(
                f"{stage:<12} {events.get('hit', 0):>9} {events.get('miss', 0):>9} "
                f"{events.get('evict', 0):>9}"
            )

    for record in summary.histograms:
        lines.append("")
        lines.append(
            f"histogram {record['name']}: count={record['count']} sum={record['sum']:.4f} "
            f"min={record['min']} max={record['max']}"
        )

    for record in summary.profiles:
        lines.append("")
        engine = record.get("engine") or "?"
        lines.append(
            f"profile ({engine}, interval {record['interval']}): {record['samples']} sample(s)"
        )
        lines.append(f"  {'function':<28} {'samples':>8} {'share':>7}")
        for entry in record["functions"]:
            lines.append(f"  {entry['function']:<28} {entry['samples']:>8} {entry['share']:>6.1%}")

    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize (or just validate) a repro.obs JSONL export.",
    )
    parser.add_argument("paths", nargs="+", metavar="path",
                        help="JSONL file(s) to read; several files (e.g. one "
                             "per cluster worker) aggregate into one summary")
    parser.add_argument("--validate", action="store_true",
                        help="validate every record against the schema and exit (no tables)")
    args = parser.parse_args(argv)

    records: list[dict] = []
    for path in args.paths:
        try:
            file_records = list(read_records(path))
        except (OSError, SchemaError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        if args.validate:
            print(f"{path}: {len(file_records)} record(s), all valid "
                  f"(schema {_schema_of(file_records)})")
        records.extend(file_records)

    if args.validate:
        return 0

    summary = summarize(records)
    if len(args.paths) > 1:
        print(f"aggregated {len(args.paths)} file(s)")
    print(format_summary(summary))
    return 0


def _schema_of(records: list[dict]) -> object:
    return records[0]["schema"] if records else "n/a"


if __name__ == "__main__":
    raise SystemExit(main())
