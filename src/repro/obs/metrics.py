"""Process-local runtime metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` names and owns instruments; the wired layers
(:mod:`repro.runtime.cache`, :mod:`repro.runtime.pool`,
:mod:`repro.runtime.batch`) record into the process-wide
:func:`default_registry`, and :meth:`MetricsRegistry.snapshot` renders
everything as plain JSON-able dicts — the form the
:class:`repro.obs.export.JsonlSink` emits and ``repro.obs.report``
aggregates.

Instruments are always on (there is no disabled mode to check): recording is
a dict update guarded by the GIL, cheap enough for the per-request and
per-cache-lookup call sites that use it — nothing here sits on the
per-instruction hot path, which is the :mod:`repro.obs.profile` sampler's
territory.  Counters support label breakdowns
(``counter.inc(stage="lower", event="hit")``): the unlabeled ``value`` is
always the total, with per-label-set counts kept alongside.

Naming note: this module is ``repro.obs.metrics`` — *runtime telemetry*.
The similarly named :mod:`repro.analysis.metrics` is the paper-statistics
module reproducing the Coq-development size table (§4.1); the two are
unrelated.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (values in arbitrary units —
#: seconds for durations, steps for budgets); the last bucket is +inf.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0, 10000.0, 50000.0, 100000.0, 500000.0, 1000000.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count, optionally broken down by labels."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self._children: dict[tuple, int] = {}

    def inc(self, amount: int = 1, **labels) -> None:
        self.value += amount
        if labels:
            key = _label_key(labels)
            self._children[key] = self._children.get(key, 0) + amount

    def labeled(self, **labels) -> int:
        """The count recorded under exactly this label set (0 if none)."""

        return self._children.get(_label_key(labels), 0)

    def snapshot(self) -> dict:
        record = {"type": self.kind, "name": self.name, "value": self.value}
        if self._children:
            record["labels"] = [
                {"labels": dict(key), "value": count}
                for key, count in sorted(self._children.items())
            ]
        return record

    def reset(self) -> None:
        self.value = 0
        self._children.clear()


class Gauge:
    """A value that goes up and down (pool sizes, buffer depths)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "name": self.name, "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-bucket histogram: cumulative-style bucket counts + sum/min/max.

    ``buckets`` are the finite upper bounds, in increasing order; an implicit
    ``+inf`` bucket catches the rest.  ``observe`` is a bisect plus three
    attribute updates — no per-observation allocation.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be non-empty and increasing, got {bounds!r}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        from bisect import bisect_left

        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            # The catch-all bucket's bound is the string "+Inf" (not the
            # float) so snapshots stay strict JSON.
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.buckets + ("+Inf",), self.counts)
            ],
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = self.max = None


class MetricsRegistry:
    """A named set of instruments with get-or-create registration.

    Registration is lock-protected (threads may race to create the same
    instrument); recording on an instrument is not (a single bytecode-level
    dict/attr update under the GIL).  Re-registering a name with a different
    instrument type raises ``ValueError`` — one name, one meaning.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name, *args, **kwargs)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} is already registered as a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets)

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._instruments))

    def snapshot(self) -> list[dict]:
        """Every instrument as a plain dict, sorted by name."""

        with self._lock:
            instruments = sorted(self._instruments.items())
        return [instrument.snapshot() for _, instrument in instruments]

    def reset(self) -> None:
        """Zero every instrument (tests; instruments stay registered)."""

        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()


_DEFAULT = MetricsRegistry("repro")


def default_registry() -> MetricsRegistry:
    """The process-wide registry the wired layers record into."""

    return _DEFAULT


# ---------------------------------------------------------------------------
# cross-process merging
# ---------------------------------------------------------------------------


def merge_snapshots(*snapshots: Sequence[dict]) -> list[dict]:
    """Combine per-process :meth:`MetricsRegistry.snapshot` lists into one.

    Registries are process-local, so a cluster run produces one snapshot per
    worker; this folds them into a single dispatcher-side view without
    double-counting: each input instrument contributes its value exactly
    once.  Counters sum (total and per-label-set breakdowns), gauges sum
    (each worker's level is an independent contribution — e.g. pool sizes
    add up across workers), histograms merge bucket-by-bucket (identical
    bounds required) with ``sum``/``count`` added and ``min``/``max``
    combined.  The same name appearing with two different instrument types
    raises ``ValueError``.
    """

    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for record in snapshot:
            name = record["name"]
            existing = merged.get(name)
            if existing is None:
                merged[name] = _copy_record(record)
            else:
                _merge_record(existing, record)
    return [merged[name] for name in sorted(merged)]


def _copy_record(record: dict) -> dict:
    copied = dict(record)
    if "labels" in copied:
        copied["labels"] = [
            {"labels": dict(entry["labels"]), "value": entry["value"]}
            for entry in copied["labels"]
        ]
    if "buckets" in copied:
        copied["buckets"] = [dict(bucket) for bucket in copied["buckets"]]
    return copied


def _merge_record(existing: dict, record: dict) -> None:
    if existing["type"] != record["type"]:
        raise ValueError(
            f"cannot merge metric {record['name']!r}: "
            f"{existing['type']} vs {record['type']}"
        )
    kind = record["type"]
    if kind in ("counter", "gauge"):
        existing["value"] += record["value"]
        if kind == "counter" and record.get("labels"):
            by_key = {_label_key(entry["labels"]): entry for entry in existing.setdefault("labels", [])}
            for entry in record["labels"]:
                key = _label_key(entry["labels"])
                target = by_key.get(key)
                if target is None:
                    target = {"labels": dict(entry["labels"]), "value": 0}
                    existing["labels"].append(target)
                    by_key[key] = target
                target["value"] += entry["value"]
            existing["labels"].sort(key=lambda entry: _label_key(entry["labels"]))
        return
    if kind == "histogram":
        bounds = [bucket["le"] for bucket in existing["buckets"]]
        if bounds != [bucket["le"] for bucket in record["buckets"]]:
            raise ValueError(
                f"cannot merge histogram {record['name']!r}: bucket bounds differ"
            )
        for target, source in zip(existing["buckets"], record["buckets"]):
            target["count"] += source["count"]
        existing["count"] += record["count"]
        existing["sum"] += record["sum"]
        for field, pick in (("min", min), ("max", max)):
            values = [v for v in (existing[field], record[field]) if v is not None]
            existing[field] = pick(values) if values else None
        return
    raise ValueError(f"cannot merge metric {record['name']!r}: unknown type {kind!r}")
