"""A sampled step profiler for the execution engines.

The flat VM executes millions of steps per second; per-step instrumentation
would dominate the hot loop.  :class:`StepProfiler` instead samples: every
``interval`` *counted* steps the engine attributes one sample to the
function executing that step, so a hot-function table costs
``1/interval``-th of the work regardless of program size.

Integration is by duck typing, not import (the engines never import this
module): :meth:`install` sets ``engine.profiler = self``, and the engine's
run loop consults three things — ``next_at`` (the absolute cumulative step
count at which the next sample fires), ``record(function_name, steps)``
(take a sample, advancing ``next_at``), and ``interval``.  The flat VM folds
``next_at`` into the single boundary comparison it already performs for the
step budget, so the profiler-off path costs nothing extra; the tree walker
checks ``self.profiler`` per step (it is the reference engine, not the perf
path).  Both engines count steps identically, so a given workload samples at
the same step numbers and attributes each sample to the same function on
either engine — the parity contract ``tests/obs/test_profile.py`` enforces.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["StepProfiler", "UNNAMED_FUNCTION"]

#: Attribution bucket for functions lowered without a name.
UNNAMED_FUNCTION = "<unnamed>"

_INF = float("inf")


class StepProfiler:
    """Samples the current function every ``interval`` executed steps.

    ``keep_trace=True`` additionally records every sample as a
    ``(step_number, function_name)`` pair — the exact-attribution form the
    engine-parity tests compare; leave it off in production, the aggregate
    ``samples`` dict is all the report needs.
    """

    def __init__(self, interval: int = 1024, *, keep_trace: bool = False) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.samples: dict[str, int] = {}
        self.total_samples = 0
        self.next_at: float = _INF
        self.keep_trace = keep_trace
        self.trace: list[tuple[int, str]] = []
        self.engine_name: Optional[str] = None

    # -- engine attachment -------------------------------------------------

    def install(self, engine) -> "StepProfiler":
        """Attach to an engine (or a ``WasmInterpreter`` facade over one)."""

        engine = getattr(engine, "engine", engine)  # unwrap the facade
        engine.profiler = self
        self.engine_name = getattr(engine, "name", None)
        self.next_at = engine.steps + self.interval
        return self

    def uninstall(self, engine) -> "StepProfiler":
        engine = getattr(engine, "engine", engine)
        if getattr(engine, "profiler", None) is self:
            engine.profiler = None
        self.next_at = _INF
        return self

    # -- the sampling hook (called from the engine run loops) --------------

    def record(self, function_name: Optional[str], steps: int) -> None:
        name = function_name if function_name is not None else UNNAMED_FUNCTION
        self.samples[name] = self.samples.get(name, 0) + 1
        self.total_samples += 1
        if self.keep_trace:
            self.trace.append((steps, name))
        self.next_at = steps + self.interval

    # -- reporting ---------------------------------------------------------

    def hot_functions(self) -> list[tuple[str, int, float]]:
        """``(function, samples, share)`` rows, hottest first."""

        total = self.total_samples or 1
        return [
            (name, count, count / total)
            for name, count in sorted(self.samples.items(), key=lambda item: (-item[1], item[0]))
        ]

    def record_dict(self) -> dict:
        """The ``profile`` JSONL record body (see :mod:`repro.obs.export`)."""

        return {
            "engine": self.engine_name,
            "interval": self.interval,
            "samples": self.total_samples,
            "functions": [
                {"function": name, "samples": count, "share": round(share, 6)}
                for name, count, share in self.hot_functions()
            ],
        }

    def format_table(self) -> str:
        lines = [
            f"step profile: {self.total_samples} sample(s), interval {self.interval}"
            + (f", engine {self.engine_name}" if self.engine_name else ""),
            f"  {'function':<28} {'samples':>8} {'share':>7}",
        ]
        for name, count, share in self.hot_functions():
            lines.append(f"  {name:<28} {count:>8} {share:>6.1%}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.samples.clear()
        self.total_samples = 0
        self.trace.clear()
