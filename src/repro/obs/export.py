"""Schema-versioned JSONL export of spans, metrics, events and profiles.

One record per line, every record self-describing:

* ``schema`` — the integer :data:`SCHEMA_VERSION` (currently ``1``);
* ``kind`` — one of :data:`RECORD_KINDS`;
* ``ts`` — wall-clock UNIX seconds the record was emitted.

Kind-specific fields (the stability contract — additive changes only within
a schema version; removing or retyping a field bumps ``SCHEMA_VERSION``):

``span``
    ``trace_id`` (str), ``span_id`` (str), ``parent_id`` (str|null),
    ``name`` (str), ``start_s``/``duration_s`` (monotonic floats),
    ``status`` (``"ok"``/``"error"``/``"trap"``), ``error`` (str|null),
    ``attrs`` (object of JSON scalars).
``metric``
    One instrument snapshot: ``name`` (str), ``type``
    (``"counter"``/``"gauge"``/``"histogram"``) plus the fields of
    :meth:`repro.obs.metrics.Counter.snapshot` et al. (``value`` and
    optional ``labels`` for counters/gauges; ``count``/``sum``/``min``/
    ``max``/``buckets`` for histograms).
``event``
    A point-in-time marker: ``name`` (str), ``attrs`` (object).
``profile``
    One :class:`repro.obs.profile.StepProfiler` report: ``engine``
    (str|null), ``interval`` (int), ``samples`` (int), ``functions``
    (list of ``{"function", "samples", "share"}``).

:func:`validate_record` checks one parsed record against this contract and
raises :class:`SchemaError` naming the offending field; :func:`read_records`
streams a file back, validating by default — the round-trip the test suite
and the CI obs smoke job enforce.  :class:`JsonlSink` is the writer: attach
it to a :class:`repro.obs.trace.Tracer` and every finished span becomes a
line; call :meth:`JsonlSink.emit_metrics` / :meth:`emit_profile` to flush
registry and profiler state alongside.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "RECORD_KINDS",
    "SPAN_STATUSES",
    "SchemaError",
    "JsonlSink",
    "span_record",
    "event_record",
    "validate_record",
    "read_records",
]

SCHEMA_VERSION = 1

RECORD_KINDS = ("span", "metric", "event", "profile")

SPAN_STATUSES = ("ok", "error", "trap")

_METRIC_TYPES = ("counter", "gauge", "histogram")


class SchemaError(ValueError):
    """A record does not conform to the documented JSONL schema."""


# ---------------------------------------------------------------------------
# Record construction
# ---------------------------------------------------------------------------


def _base(kind: str, ts: Optional[float] = None) -> dict:
    return {"schema": SCHEMA_VERSION, "kind": kind, "ts": ts if ts is not None else time.time()}


def span_record(span) -> dict:
    """Render a finished :class:`repro.obs.trace.Span` as a schema record."""

    record = _base("span", span.ts)
    record.update(
        trace_id=span.trace_id,
        span_id=span.span_id,
        parent_id=span.parent_id,
        name=span.name,
        start_s=span.start_s,
        duration_s=span.duration_s,
        status=span.status,
        error=span.error,
        attrs=dict(span.attrs),
    )
    return record


def event_record(name: str, **attrs) -> dict:
    record = _base("event")
    record.update(name=name, attrs=attrs)
    return record


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def _require(record: dict, field: str, types, *, nullable: bool = False):
    if field not in record:
        raise SchemaError(f"{record.get('kind', '?')} record missing field {field!r}")
    value = record[field]
    if value is None:
        if not nullable:
            raise SchemaError(f"field {field!r} must not be null")
        return value
    if not isinstance(value, types):
        raise SchemaError(
            f"field {field!r} must be {types!r}, got {type(value).__name__}"
        )
    # bool is an int subclass; never a valid stand-in for a number here.
    if isinstance(value, bool) and not (types is bool or (isinstance(types, tuple) and bool in types)):
        raise SchemaError(f"field {field!r} must be {types!r}, got bool")
    return value


_NUMBER = (int, float)


def _validate_attrs(record: dict) -> None:
    attrs = _require(record, "attrs", dict)
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise SchemaError(f"attr key {key!r} must be a string")
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise SchemaError(f"attr {key!r} must be a JSON scalar, got {type(value).__name__}")


def validate_record(record: dict) -> dict:
    """Check ``record`` against the schema; returns it (raises otherwise)."""

    if not isinstance(record, dict):
        raise SchemaError(f"record must be an object, got {type(record).__name__}")
    schema = _require(record, "schema", int)
    if schema != SCHEMA_VERSION:
        raise SchemaError(f"unsupported schema version {schema} (expected {SCHEMA_VERSION})")
    kind = _require(record, "kind", str)
    if kind not in RECORD_KINDS:
        raise SchemaError(f"unknown record kind {kind!r}; expected one of {RECORD_KINDS}")
    _require(record, "ts", _NUMBER)

    if kind == "span":
        _require(record, "trace_id", str)
        _require(record, "span_id", str)
        _require(record, "parent_id", str, nullable=True)
        _require(record, "name", str)
        _require(record, "start_s", _NUMBER)
        _require(record, "duration_s", _NUMBER)
        status = _require(record, "status", str)
        if status not in SPAN_STATUSES:
            raise SchemaError(f"unknown span status {status!r}; expected one of {SPAN_STATUSES}")
        _require(record, "error", str, nullable=True)
        _validate_attrs(record)
    elif kind == "metric":
        _require(record, "name", str)
        metric_type = _require(record, "type", str)
        if metric_type not in _METRIC_TYPES:
            raise SchemaError(f"unknown metric type {metric_type!r}; expected one of {_METRIC_TYPES}")
        if metric_type == "histogram":
            _require(record, "count", int)
            _require(record, "sum", _NUMBER)
            _require(record, "min", _NUMBER, nullable=True)
            _require(record, "max", _NUMBER, nullable=True)
            buckets = _require(record, "buckets", list)
            for bucket in buckets:
                if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
                    raise SchemaError("histogram buckets must be {le, count} objects")
                if not isinstance(bucket["le"], _NUMBER) and bucket["le"] != "+Inf":
                    raise SchemaError(f"bucket bound must be a number or '+Inf', got {bucket['le']!r}")
        else:
            _require(record, "value", _NUMBER)
            for entry in record.get("labels") or []:
                if not isinstance(entry, dict) or "labels" not in entry or "value" not in entry:
                    raise SchemaError("metric labels must be {labels, value} objects")
    elif kind == "event":
        _require(record, "name", str)
        _validate_attrs(record)
    else:  # profile
        _require(record, "engine", str, nullable=True)
        _require(record, "interval", int)
        _require(record, "samples", int)
        functions = _require(record, "functions", list)
        for entry in functions:
            if not isinstance(entry, dict) or not {"function", "samples", "share"} <= set(entry):
                raise SchemaError("profile functions must be {function, samples, share} objects")
    return record


# ---------------------------------------------------------------------------
# The sink
# ---------------------------------------------------------------------------


class JsonlSink:
    """Writes schema records as JSON lines to a path or file-like stream.

    Every ``emit*`` validates the record before writing (export is off the
    per-instruction hot path, so the check is cheap insurance that files are
    readable by :func:`read_records` and the ``repro.obs.report`` CLI) and
    holds a lock around the write, so concurrent request threads interleave
    whole lines, never fragments.  Usable as a context manager; ``close`` is
    a no-op for caller-owned streams.
    """

    def __init__(self, target: Union[str, Path, object]) -> None:
        if isinstance(target, (str, Path)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()
        self.records_written = 0

    # -- emission ----------------------------------------------------------

    def emit(self, record: dict) -> None:
        validate_record(record)
        line = json.dumps(record, sort_keys=True, allow_nan=False)
        with self._lock:
            self._stream.write(line + "\n")
            self.records_written += 1

    def emit_span(self, span) -> None:
        self.emit(span_record(span))

    def emit_event(self, name: str, **attrs) -> None:
        self.emit(event_record(name, **attrs))

    def emit_metrics(self, registry) -> None:
        """One ``metric`` record per instrument of ``registry`` (or of a
        pre-taken ``snapshot()`` list)."""

        snapshot = registry.snapshot() if hasattr(registry, "snapshot") else registry
        ts = time.time()
        for instrument in snapshot:
            record = _base("metric", ts)
            record.update(instrument)
            self.emit(record)

    def emit_profile(self, profiler) -> None:
        record = _base("profile")
        record.update(profiler.record_dict())
        self.emit(record)

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream:
                self._stream.close()
            else:
                self._stream.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Reading back
# ---------------------------------------------------------------------------


def read_records(path: Union[str, Path], *, validate: bool = True) -> Iterator[dict]:
    """Stream the records of a JSONL file (validating each by default).

    Raises :class:`SchemaError` naming the line number on the first invalid
    line — the contract the CI smoke job checks on every exported file.
    """

    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if validate:
                try:
                    validate_record(record)
                except SchemaError as exc:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            yield record
