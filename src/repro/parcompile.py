"""Parallel per-function compilation: fan compile units across a worker pool.

A cold compile of a large module runs every per-function unit (lower →
optimize → validate → decode → translate; the stages
:class:`repro.compilepipe.FunctionUnitCache` keys per function) serially on
one core.  This module fans those units across N forked workers and feeds
the results back — *without* owning the pipeline:

**The parallel layer only pre-seeds the unit cache.**  Workers compute
units for their assigned function indices and ship them to the parent,
which files them via :meth:`FunctionUnitCache.seed`.  The unchanged serial
pipeline then recomposes the module and finds every unit already present —
so the parallel-compiled :class:`~repro.wasm.ast.WasmModule` is dataclass-
and content-key-identical to a serial compile *by construction*, and any
parallel failure (a dead worker, an unpicklable unit, fork unavailable)
simply means fewer seeds: the serial recompose recomputes the gaps.  There
is no parallel-only code path that could produce a different module.

Two phases hang off :meth:`repro.runtime.ModuleCache.lower`'s miss path:

* **Phase A** (:func:`precompute_function_units`), before ``lower_module``:
  workers lower each assigned RichWasm function, run the ``FunctionPass``
  chain on it to a local fixpoint (caching every (pass, version) step,
  including the zero-rewrite confirms the parent's global fixpoint will
  look up), validate it against a *signature skeleton*
  (:meth:`repro.lower.compiler.ModuleLowering.signature_skeleton` — same
  ``wasm_signature_digest`` as the final module, so the unit keys match),
  and flat-decode it.  ``ModulePass``es (dead-function stubbing) stay
  serial in the parent: they need the whole module.
* **Phase B** (:func:`precompute_translate_units`), after lower/validate
  when the engine is ``compiled``: workers emit each function's Python
  source chunk and ``compile()`` it (the dominant cost of translation),
  shipping ``(chunk, mode, pool_values, marshal(code))``; the parent
  rebuilds the callable with an ``exec`` (nearly free).

Workers read units through a tiered view (:class:`_TieredUnits`): their own
local memo → the fork-inherited parent cache → the shared
:class:`repro.cluster.DiskCache` (under ``unit.<stage>`` stage names, so
concurrent and future compiles warm-read each other's function-granular
work) → compute.  Units a worker *compiled* are seeded ``fresh=True`` so
the parent's first lookup counts a miss, units it warm-read from disk seed
``fresh=False`` — reproducing exactly the ``Diagnostics.units``
reused/compiled counts a serial compile records, with no double counting
(satellite: stats exactness).  Worker-side metrics snapshots (taken after
:func:`repro.cluster.worker.reset_inherited_telemetry`) fold through
:func:`repro.obs.merge_snapshots` into the :class:`ParcompileReport`.

Scheduling is work-stealing-style: tasks are batched largest-first by
instruction count onto one shared queue; fast workers steal the tail, so a
straggler function cannot serialize the pool.  Worker death is detected
with the PR 9 dispatcher idiom (``exitcode`` checks inside the drain
loop's ``Empty`` timeouts), counted on the ``compile.worker_died``
counter, and loses only the dead worker's in-flight batch — which the
serial recompose then computes.  ``CRASH_AFTER_BATCHES`` is the
deterministic fault-injection hook (fork-inherited) the tests use.
"""

from __future__ import annotations

import math
import marshal
import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Optional

from .compilepipe import FunctionUnitCache
from .obs.metrics import default_registry, merge_snapshots

__all__ = [
    "ParcompileReport",
    "precompute_function_units",
    "precompute_translate_units",
    "UNIT_STAGE_PREFIX",
    "CRASH_AFTER_BATCHES",
]

#: DiskCache stage-name prefix for function-granular units (e.g.
#: ``unit.translate``) — a namespace apart from the module-level stages
#: :class:`repro.runtime.ModuleCache` writes, so the determinism tests can
#: compare both groups independently.
UNIT_STAGE_PREFIX = "unit."

#: Wall-clock budget for one pool phase before the parent gives up and
#: falls back to serial for whatever was not seeded yet.
_DRAIN_TIMEOUT = float(os.environ.get("REPRO_PARCOMPILE_TIMEOUT", "120"))

#: Batches-per-worker granularity: more batches = better stealing, more
#: queue overhead.  4 keeps the tail short without drowning tiny modules.
_BATCHES_PER_WORKER = 4

# Deterministic fault injection (fork-inherited): ``{worker_id: n}`` makes
# that worker hard-exit (``os._exit(1)``, the cluster crash idiom) after
# completing ``n`` batches.  Tests set it in the parent before compiling.
CRASH_AFTER_BATCHES: dict[int, int] = {}

# Set in the parent immediately before forking a pool; children read it on
# entry.  Fork inheritance ships the (unpicklable, digest-warmed) module
# graph for free; ``None`` outside a pool run.
_FORK_PAYLOAD: Optional[dict] = None

_PAR_EVENTS = default_registry().counter(
    "compile.parcompile.events", "Parallel-compile pool lifecycle events by phase/outcome"
)
_WORKER_DIED = default_registry().counter(
    "compile.worker_died", "Compile workers lost mid-parallel-compile"
)


@dataclass
class ParcompileReport:
    """What one parallel compile did, for ``Diagnostics``/span attributes.

    ``units_seeded``/``units_warm`` count units the pool computed fresh vs
    warm-read from the shared disk tier, per stage; ``per_worker`` maps
    worker id → function/unit counts; ``merged_metrics`` is the
    :func:`repro.obs.merge_snapshots` fold of every worker's registry
    snapshot.  ``fallbacks`` lists the reasons any part of the compile
    stayed serial — an empty list means the pool covered everything it was
    asked to.
    """

    workers: int
    phases: list[str] = field(default_factory=list)
    worker_deaths: int = 0
    units_seeded: dict[str, int] = field(default_factory=dict)
    units_warm: dict[str, int] = field(default_factory=dict)
    per_worker: dict[int, dict[str, int]] = field(default_factory=dict)
    fallbacks: list[str] = field(default_factory=list)
    merged_metrics: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        """A JSON-able view (``Diagnostics.parcompile``)."""

        return {
            "workers": self.workers,
            "phases": list(self.phases),
            "worker_deaths": self.worker_deaths,
            "units_seeded": dict(self.units_seeded),
            "units_warm": dict(self.units_warm),
            "per_worker": {
                worker: dict(counts) for worker, counts in sorted(self.per_worker.items())
            },
            "fallbacks": list(self.fallbacks),
        }

    def _count(self, stage: str, fresh: bool) -> None:
        bucket = self.units_seeded if fresh else self.units_warm
        bucket[stage] = bucket.get(stage, 0) + 1

    def _credit(self, worker: int, *, functions: int = 0, units: int = 0) -> None:
        counts = self.per_worker.setdefault(worker, {"functions": 0, "units": 0})
        counts["functions"] += functions
        counts["units"] += units


# ---------------------------------------------------------------------------
# Worker-side unit view
# ---------------------------------------------------------------------------


class _TieredUnits:
    """A worker's ``unit_cache``: local memo → inherited parent cache →
    shared disk → compute, collecting everything the parent must seed.

    Duck-types the :class:`FunctionUnitCache` surface the pipeline layers
    call (``*_key``/``get``/``put``).  No statistics are recorded here —
    the parent replays hit/miss outcomes through
    :meth:`FunctionUnitCache.seed`'s ``fresh`` flag, keeping
    ``Diagnostics.units`` exact — but disk lookups do count on the disk
    tier's own ``disk.unit.<stage>`` stats (zeroed at worker start, merged
    back via the metrics snapshot).
    """

    def __init__(self, inherited: Optional[FunctionUnitCache], disk=None) -> None:
        self.local = FunctionUnitCache()
        self.inherited = inherited
        self.disk = disk
        #: ``(stage, key, value, fresh)`` tuples since the last :meth:`drain`.
        self.collected: list[tuple[str, str, object, bool]] = []

    def get(self, stage: str, key: str):
        value = self.local.peek(stage, key)
        if value is not None:
            return value
        if self.inherited is not None:
            # The parent already holds this unit; nothing to ship or count.
            value = self.inherited.peek(stage, key)
            if value is not None:
                return value
        if self.disk is not None:
            value = self.disk.get(UNIT_STAGE_PREFIX + stage, key)
            if value is not None:
                self.local.seed(stage, key, value, fresh=False)
                self.collected.append((stage, key, value, False))
                return value
        return None

    def put(self, stage: str, key: str, value: object) -> None:
        self.local.seed(stage, key, value)
        self.collected.append((stage, key, value, True))
        if self.disk is not None:
            try:
                self.disk.put(UNIT_STAGE_PREFIX + stage, key, value)
            except Exception:
                pass  # a failed publish only costs sharing, never correctness

    def drain(self) -> list[tuple[str, str, object, bool]]:
        units, self.collected = self.collected, []
        return units

    # -- key builders (delegated, so worker and parent keys always agree) --

    def typecheck_key(self, function, module, *, allow_caps: bool = True) -> str:
        from .compilepipe import typecheck_unit_key

        return typecheck_unit_key(function, module, allow_caps=allow_caps)

    def lower_key(self, function, module) -> str:
        from .compilepipe import lower_unit_key

        return lower_unit_key(function, module)

    def optimize_key(self, function, pass_name: str) -> str:
        from .compilepipe import optimize_unit_key

        return optimize_unit_key(function, pass_name)

    def validate_key(self, function, module) -> str:
        from .compilepipe import validate_unit_key

        return validate_unit_key(function, module)

    def decode_key(self, function) -> str:
        from .compilepipe import decode_unit_key

        return decode_unit_key(function)

    def translate_key(self, function, module, index: int, *, force_list: bool = False) -> str:
        from .compilepipe import translate_unit_key

        return translate_unit_key(function, module, index, force_list=force_list)


# ---------------------------------------------------------------------------
# Worker mains
# ---------------------------------------------------------------------------


def _function_unit_state(payload: dict) -> dict:
    """Phase A per-worker state from the fork-inherited payload."""

    from .lower.compiler import ModuleLowering

    tiered = _TieredUnits(payload.get("units"), payload.get("disk"))
    lowering = ModuleLowering(
        payload["richwasm"], memory_pages=payload["memory_pages"], unit_cache=tiered
    )
    return {
        "tiered": tiered,
        "lowering": lowering,
        "skeleton": lowering.signature_skeleton(),
        "passes": payload["passes"],
        "max_iterations": payload["max_iterations"],
        "validate": payload["validate"],
    }


def _process_function_unit(state: dict, index: int) -> None:
    """Lower → optimize-chain → validate → decode one RichWasm function."""

    from .wasm.decode import decode_function
    from .wasm.validation import validate_function

    tiered: _TieredUnits = state["tiered"]
    lowering = state["lowering"]
    skeleton = state["skeleton"]
    function = lowering._lower_function_cached(lowering.module.functions[index])

    # The FunctionPass chain to a local fixpoint, caching every
    # (pass, version) step — *including* the zero-rewrite confirms at the
    # final version, which the parent's global fixpoint iterations look up.
    passes = state["passes"]
    if passes:
        for _ in range(state["max_iterations"]):
            rewrites = 0
            for pass_ in passes:
                key = tiered.optimize_key(function, pass_.name)
                cached = tiered.get("optimize", key)
                if cached is None:
                    cached = pass_.run(function, skeleton)
                    tiered.put("optimize", key, cached)
                rewritten, count = cached
                if count:
                    function = rewritten
                    rewrites += count
            if rewrites == 0:
                break

    if state["validate"]:
        vkey = tiered.validate_key(function, skeleton)
        if tiered.get("validate", vkey) is None:
            validate_function(skeleton, function)
            tiered.put("validate", vkey, True)

    dkey = tiered.decode_key(function)
    if tiered.get("decode", dkey) is None:
        tiered.put("decode", dkey, decode_function(function))


def _translate_state(payload: dict) -> dict:
    """Phase B per-worker state from the fork-inherited payload."""

    return {
        "tiered": _TieredUnits(payload.get("units"), payload.get("disk")),
        "wasm": payload["wasm"],
        "slots": payload["slots"],
    }


def _process_translate_unit(state: dict, index: int) -> None:
    """Emit + ``compile()`` one function's translation, shipped as wire.

    The unit value that travels (and is published to disk) is
    ``(chunk, mode, pool_values, marshal(code))`` — the parent rebuilds the
    exec'd callable with :func:`repro.wasm.pygen.build_translation_unit`.
    """

    from .wasm.pygen import emit_function_chunk

    tiered: _TieredUnits = state["tiered"]
    wasm = state["wasm"]
    key = tiered.translate_key(wasm.functions[index], wasm, index)
    if tiered.get("translate", key) is not None:
        return
    chunk, mode, pool_values = emit_function_chunk(index, state["slots"], wasm)
    code = compile(chunk, f"<pygen:{wasm.name or 'module'}:f{index}>", "exec")
    tiered.put("translate", key, (index, chunk, mode, pool_values, marshal.dumps(code)))


_PHASES = {
    "function_units": (_function_unit_state, _process_function_unit),
    "translate_units": (_translate_state, _process_translate_unit),
}


def _worker_entry(worker_id: int, phase: str, task_queue, result_queue) -> None:
    """``multiprocessing`` target: steal batches until the sentinel.

    Protocol (plain picklable records, the cluster-worker idiom):
    ``{"op": "units", "worker", "units": [(stage, key, value, fresh)...],
    "functions": n}`` per batch, ``{"op": "error", "worker", "message"}``
    on failure, ``{"op": "done", "worker", "metrics": [...]}`` on exit.
    """

    from .cluster.worker import reset_inherited_telemetry

    try:
        reset_inherited_telemetry()
        build_state, process = _PHASES[phase]
        state = build_state(_FORK_PAYLOAD)
        tiered: _TieredUnits = state["tiered"]
        crash_after = CRASH_AFTER_BATCHES.get(worker_id)
        batches = 0
        while True:
            batch = task_queue.get()
            if batch is None:
                break
            for index in batch:
                process(state, index)
            result_queue.put(
                {
                    "op": "units",
                    "worker": worker_id,
                    "units": tiered.drain(),
                    "functions": len(batch),
                }
            )
            batches += 1
            if crash_after is not None and batches >= crash_after:
                os._exit(1)
        result_queue.put(
            {"op": "done", "worker": worker_id, "metrics": default_registry().snapshot()}
        )
    except BaseException as exc:  # ship the failure; the parent falls back
        try:
            result_queue.put({"op": "error", "worker": worker_id, "message": repr(exc)})
        except Exception:
            os._exit(1)


# ---------------------------------------------------------------------------
# Parent-side pool driver
# ---------------------------------------------------------------------------


def _chunk_largest_first(tasks: list[tuple[int, int]], workers: int) -> list[list[int]]:
    """Batch ``(index, weight)`` tasks largest-first for the shared queue.

    Largest-first ordering puts the expensive functions at the front of the
    steal queue, so the tail of the schedule is made of cheap batches and no
    single straggler serializes the pool.
    """

    ordered = [index for index, _ in sorted(tasks, key=lambda t: (-t[1], t[0]))]
    batch_size = max(1, math.ceil(len(ordered) / (workers * _BATCHES_PER_WORKER)))
    return [ordered[i : i + batch_size] for i in range(0, len(ordered), batch_size)]


def _seed_units(units: FunctionUnitCache, record: dict, report: ParcompileReport) -> None:
    """File one worker batch into the parent cache (phase-aware)."""

    from .wasm.pygen import build_translation_unit

    seeded = 0
    for stage, key, value, fresh in record["units"]:
        if stage == "translate":
            # Wire form — rebuild the exec'd callable parent-side; a bad
            # blob only skips the seed (serial recompose recomputes it).
            try:
                index, chunk, mode, pool_values, blob = value
                unit = build_translation_unit(
                    index, chunk, mode, pool_values, code=marshal.loads(blob)
                )
            except Exception:
                continue
            units.seed(stage, key, unit, fresh=fresh)
        else:
            units.seed(stage, key, value, fresh=fresh)
        report._count(stage, fresh)
        seeded += 1
    report._credit(record["worker"], functions=record.get("functions", 0), units=seeded)


def _run_pool(
    phase: str,
    payload: dict,
    tasks: list[tuple[int, int]],
    workers: int,
    units: FunctionUnitCache,
    report: ParcompileReport,
) -> None:
    """Fork ``workers`` processes over ``tasks`` and seed their results.

    Every failure mode — fork unavailable, worker death, drain timeout —
    degrades to "fewer units seeded" and is recorded on ``report``; the
    caller's serial pipeline computes whatever is missing.
    """

    global _FORK_PAYLOAD

    if "fork" not in mp.get_all_start_methods():
        report.fallbacks.append(f"{phase}: fork start method unavailable")
        _PAR_EVENTS.inc(phase=phase, event="fallback")
        return
    ctx = mp.get_context("fork")
    batches = _chunk_largest_first(tasks, workers)
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    for batch in batches:
        task_queue.put(batch)
    for _ in range(workers):
        task_queue.put(None)

    _FORK_PAYLOAD = payload
    try:
        procs = [
            ctx.Process(
                target=_worker_entry,
                args=(worker_id, phase, task_queue, result_queue),
                daemon=True,
                name=f"repro-parcompile-{phase}-{worker_id}",
            )
            for worker_id in range(workers)
        ]
        for proc in procs:
            proc.start()
    finally:
        _FORK_PAYLOAD = None

    report.phases.append(phase)
    _PAR_EVENTS.inc(phase=phase, event="pool_started")
    finished: set[int] = set()
    deadline = time.monotonic() + _DRAIN_TIMEOUT
    while len(finished) < workers and time.monotonic() < deadline:
        try:
            record = result_queue.get(timeout=0.25)
        except queue_mod.Empty:
            # The dispatcher death-detection idiom: inside every idle
            # window, sweep for workers that exited without a done record.
            for worker_id, proc in enumerate(procs):
                if worker_id not in finished and proc.exitcode is not None:
                    finished.add(worker_id)
                    report.worker_deaths += 1
                    _WORKER_DIED.inc(phase=phase)
                    _PAR_EVENTS.inc(phase=phase, event="worker_died")
            continue
        op = record.get("op")
        if op == "units":
            _seed_units(units, record, report)
        elif op == "done":
            finished.add(record["worker"])
            report.merged_metrics = merge_snapshots(
                report.merged_metrics, record.get("metrics", [])
            )
        elif op == "error":
            finished.add(record["worker"])
            report.fallbacks.append(f"{phase}: worker {record['worker']}: {record['message']}")
            _PAR_EVENTS.inc(phase=phase, event="worker_error")
    if len(finished) < workers:
        report.fallbacks.append(f"{phase}: drain timeout after {_DRAIN_TIMEOUT:.0f}s")
        _PAR_EVENTS.inc(phase=phase, event="drain_timeout")

    for proc in procs:
        proc.join(timeout=0.5)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=0.5)
    for q in (task_queue, result_queue):
        q.cancel_join_thread()
        q.close()
    _PAR_EVENTS.inc(phase=phase, event="pool_finished")


# ---------------------------------------------------------------------------
# Public entry points (called from ModuleCache.lower's miss path)
# ---------------------------------------------------------------------------


def _function_passes(passes) -> list:
    from .opt.manager import FunctionPass

    return [p for p in (passes or ()) if isinstance(p, FunctionPass)]


def precompute_function_units(
    richwasm,
    config,
    units: FunctionUnitCache,
    *,
    disk=None,
    passes=None,
    report: Optional[ParcompileReport] = None,
) -> Optional[ParcompileReport]:
    """Phase A: pre-seed lower/optimize/validate/decode units in parallel.

    Plans the fan-out (which defined functions still miss their lower unit,
    or — when only the pass pipeline changed — their first optimize step),
    pre-warms the digests the keys hash (so forked children inherit them
    cached), and runs the pool.  Returns the report (``None`` only when
    ``config.compile_workers <= 1``); the caller then runs the unchanged
    serial ``lower_module``/``validate_module``, which recomposes from the
    seeds.
    """

    workers = getattr(config, "compile_workers", 1) or 1
    if workers <= 1:
        return report
    if report is None:
        report = ParcompileReport(workers=workers)
    try:
        from .compilepipe import lower_unit_key, optimize_unit_key
        from .core.syntax.modules import Function, signature_env_digest

        pipeline = passes if passes is not None else config.passes()
        function_passes = _function_passes(pipeline)
        signature_env_digest(richwasm)  # digest pre-warm, inherited by children

        tasks: list[tuple[int, int]] = []
        for index, decl in enumerate(richwasm.functions):
            if not isinstance(decl, Function):
                continue
            cached = units.peek("lower", lower_unit_key(decl, richwasm))
            if cached is None:
                tasks.append((index, decl.instruction_count()))
            elif function_passes and (
                units.peek(
                    "optimize", optimize_unit_key(cached[0], function_passes[0].name)
                )
                is None
            ):
                # Lowering is warm but the (new) pipeline's chain is not —
                # the opt-level-change recompile still fans out.
                tasks.append((index, decl.instruction_count()))
        if not tasks:
            return report

        payload = {
            "richwasm": richwasm,
            "memory_pages": config.memory_pages,
            "passes": function_passes,
            "max_iterations": 8,
            "validate": bool(getattr(config, "validate_wasm", True)),
            "units": units,
            "disk": disk,
        }
        _run_pool("function_units", payload, tasks, workers, units, report)
    except Exception as exc:  # never let the accelerator break a compile
        report.fallbacks.append(f"function_units: {exc!r}")
        _PAR_EVENTS.inc(phase="function_units", event="fallback")
    return report


def precompute_translate_units(
    wasm,
    config,
    units: FunctionUnitCache,
    *,
    disk=None,
    report: Optional[ParcompileReport] = None,
) -> Optional[ParcompileReport]:
    """Phase B: pre-seed compiled-tier translate units in parallel.

    Runs on the lowered, validated ``wasm`` when the engine is ``compiled``.
    The parent decodes first (all units hit after phase A, and decode stats
    land exactly once because :func:`repro.wasm.decode.decode_module`
    memoizes per object), then fans the emit + ``compile()`` work out.
    Warm disk wire units are rebuilt parent-side without forking at all.
    """

    workers = getattr(config, "compile_workers", 1) or 1
    if workers <= 1:
        return report
    if report is None:
        report = ParcompileReport(workers=workers)
    try:
        from .compilepipe import translate_unit_key, wasm_signature_digest
        from .wasm.ast import WasmFunction
        from .wasm.decode import decode_module
        from .wasm.pygen import build_translation_unit

        wasm_signature_digest(wasm)  # digest pre-warm, inherited by children
        slots = decode_module(wasm, unit_cache=units).flat

        tasks: list[tuple[int, int]] = []
        for index, function in enumerate(wasm.functions):
            if not isinstance(function, WasmFunction):
                continue
            key = translate_unit_key(function, wasm, index)
            if units.peek("translate", key) is not None:
                continue
            if disk is not None:
                wire = disk.get(UNIT_STAGE_PREFIX + "translate", key)
                if wire is not None:
                    try:
                        windex, chunk, mode, pool_values, blob = wire
                        unit = build_translation_unit(
                            windex, chunk, mode, pool_values, code=marshal.loads(blob)
                        )
                    except Exception:
                        pass
                    else:
                        units.seed("translate", key, unit, fresh=False)
                        report._count("translate", False)
                        continue
            flat = slots[index]
            weight = len(getattr(flat, "code", ()) or ()) or 1
            tasks.append((index, weight))
        if not tasks:
            return report

        payload = {"wasm": wasm, "slots": slots, "units": units, "disk": disk}
        _run_pool("translate_units", payload, tasks, workers, units, report)
    except Exception as exc:  # never let the accelerator break a compile
        report.fallbacks.append(f"translate_units: {exc!r}")
        _PAR_EVENTS.inc(phase="translate_units", event="fallback")
    return report
