"""Deprecation shims for the pre-``repro.api`` keyword surface.

Before the :mod:`repro.api` facade, every compile entry point re-threaded its
own overlapping ``memory_pages``/``optimize``/``engine`` keywords.  Those
keywords still work for one release, but each call that uses them emits
exactly one :class:`DeprecationWarning` pointing at the replacement:
``config=repro.api.CompileConfig(...)``.

:func:`legacy_config` is the single implementation every shim shares, so the
warning text, the "config or legacy keywords, not both" rule, and the
one-warning-per-call guarantee stay uniform.  This module deliberately has no
package-level imports from :mod:`repro.api` (shims live below it in the
import graph); the config class is resolved lazily at call time.
"""

from __future__ import annotations

import warnings


class _Unset:
    """Sentinel distinguishing "keyword not passed" from an explicit value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()


def legacy_config(api_name, config, legacy, *, cache_policy="none", stacklevel=3):
    """Resolve one entry point's ``config=`` / legacy-keyword arguments.

    ``legacy`` maps keyword names to the values the caller passed (or
    :data:`UNSET`).  Exactly one :class:`DeprecationWarning` is emitted when
    any legacy keyword was actually given; combining them with ``config=`` is
    a :class:`~repro.api.ConfigError`.  ``cache_policy`` is the
    :attr:`~repro.api.CompileConfig.cache` policy matching the entry point's
    historical behaviour (``"none"`` for the direct-lowering paths,
    ``"private"``/``"shared"`` for the cached ones) and is applied both to
    legacy calls and to bare calls with no ``config``.

    Returns a validated :class:`~repro.api.CompileConfig`.
    """

    from .api.config import CompileConfig, ConfigError

    passed = {name: value for name, value in legacy.items() if value is not UNSET}
    if passed:
        names = ", ".join(sorted(passed))
        if config is not None:
            raise ConfigError(
                f"{api_name}: pass either config= or the deprecated keyword(s) {names}, not both"
            )
        warnings.warn(
            f"{api_name}: the {names} keyword(s) are deprecated; "
            f"pass config=repro.api.CompileConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return CompileConfig.from_legacy(cache=cache_policy, **passed)
    if config is None:
        return CompileConfig(cache=cache_policy).validate()
    return CompileConfig.of(config)


def codegen_lowering(api_name, richwasm, *, lower, cache, config, legacy):
    """The shared lowering tail of ``compile_ml_module``/``compile_l3_module``.

    Decides whether the caller asked for lowering at all (``lower=True``, a
    config, a cache, or any legacy keyword); returns ``None`` when not, so
    the codegen entry point hands back the RichWasm module.  Otherwise the
    request resolves like the facade: an explicit ``cache`` object wins,
    else the config's cache *policy* (``"shared"``/``"private"``/``"none"``)
    — legacy keyword calls map to policy ``"none"``, preserving their
    historical compile-fresh behaviour.
    """

    wants_lowering = (
        lower or cache is not None or config is not None
        or any(value is not UNSET for value in legacy.values())
    )
    if not wants_lowering:
        return None
    config = legacy_config(api_name, config, legacy, stacklevel=4)
    if cache is None:
        from .api.facade import _resolve_cache

        cache = _resolve_cache(config, None)
    if cache is not None:
        return cache.lower(richwasm, config=config)
    from .lower import lower_module

    return lower_module(richwasm, config=config)
