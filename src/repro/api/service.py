"""The serving facade: a compiled program behind one call surface.

:class:`Service` (built by :func:`repro.api.serve`) wraps an
:class:`~repro.runtime.InstancePool` and :class:`~repro.runtime.BatchRunner`
around one :class:`~repro.runtime.CompiledProgram`: :meth:`Service.call` for
single invocations (raising :class:`~repro.wasm.interpreter.WasmTrap` on
traps), :meth:`Service.run`/:meth:`Service.session` for batched and stateful
request streams with per-request budgets and trap isolation.

Export names resolve leniently but never silently: linked programs namespace
exports as ``module.export``, and :func:`resolve_export` accepts either the
full name or an unambiguous suffix — an unknown or ambiguous name raises
:class:`~repro.core.typing.errors.LinkError` naming every candidate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.typing.errors import LinkError
from ..obs.trace import get_tracer
from ..runtime.batch import BatchReport, BatchRunner, Request, RequestOutcome, Session, _normalize_requests
from ..runtime.cache import CacheStats, ModuleCache
from ..runtime.pool import InstancePool, PoolStats
from ..wasm.interpreter import WasmTrap
from .config import CompileConfig


def resolve_export(exports: Sequence[str], name: str) -> str:
    """Resolve ``name`` against a linked program's export table.

    Exact matches win; otherwise a unique ``*.name`` suffix match resolves
    (linked programs namespace every export as ``module.export``).  No match
    or an ambiguous suffix raises :class:`LinkError` naming the candidates.
    """

    if name in exports:
        return name
    candidates = [export for export in sorted(exports) if export.endswith("." + name)]
    if len(candidates) == 1:
        return candidates[0]
    if candidates:
        raise LinkError(
            f"ambiguous export {name!r}: candidates {', '.join(candidates)}"
        )
    raise LinkError(
        f"no export named {name!r}; available: {', '.join(sorted(exports))}"
    )


@dataclass(frozen=True)
class ServiceStats:
    """One structured snapshot of a service's runtime counters."""

    pool: PoolStats
    cache: Optional[dict] = None  # stage name -> CacheStats


class Service:
    """A ready-to-serve compiled program (pool + batch runner)."""

    def __init__(
        self,
        compiled,
        config: CompileConfig,
        pool: InstancePool,
        *,
        cache: Optional[ModuleCache] = None,
    ) -> None:
        self.compiled = compiled
        self.config = config
        self.pool = pool
        self.runner = BatchRunner(pool)
        self._cache = cache
        self._exports = tuple(sorted(compiled.wasm.exported_functions()))

    # -- introspection -----------------------------------------------------

    @property
    def exports(self) -> tuple[str, ...]:
        return self._exports

    @property
    def diagnostics(self):
        """The compile-time :class:`~repro.api.Diagnostics` of the program."""

        return getattr(self.compiled, "diagnostics", None)

    def stats(self) -> ServiceStats:
        return ServiceStats(
            pool=self.pool.stats,
            cache=dict(self._cache.stats) if self._cache is not None else None,
        )

    def resolve(self, name: str) -> str:
        return resolve_export(self._exports, name)

    # -- execution ---------------------------------------------------------

    def call(self, export: str, args: Sequence = (), *, max_steps: Optional[int] = None):
        """One invocation on a pooled instance; returns the result values.

        Traps (including blown step budgets) raise :class:`WasmTrap`; the
        trapped instance is discarded by the pool, so later calls are
        isolated either way.
        """

        with get_tracer().span("service.call", export=export):
            outcome = self.runner.run_one(Request(self.resolve(export), tuple(args), max_steps))
            if not outcome.ok:
                raise WasmTrap(outcome.trap)
            return outcome.values

    def run_one(self, request) -> RequestOutcome:
        """One :class:`Request`/:class:`Session` (or tuple), trap-isolated."""

        (request,) = _normalize_requests([request])
        return self.runner.run_one(self._resolved(request))

    def run(self, requests) -> BatchReport:
        """A batch of requests, each on its own pooled-reset instance."""

        resolved = [self._resolved(request) for request in _normalize_requests(requests)]
        with get_tracer().span("service.run", requests=len(resolved)):
            return self.runner.run(resolved)

    def session(self, calls, *, max_steps: Optional[int] = None,
                session_id: Optional[str] = None) -> RequestOutcome:
        """A stateful call script served by one pooled instance.

        ``session_id`` is accepted for parity with
        :meth:`repro.cluster.ClusterService.session` (where it pins the
        session to a worker); in-process there is nothing to pin.
        """

        calls = tuple(calls)
        with get_tracer().span("service.session", calls=len(calls)):
            return self.run_one(
                Session(calls=calls, max_steps=max_steps, session_id=session_id)
            )

    def warm(self, count: int) -> None:
        """Pre-create pooled instances up to ``count`` idle entries."""

        self.pool.warm(count)

    # -- lifecycle ---------------------------------------------------------
    #
    # The in-process service holds no external resources, but it mirrors
    # ClusterService's context-manager surface so call sites stay portable
    # across ``workers=1`` and ``workers=N``.

    def close(self) -> None:
        """Release pooled instances (a no-op beyond dropping references)."""

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _resolved(self, request):
        if isinstance(request, Session):
            return dataclasses.replace(
                request,
                calls=tuple((self.resolve(export), tuple(args)) for export, args in request.calls),
            )
        return dataclasses.replace(request, export=self.resolve(request.export))
