"""The frontend registry: every source language behind one interface.

A :class:`Frontend` turns one source-language module into a RichWasm
:class:`~repro.core.syntax.Module`; :func:`repro.api.compile` accepts any mix
of registered frontends in one source set and links the results into a
single program.  Three frontends ship:

* ``ml`` — the §5 GC'd functional language (:class:`repro.ml.MLModule`,
  compiled via :func:`repro.ml.compile_ml_module`);
* ``l3`` — the §5 linear language (:class:`repro.l3.L3Module`, compiled via
  :func:`repro.l3.compile_l3_module`);
* ``richwasm`` — hand-built RichWasm term modules
  (:class:`repro.core.syntax.Module`, e.g. from the textual constructors in
  ``repro.core.syntax``), passed through unchanged.

Sources are dispatched by type (:func:`detect_frontend`) or explicitly by
name (``("l3", module)`` pairs, :func:`resolve_frontend`).  The registry is
open: new languages plug in via :func:`register_frontend` without touching
the facade.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from .config import CompileConfig, ConfigError


class Frontend(ABC):
    """One source language: a name, a source type, and a compile step."""

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def source_types(self) -> tuple[type, ...]:
        """The source AST types this frontend accepts."""

    @abstractmethod
    def compile_source(self, source, config: CompileConfig):
        """Compile ``source`` to a RichWasm :class:`~repro.core.syntax.Module`."""

    def handles(self, source) -> bool:
        return isinstance(source, self.source_types())


class MLFrontend(Frontend):
    name = "ml"

    def source_types(self) -> tuple[type, ...]:
        from ..ml.ast import MLModule

        return (MLModule,)

    def compile_source(self, source, config: CompileConfig):
        from ..ml import compile_ml_module

        return compile_ml_module(source)


class L3Frontend(Frontend):
    name = "l3"

    def source_types(self) -> tuple[type, ...]:
        from ..l3.ast import L3Module

        return (L3Module,)

    def compile_source(self, source, config: CompileConfig):
        from ..l3 import compile_l3_module

        return compile_l3_module(source)


class RichWasmFrontend(Frontend):
    """Already-RichWasm term modules pass through unchanged."""

    name = "richwasm"

    def source_types(self) -> tuple[type, ...]:
        from ..core.syntax import Module

        return (Module,)

    def compile_source(self, source, config: CompileConfig):
        return source


_FRONTENDS: dict[str, Frontend] = {}


def register_frontend(frontend: Frontend, *, replace: bool = False) -> Frontend:
    """Install a frontend under its ``name`` (``replace=True`` to override)."""

    if not isinstance(frontend, Frontend):
        raise ConfigError(f"expected a Frontend instance, got {type(frontend).__name__}")
    if frontend.name in _FRONTENDS and not replace:
        raise ConfigError(
            f"frontend {frontend.name!r} is already registered; pass replace=True to override"
        )
    _FRONTENDS[frontend.name] = frontend
    return frontend


def available_frontends() -> tuple[str, ...]:
    """The registered frontend names, sorted."""

    return tuple(sorted(_FRONTENDS))


def resolve_frontend(name: str) -> Frontend:
    """Look a frontend up by name, or raise naming the registered ones."""

    try:
        return _FRONTENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown frontend {name!r}; registered frontends: {', '.join(available_frontends())}"
        ) from None


def detect_frontend(source) -> Frontend:
    """Dispatch a source object to the frontend that accepts its type."""

    for frontend in _FRONTENDS.values():
        if frontend.handles(source):
            return frontend
    raise ConfigError(
        f"no registered frontend accepts a source of type {type(source).__name__}; "
        f"registered frontends: {', '.join(available_frontends())}"
    )


for _frontend in (MLFrontend(), L3Frontend(), RichWasmFrontend()):
    register_frontend(_frontend)
del _frontend
