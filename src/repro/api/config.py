"""The one configuration object the whole compile/run pipeline keys on.

:class:`CompileConfig` replaces the ``memory_pages``/``optimize``/``engine``/
``cache`` keyword sprawl that every entry point used to re-thread: it is a
frozen dataclass, so one validated value describes a compile end to end and
can be shared, compared and hashed.  Two groups of fields:

* **compile content** — ``opt_level`` (a named :mod:`repro.opt.pipelines`
  level), ``memory_pages`` and ``link_name``.  These determine the compiled
  artifact bit for bit and are exactly what :meth:`content_key` hashes; the
  digest is used directly as the :class:`repro.runtime.ModuleCache` key, so
  two configs that compile identically share one cache entry.
* **execution bookkeeping** — ``engine``, ``cache`` policy, ``max_steps``,
  ``pool_size`` and the validation toggles.  These select *how* the artifact
  is built and run, never *what* is built, and are deliberately excluded
  from :meth:`content_key` (the engine-bit-identity contract of PR 2/3: one
  compiled payload serves every engine).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union


class ConfigError(ValueError):
    """A :class:`CompileConfig` (or facade argument) failed validation."""


#: Accepted ``CompileConfig.cache`` policies.
#:
#: * ``"shared"`` — the process-wide :func:`repro.runtime.default_cache`;
#: * ``"private"`` — a fresh :class:`~repro.runtime.ModuleCache` per
#:   facade call (stages still dedupe within the call);
#: * ``"none"`` — no memoization: compile directly from source.
CACHE_POLICIES = ("shared", "private", "none")


@dataclass(frozen=True)
class CompileConfig:
    """Configuration for :func:`repro.api.compile` / :func:`repro.api.serve`.

    Construct with keywords, then :meth:`validate` (the facade validates for
    you).  Instances are immutable; derive variants with :meth:`replace`.
    """

    #: Named optimization level — a :mod:`repro.opt.pipelines` registry name
    #: (``"O0"``/``"O1"``/``"O2"`` ship; ``1`` and ``"o1"`` normalize).
    opt_level: str = "O0"
    #: Execution-engine *name* (``"flat"``/``"tree"``/``"compiled"``);
    #: ``None`` = default.
    #: An :class:`~repro.wasm.engine.ExecutionEngine` instance normalizes to
    #: its registry name — configs record preferences, not live engines.
    engine: Optional[str] = None
    #: Initial linear-memory size of the lowered module, in 64 KiB pages.
    memory_pages: int = 4
    #: Cache policy — one of :data:`CACHE_POLICIES`.
    cache: str = "shared"
    #: Default step budget for instances built from this config
    #: (``None`` = unlimited); per-request budgets still override.
    max_steps: Optional[int] = None
    #: ``InstancePool`` size used by :func:`repro.api.serve`.
    pool_size: int = 4
    #: Validate the lowered Wasm module (:func:`repro.wasm.validate_module`).
    validate_wasm: bool = True
    #: Re-check cross-module import/export agreement before linking.  Safe to
    #: disable when the sources came from an already-checked ``Program``.
    check_links: bool = True
    #: Name given to the statically linked module.
    link_name: str = "linked"
    #: Worker-process count for :func:`repro.api.serve`.  ``1`` (default)
    #: serves in-process (:class:`~repro.api.Service`); ``>1`` builds a
    #: :class:`repro.cluster.ClusterService` dispatching over that many
    #: worker processes.
    workers: int = 1
    #: Compile-side worker-process count for parallel per-function
    #: compilation (:mod:`repro.parcompile`).  ``1`` (default) compiles
    #: serially in-process; ``>1`` fans a cold compile's function units
    #: (lower/optimize/validate/decode/translate) across that many forked
    #: workers, falling back to serial when fork is unavailable or a worker
    #: dies.  Bookkeeping like ``engine``: excluded from :meth:`content_key`
    #: — the compiled artifact is bit-identical at any worker count.
    compile_workers: int = 1
    #: Cache-root directory for the durable artifact tier
    #: (:class:`repro.cluster.DiskCache`).  ``None`` = memory-only caching;
    #: a path makes every compile warm-startable by other processes sharing
    #: the directory (lookup order: memory → disk → compile).
    cache_dir: Optional[str] = None
    #: Byte budget for the disk tier (mtime-LRU eviction); ``None`` =
    #: unbounded.  Ignored without :attr:`cache_dir`.
    disk_cache_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        level = self.opt_level
        if isinstance(level, int) and not isinstance(level, bool):
            level = f"O{level}"
        elif isinstance(level, str):
            level = level.strip().upper()
        object.__setattr__(self, "opt_level", level)

        engine = self.engine
        if engine is not None and not isinstance(engine, str):
            name = getattr(engine, "name", None)
            if isinstance(name, str):
                object.__setattr__(self, "engine", name)

        # Path-like cache directories normalize to their string form so
        # configs stay hashable/comparable by value.
        cache_dir = self.cache_dir
        if cache_dir is not None and not isinstance(cache_dir, str):
            fspath = getattr(cache_dir, "__fspath__", None)
            if callable(fspath):
                object.__setattr__(self, "cache_dir", fspath())

    # -- validation --------------------------------------------------------

    def validate(self) -> "CompileConfig":
        """Check every field, returning ``self`` for chaining.

        Raises :class:`ConfigError` with a message naming the registered
        alternatives for registry-backed fields (opt levels, engines, cache
        policies).
        """

        from ..opt.pipelines import pipeline_names
        from ..wasm.engine import available_engines

        if self.opt_level not in pipeline_names():
            raise ConfigError(
                f"unknown opt level {self.opt_level!r}; registered levels: "
                f"{', '.join(pipeline_names())}"
            )
        if self.engine is not None and self.engine not in available_engines():
            raise ConfigError(
                f"unknown execution engine {self.engine!r}; registered engines: "
                f"{', '.join(available_engines())}"
            )
        if not self._is_int(self.memory_pages) or self.memory_pages < 1:
            raise ConfigError(f"memory_pages must be a positive int, got {self.memory_pages!r}")
        if self.cache not in CACHE_POLICIES:
            raise ConfigError(
                f"unknown cache policy {self.cache!r}; expected one of: {', '.join(CACHE_POLICIES)}"
            )
        if self.max_steps is not None and (not self._is_int(self.max_steps) or self.max_steps < 1):
            raise ConfigError(f"max_steps must be a positive int or None, got {self.max_steps!r}")
        if not self._is_int(self.pool_size) or self.pool_size < 1:
            raise ConfigError(f"pool_size must be a positive int, got {self.pool_size!r}")
        if not self._is_int(self.workers) or self.workers < 1:
            raise ConfigError(f"workers must be a positive int, got {self.workers!r}")
        if not self._is_int(self.compile_workers) or self.compile_workers < 1:
            raise ConfigError(
                f"compile_workers must be a positive int, got {self.compile_workers!r}"
            )
        if self.cache_dir is not None and (not isinstance(self.cache_dir, str) or not self.cache_dir):
            raise ConfigError(
                f"cache_dir must be a non-empty path string or None, got {self.cache_dir!r}"
            )
        if self.disk_cache_bytes is not None and (
            not self._is_int(self.disk_cache_bytes) or self.disk_cache_bytes < 1
        ):
            raise ConfigError(
                f"disk_cache_bytes must be a positive int or None, got {self.disk_cache_bytes!r}"
            )
        if not isinstance(self.link_name, str) or not self.link_name:
            raise ConfigError(f"link_name must be a non-empty string, got {self.link_name!r}")
        for name in ("validate_wasm", "check_links"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigError(f"{name} must be a bool, got {getattr(self, name)!r}")
        return self

    @staticmethod
    def _is_int(value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    # -- derived views -----------------------------------------------------

    @property
    def optimize(self) -> bool:
        """Whether this config runs any optimization passes."""

        return self.opt_level != "O0"

    def passes(self):
        """The pass pipeline for :attr:`opt_level` (``None`` for ``O0``)."""

        if self.opt_level == "O0":
            return None
        from ..opt.pipelines import pipeline_passes

        return pipeline_passes(self.opt_level)

    def pass_names(self) -> tuple[str, ...]:
        """The pipeline's pass names, in order (empty for ``O0``)."""

        return tuple(p.name for p in (self.passes() or ()))

    def content_key(self) -> str:
        """The canonical content hash of the compile-relevant fields.

        Covers ``opt_level`` (expanded to its pass names, so a re-registered
        pipeline changes the key), ``memory_pages`` and ``link_name`` —
        nothing else.  ``engine``, ``cache``, ``max_steps``, ``pool_size``,
        ``workers``, ``compile_workers``, ``cache_dir``/``disk_cache_bytes``
        and the validation toggles do not change the compiled artifact and
        therefore do not change the key (so disk entries are shared across
        worker counts, compile parallelism and cache locations).  :class:`repro.runtime.ModuleCache`
        combines this digest with the source module's own content hash to
        key its stages.
        """

        from ..runtime.cache import content_key

        return content_key(
            "CompileConfig", self.opt_level, self.pass_names(), self.memory_pages, self.link_name
        )

    # -- construction ------------------------------------------------------

    def replace(self, **overrides) -> "CompileConfig":
        """A validated copy with ``overrides`` applied."""

        return dataclasses.replace(self, **overrides).validate()

    @classmethod
    def of(cls, config: Union["CompileConfig", str, int, dict, None] = None, **overrides) -> "CompileConfig":
        """Coerce ``config`` (+ field overrides) into a validated config.

        Accepts ``None`` (defaults), an existing :class:`CompileConfig`, a
        bare opt level (``"O2"`` / ``2``), or a field dict.
        """

        if config is None:
            built = cls(**overrides)
        elif isinstance(config, cls):
            built = dataclasses.replace(config, **overrides) if overrides else config
        elif isinstance(config, (str, int)) and not isinstance(config, bool):
            built = cls(opt_level=config, **overrides)
        elif isinstance(config, dict):
            built = cls(**{**config, **overrides})
        else:
            raise ConfigError(
                f"cannot build a CompileConfig from {type(config).__name__}; "
                "pass a CompileConfig, an opt level name, a field dict, or None"
            )
        return built.validate()

    @classmethod
    def from_legacy(
        cls,
        *,
        optimize: Optional[bool] = None,
        memory_pages: Optional[int] = None,
        engine=None,
        max_steps: Optional[int] = None,
        pool_size: Optional[int] = None,
        cache: str = "none",
    ) -> "CompileConfig":
        """Map the deprecated keyword surface onto a config.

        ``optimize=True`` historically ran the full default pipeline, so it
        maps to ``O2``; ``cache`` here is the *policy* matching the entry
        point's historical caching behaviour (live ``ModuleCache`` objects
        are facade arguments, not config fields).
        """

        updates: dict = {"cache": cache}
        if optimize is not None:
            updates["opt_level"] = "O2" if optimize else "O0"
        if memory_pages is not None:
            updates["memory_pages"] = memory_pages
        if engine is not None:
            updates["engine"] = engine
        if max_steps is not None:
            updates["max_steps"] = max_steps
        if pool_size is not None:
            updates["pool_size"] = pool_size
        return cls(**updates).validate()
