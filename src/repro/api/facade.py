"""``repro.api.compile`` / ``repro.api.lower`` / ``repro.api.serve``.

The single configuration-driven entry surface over the whole stack: sources
(any mix of registered frontends, or pre-built scenario/program objects) plus
one :class:`CompileConfig` in; a shareable
:class:`~repro.runtime.CompiledProgram` (or a :class:`Service` ready to take
traffic) with :class:`Diagnostics` attached out.  The legacy entry points
(``Program.lower``/``compile``/``instantiate_wasm``, the ml/l3 codegen
functions, ``lower_module``, ``scenario_service``) are thin deprecation
shims over these three functions.
"""

from __future__ import annotations

from typing import Optional, Union

from ..obs.metrics import default_registry
from ..obs.trace import get_tracer
from ..runtime.cache import CompiledProgram, ModuleCache
from .config import CompileConfig, ConfigError
from .diagnostics import Diagnostics
from .frontends import detect_frontend, resolve_frontend
from .service import Service

# Same instrument the ModuleCache stages record hits/misses into; the facade
# owns the bypass decisions, so it records them.
_CACHE_EVENTS = default_registry().counter(
    "runtime.cache.events", "ModuleCache stage lookups by stage/outcome"
)


def _bypass(diagnostics: Diagnostics, *stages: str) -> None:
    for stage in stages:
        diagnostics.cache[stage] = "bypass"
        _CACHE_EVENTS.inc(stage=stage, event="bypass")


def _record_units(diagnostics: Diagnostics, cache: ModuleCache, before: dict, span=None) -> None:
    """Fold the per-function unit reuse since ``before`` (a
    ``cache.units.snapshot()``) into ``diagnostics.units``, and attach the
    aggregate counts to the stage's tracing span."""

    reused = compiled = 0
    for stage, counts in cache.units.delta(before).items():
        merged = diagnostics.units.setdefault(stage, {"reused": 0, "compiled": 0})
        merged["reused"] += counts["reused"]
        merged["compiled"] += counts["compiled"]
        reused += counts["reused"]
        compiled += counts["compiled"]
    if span is not None and (reused or compiled):
        span.set_attr(units_reused=reused, units_compiled=compiled)


def _record_parcompile(diagnostics: Diagnostics, cache: ModuleCache, span=None) -> None:
    """Surface the parallel-compile report the cache just produced (if any)
    on ``diagnostics.parcompile`` and the stage's tracing span."""

    report = getattr(cache, "last_parcompile", None)
    if report is None:
        return
    diagnostics.parcompile = report.as_dict()
    if span is not None:
        span.set_attr(
            compile_workers=report.workers,
            parcompile_worker_deaths=report.worker_deaths,
            parcompile_units_seeded=sum(report.units_seeded.values()),
            parcompile_units_warm=sum(report.units_warm.values()),
            parcompile_per_worker=diagnostics.parcompile["per_worker"],
        )


def compile(sources, config: Union[CompileConfig, str, int, dict, None] = None, *,
            cache: Optional[ModuleCache] = None, **overrides) -> CompiledProgram:
    """Compile any mix of sources into one shareable :class:`CompiledProgram`.

    ``sources`` may be:

    * a ``{name: source}`` dict, where each source is an
      :class:`~repro.ml.MLModule`, an :class:`~repro.l3.L3Module`, a RichWasm
      :class:`~repro.core.syntax.Module`, or an explicit
      ``(frontend_name, source)`` pair — frontends may be freely mixed; the
      compiled modules are statically linked into one program;
    * a single source module (dispatched by type; a bare RichWasm ``Module``
      is treated as already linked and passed through un-namespaced);
    * an :class:`repro.ffi.InteropScenario`, a :class:`repro.ffi.Program`,
      or a zero-argument builder returning any of the above.

    ``config`` is coerced via :meth:`CompileConfig.of` (``None``, a config,
    an opt level like ``"O2"``, or a field dict) and merged with keyword
    ``overrides``; ``cache`` optionally pins an explicit
    :class:`~repro.runtime.ModuleCache`, overriding the config's cache
    policy.  The returned program carries :class:`Diagnostics` (stage
    timings, per-stage cache events, per-pass optimizer stats) and is keyed
    by the canonical content hash of the linked program plus
    :meth:`CompileConfig.content_key`.
    """

    config = CompileConfig.of(config, **overrides)
    with get_tracer().span(
        "api.compile", opt_level=config.opt_level, cache_policy=config.cache
    ) as span:
        diagnostics = Diagnostics(config=config)
        with diagnostics.stage("frontend"):
            modules, diagnostics.frontends = _compile_sources(sources, config)
        cache_obj = _resolve_cache(config, cache)
        if cache_obj is None:
            program = _compile_direct(modules, config, diagnostics)
        else:
            program = _compile_cached(modules, config, cache_obj, diagnostics)
        # Read the stored key, not the lazy property: off the cache paths the
        # program hash is computed only if someone actually asks for it.
        diagnostics.key = program.cached_key
        diagnostics.engine = program.engine
        diagnostics.optimization = program.lowered.optimization
        program.diagnostics = diagnostics
        if program.cached_key is not None:
            span.set_attr(key=program.cached_key)
        span.set_attr(cache_hit=diagnostics.cache.get("program") == "hit")
        return program


def lower(sources, config: Union[CompileConfig, str, int, dict, None] = None, *,
          cache: Optional[ModuleCache] = None, **overrides):
    """Like :func:`compile`, but stop after lowering: a ``LoweredModule``.

    The cheaper entry point when only the Wasm module is wanted (no flat-code
    decode, no program-level cache entry); ``Program.lower`` and the ml/l3
    codegen shims route here.
    """

    config = CompileConfig.of(config, **overrides)
    with get_tracer().span(
        "api.lower", opt_level=config.opt_level, cache_policy=config.cache
    ):
        diagnostics = Diagnostics(config=config)
        with diagnostics.stage("frontend"):
            modules, diagnostics.frontends = _compile_sources(sources, config)
        cache_obj = _resolve_cache(config, cache)
        if cache_obj is None:
            with diagnostics.stage("link"):
                richwasm = _link_direct(modules, config, diagnostics)
            # Lowering drives the type checker itself; no standalone pass.
            _bypass(diagnostics, "typecheck")
            with diagnostics.stage("lower"):
                lowered = _lower_direct(richwasm, config)
            _bypass(diagnostics, "lower")
        else:
            with diagnostics.stage("link"):
                richwasm = _link_cached(modules, config, cache_obj, diagnostics)
            _typecheck_cached(richwasm, cache_obj, diagnostics)
            with diagnostics.stage("lower") as span:
                before = cache_obj.stats["lower"].hits
                units_before = cache_obj.units.snapshot()
                lowered = cache_obj.lower(richwasm, config=config)
                diagnostics.cache["lower"] = "hit" if cache_obj.stats["lower"].hits > before else "miss"
                _record_units(diagnostics, cache_obj, units_before, span)
                _record_parcompile(diagnostics, cache_obj, span)
        diagnostics.engine = lowered.engine
        diagnostics.optimization = lowered.optimization
        lowered.diagnostics = diagnostics
        return lowered


def serve(compiled, config: Union[CompileConfig, str, int, dict, None] = None, *,
          cache: Optional[ModuleCache] = None, **overrides) -> Service:
    """Wrap a compiled program (or raw sources) in a ready-to-run service.

    Accepts a :class:`CompiledProgram` (its recorded config is the default)
    or anything :func:`compile` accepts.  The service pools instances
    (``config.pool_size``), runs every ``<module>._init`` export as the
    pooled baseline, and serves requests with per-request budgets and trap
    isolation (see :class:`Service`).
    """

    from ..runtime import run_initializers_setup

    with get_tracer().span("api.serve"):
        return _serve(compiled, config, cache, overrides, run_initializers_setup)


def _serve(compiled, config, cache, overrides, run_initializers_setup) -> Service:
    cache_obj: Optional[ModuleCache]
    if isinstance(compiled, CompiledProgram):
        base = config if config is not None else compiled.config
        config = CompileConfig.of(base, **overrides)
        if (
            compiled.config is not None
            and config.content_key() != compiled.config.content_key()
        ):
            raise ConfigError(
                "serve: the config's compile-relevant fields (opt_level, memory_pages, "
                f"link_name) conflict with the compiled program's "
                f"({config.opt_level}/{config.memory_pages}/{config.link_name!r} vs "
                f"{compiled.config.opt_level}/{compiled.config.memory_pages}/"
                f"{compiled.config.link_name!r}); recompile with repro.api.compile "
                "instead of serving a mismatched artifact"
            )
        cache_obj = _check_cache(cache)
    else:
        config = CompileConfig.of(config, **overrides)
        cache_obj = _resolve_cache(config, cache)
        compiled = compile(compiled, config, cache=cache_obj)
    if config.workers > 1:
        # Multi-process serving: the parent has already compiled (populating
        # the shared DiskCache when cache_dir is set); the cluster ships the
        # linked program to each worker and dispatches across them.
        from ..cluster import ClusterService

        return ClusterService(compiled, config, cache=cache_obj)
    pool_kwargs = dict(
        max_steps=config.max_steps, setup=run_initializers_setup, max_size=config.pool_size
    )
    if config.engine is not None:
        pool_kwargs["engine"] = config.engine
    pool = compiled.instance_pool(**pool_kwargs)
    return Service(compiled, config, pool, cache=cache_obj)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _compile_sources(sources, config: CompileConfig):
    """Normalize ``sources`` to RichWasm: a ``{name: Module}`` dict (to be
    linked) or a single already-linked ``Module``, plus the per-module
    frontend names for diagnostics."""

    from ..core.syntax import Module

    if callable(sources) and not hasattr(sources, "modules") and not isinstance(sources, (dict, Module)):
        sources = sources()
    if hasattr(sources, "modules") and not isinstance(sources, dict):
        modules = sources.modules  # repro.ffi.Program / InteropScenario
        if callable(modules):
            modules = modules()
        return dict(modules), {name: "richwasm" for name in modules}
    if isinstance(sources, Module):
        return sources, {sources.name or config.link_name: "richwasm"}
    if not isinstance(sources, dict):
        name, richwasm, frontend = _compile_one(sources, config, default_name=None)
        return {name: richwasm}, {name: frontend}
    compiled: dict = {}
    frontends: dict = {}
    for name, source in sources.items():
        _, richwasm, frontend = _compile_one(source, config, default_name=name)
        compiled[name] = richwasm
        frontends[name] = frontend
    return compiled, frontends


def _compile_one(source, config: CompileConfig, *, default_name: Optional[str]):
    if isinstance(source, tuple) and len(source) == 2 and isinstance(source[0], str):
        frontend, source = resolve_frontend(source[0]), source[1]
    else:
        frontend = detect_frontend(source)
    richwasm = frontend.compile_source(source, config)
    name = default_name or getattr(source, "name", None) or getattr(richwasm, "name", None)
    if not name:
        raise ConfigError(
            f"cannot derive a module name for an anonymous {frontend.name!r} source; "
            "pass sources as a {name: source} dict"
        )
    return name, richwasm, frontend.name


def _check_cache(cache) -> Optional[ModuleCache]:
    if cache is not None and not isinstance(cache, ModuleCache):
        raise ConfigError(
            f"cache must be a repro.runtime.ModuleCache or None, got {type(cache).__name__}"
        )
    return cache


def _resolve_cache(config: CompileConfig, cache: Optional[ModuleCache]) -> Optional[ModuleCache]:
    if _check_cache(cache) is not None:
        return cache
    if config.cache == "none":
        return None
    if config.cache_dir is not None:
        # Durable tier requested: a disk-backed ModuleCache (memory → disk →
        # compile).  Policy "shared" reuses one cache per resolved directory
        # so repeated facade calls share the memory tier too; "private" gets
        # a fresh memory tier over the same durable store.
        from ..cluster.diskcache import DiskCache, shared_disk_module_cache

        if config.cache == "shared":
            return shared_disk_module_cache(
                config.cache_dir, max_bytes=config.disk_cache_bytes
            )
        return ModuleCache(
            disk=DiskCache(config.cache_dir, max_bytes=config.disk_cache_bytes)
        )
    if config.cache == "shared":
        from ..runtime import default_cache

        return default_cache()
    return ModuleCache()  # policy "private"


def _link_direct(modules, config: CompileConfig, diagnostics: Diagnostics):
    if not isinstance(modules, dict):
        _bypass(diagnostics, "link")
        return modules
    from ..ffi.link import link_modules

    _bypass(diagnostics, "link")
    return link_modules(modules, name=config.link_name, check=config.check_links)


def _link_cached(modules, config: CompileConfig, cache: ModuleCache, diagnostics: Diagnostics):
    if not isinstance(modules, dict):
        _bypass(diagnostics, "link")
        return modules
    before = cache.stats["link"].hits
    units_before = cache.units.snapshot()
    richwasm = cache.link(modules, name=config.link_name, check=config.check_links)
    diagnostics.cache["link"] = "hit" if cache.stats["link"].hits > before else "miss"
    # Linking type-checks its inputs through the memoized typecheck stage,
    # so per-function typecheck units may have moved here.
    _record_units(diagnostics, cache, units_before)
    return richwasm


def _typecheck_cached(richwasm, cache: ModuleCache, diagnostics: Diagnostics) -> None:
    """The memoized core-typecheck stage of the cached pipeline.

    Linking already routes its per-module and linked-result checks through
    ``cache.typecheck``, so for dict sources this lookup is a hit.  A
    pre-linked ``Module`` the cache has never seen is *not* checked
    standalone — the lowering stage drives the type checker over the module
    anyway, and checking twice would double the compile-side hot path this
    layer exists to speed up — so the stage records a ``bypass`` instead,
    mirroring the off-cache pipeline.
    """

    with diagnostics.stage("typecheck") as span:
        if cache.typecheck_known(richwasm):
            units_before = cache.units.snapshot()
            cache.typecheck(richwasm)
            diagnostics.cache["typecheck"] = "hit"
            _record_units(diagnostics, cache, units_before, span)
        else:
            _bypass(diagnostics, "typecheck")


def _lower_direct(richwasm, config: CompileConfig):
    from ..lower import lower_module
    from ..wasm import validate_module

    lowered = lower_module(richwasm, config=config)
    if config.validate_wasm:
        validate_module(lowered.wasm)
    return lowered


def _compile_direct(modules, config: CompileConfig, diagnostics: Diagnostics) -> CompiledProgram:
    with diagnostics.stage("link"):
        richwasm = _link_direct(modules, config, diagnostics)
    with diagnostics.stage("lower"):
        lowered = _lower_direct(richwasm, config)
    # Lowering drives the type checker itself; no standalone pass off-cache.
    _bypass(diagnostics, "typecheck", "lower", "decode")
    if config.engine == "compiled":
        _bypass(diagnostics, "translate")
    # No cached_key: nothing files this artifact, so the content hash is
    # computed lazily by CompiledProgram.key if ever needed.
    return CompiledProgram(
        richwasm=richwasm, lowered=lowered, engine=config.engine, config=config
    )


def _compile_cached(modules, config: CompileConfig, cache: ModuleCache,
                    diagnostics: Diagnostics) -> CompiledProgram:
    with diagnostics.stage("link"):
        richwasm = _link_cached(modules, config, cache, diagnostics)
    key = cache.program_key(richwasm, config)
    program = cache.get_program(key, engine=config.engine, config=config, richwasm=richwasm)
    if program is not None:
        diagnostics.cache.update(program="hit", typecheck="hit", lower="hit", decode="hit")
        if config.engine == "compiled":
            # Re-seed the per-object translation memo from the content store:
            # a program hit may hand out a structurally equal module object
            # the pygen memo has never seen.
            with diagnostics.stage("translate") as span:
                before = cache.stats["translate"].hits
                units_before = cache.units.snapshot()
                cache.translate(program.wasm)
                diagnostics.cache["translate"] = (
                    "hit" if cache.stats["translate"].hits > before else "miss"
                )
                _record_units(diagnostics, cache, units_before, span)
                # A disk-warm program retranslates; that may have run the pool.
                _record_parcompile(diagnostics, cache, span)
        return program
    diagnostics.cache["program"] = "miss"
    _typecheck_cached(richwasm, cache, diagnostics)
    with diagnostics.stage("lower") as span:
        before = cache.stats["lower"].hits
        units_before = cache.units.snapshot()
        lowered = cache.lower(richwasm, config=config)
        diagnostics.cache["lower"] = "hit" if cache.stats["lower"].hits > before else "miss"
        _record_units(diagnostics, cache, units_before, span)
        _record_parcompile(diagnostics, cache, span)
    with diagnostics.stage("decode") as span:
        before = cache.stats["decode"].hits
        units_before = cache.units.snapshot()
        cache.decode(lowered.wasm)
        diagnostics.cache["decode"] = "hit" if cache.stats["decode"].hits > before else "miss"
        _record_units(diagnostics, cache, units_before, span)
    if config.engine == "compiled":
        with diagnostics.stage("translate") as span:
            before = cache.stats["translate"].hits
            units_before = cache.units.snapshot()
            cache.translate(lowered.wasm)
            diagnostics.cache["translate"] = (
                "hit" if cache.stats["translate"].hits > before else "miss"
            )
            _record_units(diagnostics, cache, units_before, span)
    return cache.put_program(key, richwasm, lowered, engine=config.engine, config=config)
