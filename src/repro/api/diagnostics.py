"""Structured diagnostics for every compiled artifact.

Every :func:`repro.api.compile`/:func:`repro.api.lower` call records what the
pipeline actually did — wall time per stage (``frontend``, ``link``,
``typecheck``, ``lower``, ``decode``, and ``translate`` when the compiled
engine is selected), which stages were served from the
:class:`~repro.runtime.ModuleCache` (hit/miss/bypass), which frontend
compiled each source module, and the optimizer's per-pass statistics — into
one :class:`Diagnostics` value attached to the artifact
(``CompiledProgram.diagnostics`` / ``LoweredModule.diagnostics``).  This
replaces the previous mix of prints and ad-hoc dicts with a structure that
benchmarks, services and tests can assert on; :meth:`Diagnostics.format_report`
renders the human-readable view on demand.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from ..obs.trace import get_tracer

#: Values of ``Diagnostics.cache[stage]``.
CACHE_EVENTS = ("hit", "miss", "bypass")

#: Canonical stage order, for reporting stages that recorded a cache event
#: but never ran under a timer (e.g. a ``typecheck`` bypass).
PIPELINE_STAGES = ("frontend", "link", "typecheck", "lower", "decode", "translate")


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pipeline stage, in execution order."""

    stage: str
    seconds: float


@dataclass
class Diagnostics:
    """What one facade call did, stage by stage."""

    #: The validated config the call ran under.
    config: Optional[object] = None
    #: The artifact's canonical cache key (program content + config content).
    key: Optional[str] = None
    #: Resolved engine preference recorded on the artifact (``None`` = default).
    engine: Optional[str] = None
    #: Per-source-module frontend names (``{module name: frontend name}``).
    frontends: dict = field(default_factory=dict)
    #: Stage wall times, in execution order.
    stages: list = field(default_factory=list)
    #: Per-stage cache outcome: ``"hit"`` / ``"miss"`` / ``"bypass"``.
    cache: dict = field(default_factory=dict)
    #: Function-granular reuse per stage:
    #: ``{stage: {"reused": n, "compiled": m}}`` — how many of the module's
    #: functions were served from the per-function unit cache versus actually
    #: compiled when a module-level stage missed.
    units: dict = field(default_factory=dict)
    #: The parallel-compile report (``repro.parcompile.ParcompileReport
    #: .as_dict()``) when the compile ran with ``compile_workers > 1`` and
    #: missed its module-level caches; ``None`` for serial compiles and
    #: full cache hits.  Keys: ``workers``, ``phases``, ``worker_deaths``,
    #: ``units_seeded``/``units_warm`` (per stage), ``per_worker``,
    #: ``fallbacks``.
    parcompile: Optional[dict] = None
    #: The :class:`repro.opt.OptimizationResult` (``None`` when ``O0`` or the
    #: artifact was a cache hit carrying its original stats).
    optimization: Optional[object] = None

    @contextmanager
    def stage(self, name: str):
        """Time a stage: ``with diagnostics.stage("lower") as span: ...``.

        Each stage also runs under a ``compile.<name>`` tracing span (yielded
        so callers can attach attributes, e.g. per-function unit counts), so
        an installed :class:`repro.obs.Tracer` sees the same boundaries the
        timings record (free when tracing is disabled).
        """

        with get_tracer().span(f"compile.{name}") as span:
            started = time.perf_counter()
            try:
                yield span
            finally:
                self.stages.append(StageTiming(name, time.perf_counter() - started))

    # -- derived views -----------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.stages)

    def seconds(self, stage: str) -> float:
        """Cumulative wall time of every timing recorded for ``stage``."""

        return sum(timing.seconds for timing in self.stages if timing.stage == stage)

    @property
    def cache_hit(self) -> bool:
        """Whether the compiled payload came entirely from the cache."""

        return self.cache.get("program") == "hit" or (
            bool(self.cache) and all(event == "hit" for event in self.cache.values())
        )

    @property
    def pass_stats(self) -> list:
        """Per-pass :class:`repro.opt.PassStats` (empty without optimization)."""

        return list(self.optimization.stats) if self.optimization is not None else []

    def format_report(self) -> str:
        lines = [f"compile: {self.total_seconds:.4f}s total"]
        if self.key is not None:
            lines[0] += f", key {self.key[:12]}…"
        if self.frontends:
            lines.append(
                "frontends: "
                + ", ".join(f"{name}<-{frontend}" for name, frontend in self.frontends.items())
            )
        timed = set()
        for timing in self.stages:
            timed.add(timing.stage)
            event = self.cache.get(timing.stage)
            suffix = f" [{event}]" if event else ""
            lines.append(f"  {timing.stage:<10} {timing.seconds:>9.4f}s{suffix}")
        # Stages that recorded a cache outcome without running under a timer
        # (a typecheck subsumed by lowering, an off-cache decode) still show,
        # so the report always accounts for the whole pipeline.
        for stage in sorted(self.cache, key=_stage_order):
            if stage not in timed and stage != "program":
                lines.append(f"  {stage:<10} {'—':>10} [{self.cache[stage]}]")
        for stage in sorted(self.units, key=_stage_order):
            counts = self.units[stage]
            lines.append(
                f"  {stage} units: {counts.get('reused', 0)} reused"
                f" / {counts.get('compiled', 0)} compiled"
            )
        if self.parcompile is not None:
            seeded = sum(self.parcompile.get("units_seeded", {}).values())
            warm = sum(self.parcompile.get("units_warm", {}).values())
            lines.append(
                f"  parallel compile: {self.parcompile.get('workers')} workers,"
                f" {seeded} units compiled / {warm} warm-read"
                f" ({self.parcompile.get('worker_deaths', 0)} worker death(s))"
            )
        if self.optimization is not None:
            lines.append(self.optimization.format_report())
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready view of everything recorded on this object.

        Round-trips through :meth:`from_dict` at the dict level
        (``Diagnostics.from_dict(d).to_dict() == d``); the optimization
        entry keeps per-pass stats but drops the module reference.
        """

        optimization = None
        if self.optimization is not None:
            optimization = {
                "instructions_before": self.optimization.instructions_before,
                "instructions_after": self.optimization.instructions_after,
                "iterations": self.optimization.iterations,
                "stats": [
                    {"name": s.name, "runs": s.runs, "rewrites": s.rewrites, "seconds": s.seconds}
                    for s in self.optimization.stats
                ],
            }
        return {
            "config": dataclasses.asdict(self.config) if self.config is not None else None,
            "key": self.key,
            "engine": self.engine,
            "frontends": dict(self.frontends),
            "stages": [{"stage": t.stage, "seconds": t.seconds} for t in self.stages],
            "cache": dict(self.cache),
            "units": {stage: dict(counts) for stage, counts in self.units.items()},
            "parcompile": dict(self.parcompile) if self.parcompile is not None else None,
            "optimization": optimization,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostics":
        """Rebuild a :class:`Diagnostics` from :meth:`to_dict` output."""

        config = data.get("config")
        if config is not None:
            from .config import CompileConfig

            config = CompileConfig(**config)
        optimization = data.get("optimization")
        if optimization is not None:
            from ..opt.manager import OptimizationResult, PassStats

            optimization = OptimizationResult(
                module=None,
                stats=[PassStats(**s) for s in optimization.get("stats", [])],
                iterations=optimization["iterations"],
                instructions_before=optimization["instructions_before"],
                instructions_after=optimization["instructions_after"],
            )
        return cls(
            config=config,
            key=data.get("key"),
            engine=data.get("engine"),
            frontends=dict(data.get("frontends") or {}),
            stages=[StageTiming(s["stage"], s["seconds"]) for s in data.get("stages") or []],
            cache=dict(data.get("cache") or {}),
            units={
                stage: dict(counts) for stage, counts in (data.get("units") or {}).items()
            },
            parcompile=dict(data["parcompile"]) if data.get("parcompile") else None,
            optimization=optimization,
        )


def _stage_order(stage: str) -> tuple:
    try:
        return (PIPELINE_STAGES.index(stage), stage)
    except ValueError:
        return (len(PIPELINE_STAGES), stage)
