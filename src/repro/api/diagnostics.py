"""Structured diagnostics for every compiled artifact.

Every :func:`repro.api.compile`/:func:`repro.api.lower` call records what the
pipeline actually did — wall time per stage (``frontend``, ``link``,
``typecheck``, ``lower``, ``decode``), which stages were served from the
:class:`~repro.runtime.ModuleCache` (hit/miss/bypass), which frontend
compiled each source module, and the optimizer's per-pass statistics — into
one :class:`Diagnostics` value attached to the artifact
(``CompiledProgram.diagnostics`` / ``LoweredModule.diagnostics``).  This
replaces the previous mix of prints and ad-hoc dicts with a structure that
benchmarks, services and tests can assert on; :meth:`Diagnostics.format_report`
renders the human-readable view on demand.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

#: Values of ``Diagnostics.cache[stage]``.
CACHE_EVENTS = ("hit", "miss", "bypass")


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pipeline stage, in execution order."""

    stage: str
    seconds: float


@dataclass
class Diagnostics:
    """What one facade call did, stage by stage."""

    #: The validated config the call ran under.
    config: Optional[object] = None
    #: The artifact's canonical cache key (program content + config content).
    key: Optional[str] = None
    #: Resolved engine preference recorded on the artifact (``None`` = default).
    engine: Optional[str] = None
    #: Per-source-module frontend names (``{module name: frontend name}``).
    frontends: dict = field(default_factory=dict)
    #: Stage wall times, in execution order.
    stages: list = field(default_factory=list)
    #: Per-stage cache outcome: ``"hit"`` / ``"miss"`` / ``"bypass"``.
    cache: dict = field(default_factory=dict)
    #: The :class:`repro.opt.OptimizationResult` (``None`` when ``O0`` or the
    #: artifact was a cache hit carrying its original stats).
    optimization: Optional[object] = None

    @contextmanager
    def stage(self, name: str):
        """Time a stage: ``with diagnostics.stage("lower"): ...``."""

        started = time.perf_counter()
        try:
            yield self
        finally:
            self.stages.append(StageTiming(name, time.perf_counter() - started))

    # -- derived views -----------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.stages)

    def seconds(self, stage: str) -> float:
        """Cumulative wall time of every timing recorded for ``stage``."""

        return sum(timing.seconds for timing in self.stages if timing.stage == stage)

    @property
    def cache_hit(self) -> bool:
        """Whether the compiled payload came entirely from the cache."""

        return self.cache.get("program") == "hit" or (
            bool(self.cache) and all(event == "hit" for event in self.cache.values())
        )

    @property
    def pass_stats(self) -> list:
        """Per-pass :class:`repro.opt.PassStats` (empty without optimization)."""

        return list(self.optimization.stats) if self.optimization is not None else []

    def format_report(self) -> str:
        lines = [f"compile: {self.total_seconds:.4f}s total"]
        if self.key is not None:
            lines[0] += f", key {self.key[:12]}…"
        if self.frontends:
            lines.append(
                "frontends: "
                + ", ".join(f"{name}<-{frontend}" for name, frontend in self.frontends.items())
            )
        for timing in self.stages:
            event = self.cache.get(timing.stage)
            suffix = f" [{event}]" if event else ""
            lines.append(f"  {timing.stage:<10} {timing.seconds:>9.4f}s{suffix}")
        if self.optimization is not None:
            lines.append(self.optimization.format_report())
        return "\n".join(lines)
