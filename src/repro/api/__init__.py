"""The configuration-driven compile/run facade (the stable public surface).

One configuration object and three functions replace the per-entry-point
keyword sprawl of the lower layers:

* :class:`CompileConfig` — a frozen, validated description of a compile
  (named ``O0``/``O1``/``O2`` optimization levels expanding to
  :mod:`repro.opt.pipelines`, engine preference, memory pages, cache policy,
  step budgets, validation toggles).  Its :meth:`~CompileConfig.content_key`
  is the canonical content hash the :class:`repro.runtime.ModuleCache` keys
  on.
* :func:`compile` — any mix of registered frontends (``ml``, ``l3``,
  ``richwasm``; see :mod:`repro.api.frontends`) in, one shareable
  :class:`~repro.runtime.CompiledProgram` out, with structured
  :class:`Diagnostics` attached.  :func:`lower` is the stop-after-lowering
  variant.
* :func:`serve` — wrap a compiled program (or raw sources) in a
  :class:`Service`: instance pool + batch runner + lenient-but-checked
  export resolution.

The pre-facade keyword surface (``Program.lower(optimize=...)`` and friends)
still works for one release behind :class:`DeprecationWarning` shims; see
the README migration notes.
"""

from .config import CACHE_POLICIES, CompileConfig, ConfigError
from .diagnostics import CACHE_EVENTS, Diagnostics, StageTiming
from .facade import compile, lower, serve
from .frontends import (
    Frontend,
    L3Frontend,
    MLFrontend,
    RichWasmFrontend,
    available_frontends,
    detect_frontend,
    register_frontend,
    resolve_frontend,
)
from .service import Service, ServiceStats, resolve_export

__all__ = [
    "CACHE_EVENTS",
    "CACHE_POLICIES",
    "CompileConfig",
    "ConfigError",
    "Diagnostics",
    "Frontend",
    "L3Frontend",
    "MLFrontend",
    "RichWasmFrontend",
    "Service",
    "ServiceStats",
    "StageTiming",
    "available_frontends",
    "compile",
    "detect_frontend",
    "lower",
    "register_frontend",
    "resolve_frontend",
    "resolve_export",
    "serve",
]
