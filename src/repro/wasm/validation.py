"""Validation of Wasm modules (the standard Wasm 1.0 type-checking algorithm).

Lowered RichWasm modules are validated before execution: the lowering pass is
type-directed, so validation failures indicate lowering bugs.  The validator
implements the usual algorithm with a value-type stack per control frame and
an "unreachable" mode that makes the stack polymorphic after unconditional
control transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..core.typing.errors import WasmError
from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmFunction,
    WasmFuncType,
    WasmImportedFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)


class WasmValidationError(WasmError):
    """The module is not well-typed according to the Wasm validation rules."""


@dataclass
class _ControlFrame:
    label_types: tuple[ValType, ...]
    end_types: tuple[ValType, ...]
    height: int
    unreachable: bool = False


@dataclass
class _FunctionContext:
    module: WasmModule
    locals: list[ValType]
    return_types: tuple[ValType, ...]
    stack: list[Optional[ValType]] = field(default_factory=list)
    frames: list[_ControlFrame] = field(default_factory=list)

    # -- operand stack ---------------------------------------------------------

    def push(self, valtype: Optional[ValType]) -> None:
        self.stack.append(valtype)

    def pop(self, expected: Optional[ValType] = None) -> Optional[ValType]:
        frame = self.frames[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expected
            raise WasmValidationError("operand stack underflow")
        actual = self.stack.pop()
        if expected is not None and actual is not None and actual is not expected:
            raise WasmValidationError(f"expected {expected} on the stack, found {actual}")
        return actual if actual is not None else expected

    def push_many(self, types: Sequence[ValType]) -> None:
        for valtype in types:
            self.push(valtype)

    def pop_many(self, types: Sequence[ValType]) -> None:
        for valtype in reversed(list(types)):
            self.pop(valtype)

    # -- control frames ---------------------------------------------------------

    def push_frame(self, label_types: Sequence[ValType], end_types: Sequence[ValType]) -> None:
        self.frames.append(_ControlFrame(tuple(label_types), tuple(end_types), len(self.stack)))

    def pop_frame(self) -> _ControlFrame:
        frame = self.frames[-1]
        self.pop_many(frame.end_types)
        if len(self.stack) != frame.height and not frame.unreachable:
            raise WasmValidationError("values left on the stack at the end of a block")
        del self.stack[frame.height :]
        self.frames.pop()
        return frame

    def mark_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.stack[frame.height :]
        frame.unreachable = True

    def label_types(self, depth: int) -> tuple[ValType, ...]:
        if depth >= len(self.frames):
            raise WasmValidationError(f"branch depth {depth} exceeds nesting {len(self.frames)}")
        return self.frames[len(self.frames) - 1 - depth].label_types


def _function_type(module: WasmModule, index: int) -> WasmFuncType:
    if index < 0 or index >= len(module.functions):
        raise WasmValidationError(f"function index {index} out of range")
    return module.functions[index].functype


def validate_module(module: WasmModule, *, unit_cache=None) -> None:
    """Validate a module; raises :class:`WasmValidationError` on failure.

    ``unit_cache`` (a :class:`repro.compilepipe.FunctionUnitCache`) skips
    function bodies already validated under the same (body digest, module
    signature digest) key — only successful validations are recorded.
    """

    for entry in module.table.entries:
        if entry < 0 or entry >= len(module.functions):
            raise WasmValidationError(f"table entry {entry} does not name a function")
    for segment in module.data:
        if module.memory is None:
            raise WasmValidationError("data segment without a memory")
        if segment.offset < 0:
            raise WasmValidationError("negative data segment offset")
    for global_decl in module.globals:
        for instr in global_decl.init:
            if not isinstance(instr, (Const, GlobalGet)):
                raise WasmValidationError(
                    f"unsupported instruction in a constant expression: {instr!r}"
                )
    for function in module.functions:
        if isinstance(function, WasmImportedFunction):
            continue
        if unit_cache is not None:
            key = unit_cache.validate_key(function, module)
            if unit_cache.get("validate", key) is not None:
                continue
        validate_function(module, function)
        if unit_cache is not None:
            unit_cache.put("validate", key, True)


def validate_function(module: WasmModule, function: WasmFunction) -> None:
    """Validate one function body."""

    ctx = _FunctionContext(
        module=module,
        locals=[*function.functype.params, *function.locals],
        return_types=function.functype.results,
    )
    ctx.push_frame(function.functype.results, function.functype.results)
    _validate_seq(ctx, function.body)
    ctx.pop_frame()


def _validate_seq(ctx: _FunctionContext, body: Sequence[WInstr]) -> None:
    for instr in body:
        _validate_instr(ctx, instr)


def _validate_instr(ctx: _FunctionContext, instr: WInstr) -> None:
    if isinstance(instr, Const):
        ctx.push(instr.valtype)
    elif isinstance(instr, Binop):
        ctx.pop(instr.valtype)
        ctx.pop(instr.valtype)
        ctx.push(instr.valtype)
    elif isinstance(instr, Unop):
        ctx.pop(instr.valtype)
        ctx.push(instr.valtype)
    elif isinstance(instr, Testop):
        ctx.pop(instr.valtype)
        ctx.push(ValType.I32)
    elif isinstance(instr, Relop):
        ctx.pop(instr.valtype)
        ctx.pop(instr.valtype)
        ctx.push(ValType.I32)
    elif isinstance(instr, Cvtop):
        ctx.pop(instr.source)
        ctx.push(instr.target)
    elif isinstance(instr, WUnreachable):
        ctx.mark_unreachable()
    elif isinstance(instr, WNop):
        return
    elif isinstance(instr, WDrop):
        ctx.pop()
    elif isinstance(instr, WSelect):
        ctx.pop(ValType.I32)
        second = ctx.pop()
        first = ctx.pop(second)
        ctx.push(first if first is not None else second)
    elif isinstance(instr, WBlock):
        ctx.pop_many(instr.blocktype.params)
        ctx.push_frame(instr.blocktype.results, instr.blocktype.results)
        ctx.push_many(instr.blocktype.params)
        _validate_seq(ctx, instr.body)
        ctx.pop_frame()
        ctx.push_many(instr.blocktype.results)
    elif isinstance(instr, WLoop):
        ctx.pop_many(instr.blocktype.params)
        ctx.push_frame(instr.blocktype.params, instr.blocktype.results)
        ctx.push_many(instr.blocktype.params)
        _validate_seq(ctx, instr.body)
        ctx.pop_frame()
        ctx.push_many(instr.blocktype.results)
    elif isinstance(instr, WIf):
        ctx.pop(ValType.I32)
        ctx.pop_many(instr.blocktype.params)
        for body in (instr.then_body, instr.else_body):
            ctx.push_frame(instr.blocktype.results, instr.blocktype.results)
            ctx.push_many(instr.blocktype.params)
            _validate_seq(ctx, body)
            ctx.pop_frame()
        ctx.push_many(instr.blocktype.results)
    elif isinstance(instr, WBr):
        ctx.pop_many(ctx.label_types(instr.depth))
        ctx.mark_unreachable()
    elif isinstance(instr, WBrIf):
        ctx.pop(ValType.I32)
        label = ctx.label_types(instr.depth)
        ctx.pop_many(label)
        ctx.push_many(label)
    elif isinstance(instr, WBrTable):
        ctx.pop(ValType.I32)
        default_types = ctx.label_types(instr.default)
        for depth in instr.depths:
            if ctx.label_types(depth) != default_types:
                raise WasmValidationError("br_table targets have inconsistent types")
        ctx.pop_many(default_types)
        ctx.mark_unreachable()
    elif isinstance(instr, WReturn):
        ctx.pop_many(ctx.return_types)
        ctx.mark_unreachable()
    elif isinstance(instr, WCall):
        functype = _function_type(ctx.module, instr.func_index)
        ctx.pop_many(functype.params)
        ctx.push_many(functype.results)
    elif isinstance(instr, WCallIndirect):
        ctx.pop(ValType.I32)
        ctx.pop_many(instr.functype.params)
        ctx.push_many(instr.functype.results)
    elif isinstance(instr, LocalGet):
        ctx.push(_local_type(ctx, instr.index))
    elif isinstance(instr, LocalSet):
        ctx.pop(_local_type(ctx, instr.index))
    elif isinstance(instr, LocalTee):
        valtype = _local_type(ctx, instr.index)
        ctx.pop(valtype)
        ctx.push(valtype)
    elif isinstance(instr, GlobalGet):
        ctx.push(_global_type(ctx, instr.index))
    elif isinstance(instr, GlobalSet):
        if not ctx.module.globals[instr.index].mutable:
            raise WasmValidationError(f"global {instr.index} is immutable")
        ctx.pop(_global_type(ctx, instr.index))
    elif isinstance(instr, Load):
        _require_memory(ctx)
        ctx.pop(ValType.I32)
        ctx.push(instr.valtype)
    elif isinstance(instr, StoreI):
        _require_memory(ctx)
        ctx.pop(instr.valtype)
        ctx.pop(ValType.I32)
    elif isinstance(instr, MemorySize):
        _require_memory(ctx)
        ctx.push(ValType.I32)
    elif isinstance(instr, MemoryGrow):
        _require_memory(ctx)
        ctx.pop(ValType.I32)
        ctx.push(ValType.I32)
    else:
        raise WasmValidationError(f"no validation rule for {instr!r}")


def _local_type(ctx: _FunctionContext, index: int) -> ValType:
    if index < 0 or index >= len(ctx.locals):
        raise WasmValidationError(f"local index {index} out of range ({len(ctx.locals)} locals)")
    return ctx.locals[index]


def _global_type(ctx: _FunctionContext, index: int) -> ValType:
    if index < 0 or index >= len(ctx.module.globals):
        raise WasmValidationError(f"global index {index} out of range")
    return ctx.module.globals[index].valtype


def _require_memory(ctx: _FunctionContext) -> None:
    if ctx.module.memory is None:
        raise WasmValidationError("memory instruction in a module without a memory")
