"""A WAT-style textual printer for the Wasm substrate.

The printer is used by the examples and by debugging output; it renders the
instruction subset of :mod:`repro.wasm.ast` in a format close to the standard
WebAssembly text format (folded expressions are not used; one instruction per
line, indentation tracks block nesting).
"""

from __future__ import annotations

from typing import Sequence

from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    Relop,
    StoreI,
    Testop,
    Unop,
    WasmFunction,
    WasmFuncType,
    WasmImportedFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)


def format_functype(functype: WasmFuncType) -> str:
    parts = []
    if functype.params:
        parts.append("(param " + " ".join(str(p) for p in functype.params) + ")")
    if functype.results:
        parts.append("(result " + " ".join(str(r) for r in functype.results) + ")")
    return " ".join(parts)


def format_instr(instr: WInstr, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(instr, Const):
        return [f"{pad}{instr.valtype}.const {instr.value}"]
    if isinstance(instr, Binop):
        return [f"{pad}{instr.valtype}.{instr.op}"]
    if isinstance(instr, Unop):
        return [f"{pad}{instr.valtype}.{instr.op}"]
    if isinstance(instr, Testop):
        return [f"{pad}{instr.valtype}.{instr.op}"]
    if isinstance(instr, Relop):
        return [f"{pad}{instr.valtype}.{instr.op}"]
    if isinstance(instr, Cvtop):
        return [f"{pad}{instr.target}.{instr.op}_{instr.source}"]
    if isinstance(instr, WUnreachable):
        return [f"{pad}unreachable"]
    if isinstance(instr, WNop):
        return [f"{pad}nop"]
    if isinstance(instr, WDrop):
        return [f"{pad}drop"]
    if isinstance(instr, WSelect):
        return [f"{pad}select"]
    if isinstance(instr, WBlock):
        lines = [f"{pad}block {format_functype(instr.blocktype)}".rstrip()]
        for inner in instr.body:
            lines.extend(format_instr(inner, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(instr, WLoop):
        lines = [f"{pad}loop {format_functype(instr.blocktype)}".rstrip()]
        for inner in instr.body:
            lines.extend(format_instr(inner, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(instr, WIf):
        lines = [f"{pad}if {format_functype(instr.blocktype)}".rstrip()]
        for inner in instr.then_body:
            lines.extend(format_instr(inner, indent + 1))
        if instr.else_body:
            lines.append(f"{pad}else")
            for inner in instr.else_body:
                lines.extend(format_instr(inner, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(instr, WBr):
        return [f"{pad}br {instr.depth}"]
    if isinstance(instr, WBrIf):
        return [f"{pad}br_if {instr.depth}"]
    if isinstance(instr, WBrTable):
        targets = " ".join(str(d) for d in instr.depths)
        return [f"{pad}br_table {targets} {instr.default}"]
    if isinstance(instr, WReturn):
        return [f"{pad}return"]
    if isinstance(instr, WCall):
        return [f"{pad}call {instr.func_index}"]
    if isinstance(instr, WCallIndirect):
        return [f"{pad}call_indirect {format_functype(instr.functype)}".rstrip()]
    if isinstance(instr, LocalGet):
        return [f"{pad}local.get {instr.index}"]
    if isinstance(instr, LocalSet):
        return [f"{pad}local.set {instr.index}"]
    if isinstance(instr, LocalTee):
        return [f"{pad}local.tee {instr.index}"]
    if isinstance(instr, GlobalGet):
        return [f"{pad}global.get {instr.index}"]
    if isinstance(instr, GlobalSet):
        return [f"{pad}global.set {instr.index}"]
    if isinstance(instr, Load):
        suffix = "" if instr.width is None else f"{instr.width}_{'s' if instr.signed else 'u'}"
        return [f"{pad}{instr.valtype}.load{suffix} offset={instr.offset}"]
    if isinstance(instr, StoreI):
        suffix = "" if instr.width is None else str(instr.width)
        return [f"{pad}{instr.valtype}.store{suffix} offset={instr.offset}"]
    if isinstance(instr, MemorySize):
        return [f"{pad}memory.size"]
    if isinstance(instr, MemoryGrow):
        return [f"{pad}memory.grow"]
    return [f"{pad};; <unknown {instr!r}>"]


def module_to_wat(module: WasmModule) -> str:
    """Render a whole module as WAT-like text."""

    lines = ["(module"]
    if module.memory is not None:
        max_part = f" {module.memory.max_pages}" if module.memory.max_pages is not None else ""
        lines.append(f"  (memory {module.memory.min_pages}{max_part})")
    if module.table.entries:
        entries = " ".join(str(e) for e in module.table.entries)
        lines.append(f"  (table funcref (elem {entries}))")
    for index, global_decl in enumerate(module.globals):
        mutability = f"(mut {global_decl.valtype})" if global_decl.mutable else str(global_decl.valtype)
        init = " ".join(" ".join(format_instr(i)) for i in global_decl.init).strip()
        lines.append(f"  (global $g{index} {mutability} ({init}))")
    for index, function in enumerate(module.functions):
        if isinstance(function, WasmImportedFunction):
            lines.append(
                f'  (import "{function.module}" "{function.name}"'
                f" (func $f{index} {format_functype(function.functype)}))"
            )
            continue
        header = f"  (func $f{index} {format_functype(function.functype)}".rstrip()
        lines.append(header)
        if function.locals:
            lines.append("    (local " + " ".join(str(l) for l in function.locals) + ")")
        for instr in function.body:
            lines.extend(format_instr(instr, 2))
        lines.append("  )")
        for export in function.exports:
            lines.append(f'  (export "{export}" (func $f{index}))')
    lines.append(")")
    return "\n".join(lines)
