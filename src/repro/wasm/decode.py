"""Pre-decoding of Wasm function bodies into flat, pc-addressed code.

The tree-walking engine re-discovers structure on every execution: each
``block``/``loop``/``if`` re-enters :meth:`_run_block`, each ``br`` unwinds
Python exceptions, and every instruction is re-classified with ``isinstance``
chains.  Production engines instead decode structured control flow *once*
into a linear instruction array with resolved branch targets; execution is
then a program-counter loop.  This module is that decoder.

A :class:`FlatFunction` is produced once per function at instantiation time:

* nested bodies are flattened into one ``code`` list of tuples whose first
  element is a small integer opcode (the ``OP_*`` constants below);
* ``br``/``br_if``/``br_table`` keep their static depth — the runtime label
  stack records ``(target_pc, arity, stack_base, is_loop)`` so a branch is a
  slice assignment plus a pc update, never an exception;
* numeric operators are resolved to their :mod:`repro.core.semantics.numerics`
  implementation here, so the hot loop never consults a string table;
* constants are normalized at decode time (the interpreter's
  all-values-normalized invariant), so ``i32.const -5`` pushes the already
  wrapped bit pattern.

Decoding dispatches through :data:`DECODERS`, a per-opcode handler table
keyed by AST class; the flat VM's cold (pure stack) opcodes likewise run
through a handler table (see :mod:`repro.wasm.engine`).
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional

from ..core.semantics import numerics
from ..core.typing.errors import WasmError
from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmFunction,
    WasmImportedFunction,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------
#
# Negative opcodes are *free*: they have no tree-walker counterpart and must
# not count against the step budget (``end`` of a block, the jump that skips
# an ``else`` body).  Everything >= 0 costs exactly one step, which keeps the
# two engines' ``steps`` counters — and therefore their ``max_steps`` trap
# points — bit-identical.

OP_END = -1
OP_JUMP = -2

OP_LOCAL_GET = 0
OP_LOCAL_SET = 1
OP_LOCAL_TEE = 2
OP_CONST = 3
OP_I_BINOP = 4
OP_F_BINOP = 5
OP_I_RELOP = 6
OP_F_RELOP = 7
OP_TESTOP = 8
OP_UNOP = 9
OP_CVT = 10
OP_BLOCK = 11
OP_LOOP = 12
OP_IF = 13
OP_BR = 14
OP_BR_IF = 15
OP_BR_TABLE = 16
OP_RETURN = 17
OP_CALL = 18
OP_CALL_INDIRECT = 19
OP_DROP = 20
OP_SELECT = 21
OP_NOP = 22
OP_UNREACHABLE = 23
OP_GLOBAL_GET = 24
OP_GLOBAL_SET = 25
OP_LOAD_I = 26
OP_LOAD_F = 27
OP_STORE_I = 28
OP_STORE_F = 29
OP_MEMORY_SIZE = 30
OP_MEMORY_GROW = 31


_INT_BINOPS = {
    "add": numerics.int_add,
    "sub": numerics.int_sub,
    "mul": numerics.int_mul,
    "div_s": numerics.int_div_s,
    "div_u": numerics.int_div_u,
    "rem_s": numerics.int_rem_s,
    "rem_u": numerics.int_rem_u,
    "and": numerics.int_and,
    "or": numerics.int_or,
    "xor": numerics.int_xor,
    "shl": numerics.int_shl,
    "shr_s": numerics.int_shr_s,
    "shr_u": numerics.int_shr_u,
    "rotl": numerics.int_rotl,
    "rotr": numerics.int_rotr,
}

_INT_UNOPS = {
    "clz": numerics.int_clz,
    "ctz": numerics.int_ctz,
    "popcnt": numerics.int_popcnt,
}


def _normalize_const(valtype: ValType, value):
    if valtype.is_integer:
        return numerics.wrap(int(value), valtype.bit_width)
    return numerics.float_canon(float(value), valtype.bit_width)


class FlatFunction:
    """A pre-decoded function body: flat code, flat locals, resolved ops."""

    __slots__ = ("functype", "n_params", "n_results", "local_inits", "code", "name")

    def __init__(self, functype, n_params, n_results, local_inits, code, name=None):
        self.functype = functype
        self.n_params = n_params
        self.n_results = n_results
        self.local_inits = local_inits  # tuple of 0 / 0.0 for declared locals
        self.code = code  # list of opcode tuples
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatFunction(name={self.name!r}, {self.n_params}->{self.n_results}, {len(self.code)} ops)"


class HostEntry:
    """A host function slot in the decoded function table."""

    __slots__ = ("fn", "functype")

    def __init__(self, fn, functype):
        self.fn = fn
        self.functype = functype


# ---------------------------------------------------------------------------
# Conversion handlers
# ---------------------------------------------------------------------------
#
# Resolved handlers are ``functools.partial`` over module-level functions —
# never lambdas or local closures — so a :class:`FlatFunction` pickles: the
# disk tier persists flat code under its content key, and the parallel
# compile workers ship decode units back to the parent over a queue.  A
# partial call is C-level, so the flat VM's per-instruction cost matches the
# old closures.

from functools import partial


def _cvt_wrap(v):
    return numerics.wrap(int(v), 32)


def _cvt_extend(signed, v):
    value = numerics.to_signed(int(v), 32) if signed else numerics.to_unsigned(int(v), 32)
    return numerics.wrap(value, 64)


def _cvt_trunc(width, signed, v):
    return numerics.trunc_float_to_int(float(v), width, signed)


def _cvt_convert(source_width, signed, target_width, v):
    return numerics.convert_int_to_float(int(v), source_width, signed, target_width)


def _cvt_demote(v):
    return numerics.float_canon(float(v), 32)


def _cvt_reinterpret_i2f(width, v):
    return numerics.reinterpret_int_to_float(int(v), width)


def _cvt_reinterpret_f2i(width, v):
    return numerics.reinterpret_float_to_int(float(v), width)


def _unop_int(fn, width, v):
    return fn(int(v), width)


def _unop_float(op, width, v):
    return numerics.float_unop(op, float(v), width)


# One handler object per distinct operator shape: decode re-emits the same
# conversion thousands of times across a module, and sharing the instance
# keeps both the decode allocation count and the pickled flat code small.
_HANDLER_MEMO: dict[tuple, Callable] = {}


def _handler(fn, *args) -> Callable:
    key = (fn, *args)
    handler = _HANDLER_MEMO.get(key)
    if handler is None:
        handler = _HANDLER_MEMO[key] = partial(fn, *args) if args else fn
    return handler


def _build_cvt(instr: Cvtop) -> Callable:
    """Resolve a conversion to a single-argument callable at decode time.

    Mirrors the tree walker's ``_cvtop`` case analysis exactly, including the
    ``int()``/``float()`` coercions, so both engines agree bit-for-bit.
    """

    op = instr.op
    if op == "wrap":
        return _handler(_cvt_wrap)
    if op in ("extend_s", "extend_u"):
        return _handler(_cvt_extend, op == "extend_s")
    if op in ("trunc_s", "trunc_u"):
        return _handler(_cvt_trunc, instr.target.bit_width, op == "trunc_s")
    if op in ("convert_s", "convert_u"):
        return _handler(
            _cvt_convert, instr.source.bit_width, op == "convert_s", instr.target.bit_width
        )
    if op == "promote":
        return float
    if op == "demote":
        return _handler(_cvt_demote)
    if op == "reinterpret":
        if instr.source.is_integer:
            return _handler(_cvt_reinterpret_i2f, instr.source.bit_width)
        return _handler(_cvt_reinterpret_f2i, instr.source.bit_width)
    raise WasmError(f"unknown conversion {op!r}")


def _build_unop(instr: Unop) -> Callable:
    width = instr.valtype.bit_width
    if instr.valtype.is_integer:
        return _handler(_unop_int, _INT_UNOPS[instr.op], width)
    return _handler(_unop_float, instr.op, width)


# ---------------------------------------------------------------------------
# The decoder
# ---------------------------------------------------------------------------


class _FunctionDecoder:
    def __init__(self) -> None:
        self.code: list[tuple] = []

    # -- emit helpers ------------------------------------------------------

    def emit(self, ins: tuple) -> int:
        self.code.append(ins)
        return len(self.code) - 1

    def patch(self, index: int, ins: tuple) -> None:
        self.code[index] = ins

    # -- structured control flow ------------------------------------------

    def decode_seq(self, body) -> None:
        for instr in body:
            DECODERS[instr.__class__](self, instr)

    def decode_block(self, instr: WBlock) -> None:
        arity = len(instr.blocktype.results)
        n_params = len(instr.blocktype.params)
        header = self.emit(())  # patched once the end is known
        self.decode_seq(instr.body)
        end = self.emit((OP_END,))
        # Branches to a block label land *after* the end marker (the branch
        # already popped the label); fallthrough runs OP_END which pops it.
        self.patch(header, (OP_BLOCK, end + 1, arity, n_params))

    def decode_loop(self, instr: WLoop) -> None:
        # A loop label's branch arity is its parameter count (branching
        # re-enters the loop), but fallthrough at the end keeps the *result*
        # values — the two counts differ for non-uniform blocktypes.
        n_params = len(instr.blocktype.params)
        n_results = len(instr.blocktype.results)
        header = self.emit(())
        body_start = len(self.code)
        self.decode_seq(instr.body)
        self.emit((OP_END,))
        self.patch(header, (OP_LOOP, body_start, n_params, n_results))

    def decode_if(self, instr: WIf) -> None:
        arity = len(instr.blocktype.results)
        n_params = len(instr.blocktype.params)
        header = self.emit(())
        self.decode_seq(instr.then_body)
        if instr.else_body:
            jump = self.emit(())  # skip the else body after the then body
            else_start = len(self.code)
            self.decode_seq(instr.else_body)
            end = self.emit((OP_END,))
            self.patch(jump, (OP_JUMP, end))
        else:
            else_start = len(self.code)
            end = self.emit((OP_END,))
        self.patch(header, (OP_IF, else_start, end + 1, arity, n_params))

    # -- leaf instructions -------------------------------------------------

    def decode_const(self, instr: Const) -> None:
        self.emit((OP_CONST, _normalize_const(instr.valtype, instr.value)))

    def decode_binop(self, instr: Binop) -> None:
        width = instr.valtype.bit_width
        if instr.valtype.is_integer:
            self.emit((OP_I_BINOP, _INT_BINOPS[instr.op], width))
        else:
            self.emit((OP_F_BINOP, instr.op, width))

    def decode_relop(self, instr: Relop) -> None:
        if instr.valtype.is_integer:
            base = instr.op.split("_")[0]
            signed = instr.op.endswith("_s")
            self.emit((OP_I_RELOP, base, signed, instr.valtype.bit_width))
        else:
            self.emit((OP_F_RELOP, instr.op))

    def decode_load(self, instr: Load) -> None:
        if instr.width is not None:
            # Narrow load: read width//8 bytes, optionally sign-extend, wrap
            # to the value type's width — exactly the tree walker's order.
            self.emit(
                (
                    OP_LOAD_I,
                    instr.offset,
                    instr.width // 8,
                    instr.width if instr.signed else 0,
                    instr.valtype.bit_width,
                )
            )
        elif instr.valtype.is_integer:
            self.emit((OP_LOAD_I, instr.offset, instr.valtype.byte_width, 0, 0))
        else:
            fmt = "<f" if instr.valtype is ValType.F32 else "<d"
            self.emit((OP_LOAD_F, instr.offset, fmt, instr.valtype.byte_width))

    def decode_store(self, instr: StoreI) -> None:
        if instr.width is not None:
            self.emit((OP_STORE_I, instr.offset, instr.width // 8, (1 << instr.width) - 1))
        elif instr.valtype.is_integer:
            width = instr.valtype.bit_width
            self.emit((OP_STORE_I, instr.offset, width // 8, (1 << width) - 1))
        else:
            fmt = "<f" if instr.valtype is ValType.F32 else "<d"
            self.emit((OP_STORE_F, instr.offset, fmt, instr.valtype.byte_width))


def _d_simple(op):
    def decoder(self: _FunctionDecoder, _instr) -> None:
        self.emit((op,))

    return decoder


def _d_index(op):
    def decoder(self: _FunctionDecoder, instr) -> None:
        self.emit((op, instr.index))

    return decoder


DECODERS: dict[type, Callable[[_FunctionDecoder, object], None]] = {
    Const: _FunctionDecoder.decode_const,
    Binop: _FunctionDecoder.decode_binop,
    Unop: lambda self, instr: self.emit((OP_UNOP, _build_unop(instr))),
    Testop: lambda self, instr: self.emit((OP_TESTOP, instr.valtype.bit_width)),
    Relop: _FunctionDecoder.decode_relop,
    Cvtop: lambda self, instr: self.emit((OP_CVT, _build_cvt(instr))),
    WUnreachable: _d_simple(OP_UNREACHABLE),
    WNop: _d_simple(OP_NOP),
    WDrop: _d_simple(OP_DROP),
    WSelect: _d_simple(OP_SELECT),
    WBlock: _FunctionDecoder.decode_block,
    WLoop: _FunctionDecoder.decode_loop,
    WIf: _FunctionDecoder.decode_if,
    WBr: lambda self, instr: self.emit((OP_BR, instr.depth)),
    WBrIf: lambda self, instr: self.emit((OP_BR_IF, instr.depth)),
    WBrTable: lambda self, instr: self.emit((OP_BR_TABLE, instr.depths, instr.default)),
    WReturn: _d_simple(OP_RETURN),
    WCall: lambda self, instr: self.emit((OP_CALL, instr.func_index)),
    WCallIndirect: lambda self, instr: self.emit((OP_CALL_INDIRECT, instr.functype)),
    LocalGet: _d_index(OP_LOCAL_GET),
    LocalSet: _d_index(OP_LOCAL_SET),
    LocalTee: _d_index(OP_LOCAL_TEE),
    GlobalGet: _d_index(OP_GLOBAL_GET),
    GlobalSet: _d_index(OP_GLOBAL_SET),
    Load: _FunctionDecoder.decode_load,
    StoreI: _FunctionDecoder.decode_store,
    MemorySize: _d_simple(OP_MEMORY_SIZE),
    MemoryGrow: _d_simple(OP_MEMORY_GROW),
}


class _MissingDecoder(dict):
    def __missing__(self, cls):
        raise WasmError(f"no execution rule for Wasm instruction class {cls.__name__}")


DECODERS = _MissingDecoder(DECODERS)


def decode_function(function: WasmFunction) -> FlatFunction:
    """Flatten one defined function into pc-addressed code."""

    decoder = _FunctionDecoder()
    decoder.decode_seq(function.body)
    local_inits = tuple(0 if valtype.is_integer else 0.0 for valtype in function.locals)
    return FlatFunction(
        functype=function.functype,
        n_params=len(function.functype.params),
        n_results=len(function.functype.results),
        local_inits=local_inits,
        code=decoder.code,
        name=function.name,
    )


class DecodedModule:
    """The module-level decode artifact: one :class:`FlatFunction` per
    defined function, ``None`` at imported slots.

    Produced once per :class:`~repro.wasm.ast.WasmModule` object by
    :func:`decode_module` and shared by every instance of that module —
    instantiation only has to fill in the per-instance host entries.
    ``functions`` keeps the exact ``module.functions`` tuple the decode was
    built from, so consumers can check a function slot by identity.
    """

    __slots__ = ("functions", "flat")

    def __init__(self, functions: tuple, flat: list):
        self.functions = functions
        self.flat = flat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        defined = sum(1 for entry in self.flat if entry is not None)
        return f"DecodedModule({defined} defined / {len(self.flat)} functions)"


# Per-module decode memo.  WasmModule is a frozen dataclass whose hash walks
# the whole AST, so the memo is keyed by id() with a weakref guard: a hit
# requires the weakref to still resolve to the very same object (id reuse
# after collection therefore cannot alias), and dead entries are evicted by
# the weakref callback.
_MODULE_DECODE_CACHE: dict[int, tuple[weakref.ref, DecodedModule]] = {}


def decode_module(module: WasmModule, *, unit_cache=None) -> DecodedModule:
    """Decode every defined function of ``module``, memoized per module object.

    The flat code depends only on the (immutable) function bodies, so all
    instances of one module share a single decode — the compile-once half of
    the compile-once/run-many runtime layer.  With a ``unit_cache``
    (:class:`repro.compilepipe.FunctionUnitCache`) the per-function flat code
    is additionally reused *across* module versions by body digest:
    :class:`FlatFunction` is immutable and decode reads nothing outside the
    body, so sharing by content is exact.
    """

    key = id(module)
    entry = _MODULE_DECODE_CACHE.get(key)
    if entry is not None and entry[0]() is module:
        return entry[1]

    if unit_cache is None:
        flat = [
            decode_function(target) if isinstance(target, WasmFunction) else None
            for target in module.functions
        ]
    else:
        flat = []
        for target in module.functions:
            if not isinstance(target, WasmFunction):
                flat.append(None)
                continue
            fkey = unit_cache.decode_key(target)
            cached_flat = unit_cache.get("decode", fkey)
            if cached_flat is None:
                cached_flat = decode_function(target)
                unit_cache.put("decode", fkey, cached_flat)
            flat.append(cached_flat)
    return _install_decode(module, DecodedModule(module.functions, flat))


def _install_decode(module: WasmModule, decoded: DecodedModule) -> DecodedModule:
    key = id(module)

    def _evict(ref, _key=key):
        cached = _MODULE_DECODE_CACHE.get(_key)
        if cached is not None and cached[0] is ref:
            del _MODULE_DECODE_CACHE[_key]

    _MODULE_DECODE_CACHE[key] = (weakref.ref(module, _evict), decoded)
    return decoded


def adopt_decode(module: WasmModule, flat) -> DecodedModule:
    """Seed the per-module memo with externally cached flat code.

    The disk-cache warm path uses this: :class:`FlatFunction` is immutable
    plain data (opcode tuples), so a persisted ``flat`` list can be adopted
    onto a freshly unpickled module without re-decoding — the same
    by-content sharing :func:`decode_module` already does through the
    function-unit cache, minus the per-function digest work.  ``flat`` must
    come from a module with identical function bodies (the caller keys the
    persisted artifact by content hash, which guarantees it).
    """

    return _install_decode(module, DecodedModule(module.functions, list(flat)))


def decode_instance(instance, shared: Optional[DecodedModule] = None) -> list:
    """Build the per-instance decoded function table.

    Defined functions come from the module-level :func:`decode_module` memo
    (decoded once, shared across all instances); host imports become
    :class:`HostEntry` records carrying the declared import type.  A function
    slot that no longer matches the module by identity (``instance.funcs``
    was patched, e.g. with an optimized body) is decoded fresh instead of
    served stale.
    """

    if shared is None:
        shared = decode_module(instance.module)
    module_functions = shared.functions
    declared_functions = instance.module.functions
    decoded: list = []
    for index, target in enumerate(instance.funcs):
        if isinstance(target, WasmFunction):
            if index < len(module_functions) and module_functions[index] is target:
                decoded.append(shared.flat[index])
            else:
                decoded.append(decode_function(target))
        else:
            declared = declared_functions[index] if index < len(declared_functions) else None
            functype = declared.functype if isinstance(declared, WasmImportedFunction) else None
            decoded.append(HostEntry(target, functype))
    return decoded
