"""A WebAssembly 1.0 (+ multi-value) substrate.

This package is the execution target for lowered RichWasm modules: an AST
(:mod:`repro.wasm.ast`), a validator (:mod:`repro.wasm.validation`), a
pluggable execution-engine layer (:mod:`repro.wasm.engine`: a pre-decoded
flat-code VM — the default — the reference tree-walker, and the compiled
tier of :mod:`repro.wasm.pygen`, which translates flat code to Python
source) behind the :class:`WasmInterpreter` facade
(:mod:`repro.wasm.interpreter`), the flat pre-decoder
(:mod:`repro.wasm.decode`), and a WAT-style printer (:mod:`repro.wasm.text`).
"""

from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmData,
    WasmFuncType,
    WasmFunction,
    WasmFunctionDecl,
    WasmGlobal,
    WasmImportedFunction,
    WasmMemory,
    WasmModule,
    WasmTable,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
    count_instrs,
    function_instruction_count,
)
from .decode import DecodedModule, FlatFunction, decode_function, decode_instance, decode_module
from .engine import (
    DEFAULT_ENGINE,
    ENGINES,
    ExecutionEngine,
    FlatVMEngine,
    TreeWalkingEngine,
    available_engines,
    create_engine,
)
from .interpreter import (
    HostFunction,
    LinearMemory,
    MAX_MEMORY_PAGES,
    WasmInstance,
    WasmInterpreter,
    WasmTrap,
    WasmValue,
)

# pygen registers CompiledPyEngine in ENGINES as an import side effect, so it
# must come after the engine import (it subclasses ExecutionEngine).
from .pygen import CompiledPyEngine, ModuleTranslation, translate_module  # noqa: E402
from .text import format_instr, module_to_wat
from .validation import WasmValidationError, validate_function, validate_module

__all__ = [name for name in dir() if not name.startswith("_")]
