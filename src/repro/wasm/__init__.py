"""A WebAssembly 1.0 (+ multi-value) substrate.

This package is the execution target for lowered RichWasm modules: an AST
(:mod:`repro.wasm.ast`), a validator (:mod:`repro.wasm.validation`), an
interpreter with a byte-addressed linear memory
(:mod:`repro.wasm.interpreter`) and a WAT-style printer
(:mod:`repro.wasm.text`).
"""

from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmData,
    WasmFuncType,
    WasmFunction,
    WasmFunctionDecl,
    WasmGlobal,
    WasmImportedFunction,
    WasmMemory,
    WasmModule,
    WasmTable,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
    count_instrs,
)
from .interpreter import HostFunction, LinearMemory, WasmInstance, WasmInterpreter, WasmTrap, WasmValue
from .text import format_instr, module_to_wat
from .validation import WasmValidationError, validate_function, validate_module

__all__ = [name for name in dir() if not name.startswith("_")]
