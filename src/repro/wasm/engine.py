"""Pluggable execution engines for the Wasm substrate.

:class:`ExecutionEngine` is the abstraction every execution path in the repo
(differential verification, the FFI ``Program`` layer, benchmarks, examples)
runs on.  Three implementations ship:

* :class:`TreeWalkingEngine` (``"tree"``) — the original recursive
  tree-walker: structured bodies are re-entered on every execution and
  ``br``/``return`` unwind Python exceptions.  It is the reference
  implementation and the baseline for the differential cross-check.
* :class:`FlatVMEngine` (``"flat"``) — a pre-decoded flat-code VM: each
  function body is flattened once at instantiation
  (:mod:`repro.wasm.decode`), branches are program-counter updates over an
  explicit label stack, and calls push explicit frames — no exceptions on
  the hot path.  This is the default engine.
* :class:`~repro.wasm.pygen.CompiledPyEngine` (``"compiled"``) — the
  template-compiled tier (:mod:`repro.wasm.pygen`): flat code is translated
  once per module into Python source and ``exec``'d, removing interpretive
  dispatch entirely.  Registered here on import of :mod:`repro.wasm`.

All engines share instantiation, export lookup and constant-expression
evaluation (implemented on the base class), count ``steps`` identically
(one step per executed instruction that the tree walker would have visited),
and produce bit-identical results, traps, memories and globals — a property
enforced by :func:`repro.opt.run_engine_cross_check` and the property suite.

Select an engine by name via :func:`create_engine`, the ``engine=`` argument
of :class:`repro.wasm.WasmInterpreter`, or the ``REPRO_WASM_ENGINE``
environment variable.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Optional, Sequence, Union

from ..core.semantics import numerics
from ..core.typing.errors import WasmError
from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmFunction,
    WasmFuncType,
    WasmImportedFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)
from .decode import (
    OP_BLOCK,
    OP_BR,
    OP_BR_IF,
    OP_BR_TABLE,
    OP_CALL,
    OP_CALL_INDIRECT,
    OP_CONST,
    OP_CVT,
    OP_DROP,
    OP_END,
    OP_F_BINOP,
    OP_F_RELOP,
    OP_GLOBAL_GET,
    OP_GLOBAL_SET,
    OP_I_BINOP,
    OP_I_RELOP,
    OP_IF,
    OP_JUMP,
    OP_LOAD_F,
    OP_LOAD_I,
    OP_LOCAL_GET,
    OP_LOCAL_SET,
    OP_LOCAL_TEE,
    OP_LOOP,
    OP_MEMORY_GROW,
    OP_MEMORY_SIZE,
    OP_NOP,
    OP_RETURN,
    OP_SELECT,
    OP_STORE_F,
    OP_STORE_I,
    OP_TESTOP,
    OP_UNOP,
    OP_UNREACHABLE,
    FlatFunction,
    HostEntry,
    _INT_BINOPS,
    _INT_UNOPS,
    decode_instance,
)
from .interpreter import (
    HostFunction,
    LinearMemory,
    WasmInstance,
    WasmTrap,
    WasmValue,
    _normalize,
)

DEFAULT_ENGINE = "flat"
_ENGINE_ENV_VAR = "REPRO_WASM_ENGINE"


class _Branch(Exception):
    """Tree-walker branch unwinding (never crosses the engine boundary)."""

    def __init__(self, depth: int, values: list[WasmValue]):
        super().__init__(depth)
        self.depth = depth
        self.values = values


class _Return(Exception):
    def __init__(self, values: list[WasmValue]):
        super().__init__()
        self.values = values


class ExecutionEngine(ABC):
    """Instantiates Wasm modules and executes exported functions.

    Engines are stateful in exactly two counters: ``steps`` (cumulative
    executed-instruction count across all invocations) and ``max_steps``
    (trap with ``"step budget exhausted"`` once exceeded).  Both engines
    count the same instruction stream, so a program traps at the same step
    number regardless of engine.

    ``profiler`` optionally holds a :class:`repro.obs.profile.StepProfiler`
    (attached via ``profiler.install(engine)``; the engine never imports the
    obs layer).  When set, the run loops take one sample every
    ``profiler.interval`` counted steps, attributed to the function
    executing that step; since both engines count steps identically, the
    sample points and attributions agree across engines.
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, *, max_steps: Optional[int] = None) -> None:
        self.max_steps = max_steps
        self.steps = 0
        self.profiler = None

    # -- instantiation -----------------------------------------------------

    def instantiate(
        self,
        module: WasmModule,
        host_imports: Optional[dict[tuple[str, str], HostFunction]] = None,
    ) -> WasmInstance:
        host_imports = host_imports or {}
        instance = WasmInstance(module=module)

        for function in module.functions:
            if isinstance(function, WasmImportedFunction):
                key = (function.module, function.name)
                if key not in host_imports:
                    raise WasmError(f"unresolved Wasm import {key!r}")
                instance.funcs.append(host_imports[key])
            else:
                instance.funcs.append(function)

        for index, function in enumerate(module.functions):
            for export in function.exports:
                instance.exports[export] = index

        if module.memory is not None:
            instance.memory = LinearMemory(module.memory.min_pages, module.memory.max_pages)
            for segment in module.data:
                instance.memory.write(segment.offset, segment.data)

        instance.table = list(module.table.entries)

        for global_decl in module.globals:
            value = self._eval_const_expr(global_decl.init, instance)
            instance.globals.append(value)

        self._prepare_instance(instance)

        if module.start is not None:
            self.invoke_index(instance, module.start, [])
        return instance

    def _prepare_instance(self, instance: WasmInstance) -> None:
        """Engine hook run after the instance is built, before ``start``."""

    def _eval_const_expr(self, body: Sequence[WInstr], instance: WasmInstance) -> WasmValue:
        stack: list[WasmValue] = []
        for instr in body:
            if isinstance(instr, Const):
                stack.append(_normalize(instr.valtype, instr.value))
            elif isinstance(instr, GlobalGet):
                stack.append(instance.globals[instr.index])
            else:
                raise WasmError(f"unsupported instruction in constant expression: {instr!r}")
        return stack[-1] if stack else 0

    # -- invocation --------------------------------------------------------

    def invoke(self, instance: WasmInstance, name: str, args: Sequence[WasmValue] = ()) -> list[WasmValue]:
        if name not in instance.exports:
            raise WasmError(f"no export named {name!r}")
        return self.invoke_index(instance, instance.exports[name], list(args))

    @abstractmethod
    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        """Execute function ``index`` of ``instance`` with ``args``."""


# ---------------------------------------------------------------------------
# The tree-walking reference engine
# ---------------------------------------------------------------------------


class TreeWalkingEngine(ExecutionEngine):
    """The original recursive AST interpreter (reference semantics)."""

    name: ClassVar[str] = "tree"

    def __init__(self, *, max_steps: Optional[int] = None) -> None:
        super().__init__(max_steps=max_steps)
        # Innermost executing function, maintained only while a profiler is
        # attached (the sampler's attribution source).
        self._profile_stack: list = []

    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        target = instance.funcs[index]
        if callable(target) and not isinstance(target, WasmFunction):
            results = target(*args)
            return list(results) if results is not None else []
        assert isinstance(target, WasmFunction)
        locals_: list[WasmValue] = list(args)
        for position, valtype in enumerate(target.functype.params[: len(locals_)]):
            locals_[position] = _normalize(valtype, locals_[position])
        for valtype in target.locals:
            locals_.append(0 if valtype.is_integer else 0.0)
        stack: list[WasmValue] = []
        profiling = self.profiler is not None
        if profiling:
            self._profile_stack.append(target.name)
        try:
            self._exec_seq(target.body, stack, locals_, instance)
            count = len(target.functype.results)
            return stack[len(stack) - count :] if count else []
        except _Return as ret:
            count = len(target.functype.results)
            return ret.values[len(ret.values) - count :] if count else []
        except _Branch as branch:  # pragma: no cover - validation prevents this
            raise WasmTrap(f"branch escaped function body (depth {branch.depth})")
        finally:
            if profiling:
                self._profile_stack.pop()

    # -- execution ---------------------------------------------------------

    def _exec_seq(
        self,
        body: Sequence[WInstr],
        stack: list[WasmValue],
        locals_: list[WasmValue],
        instance: WasmInstance,
    ) -> None:
        for instr in body:
            self._step(instr, stack, locals_, instance)

    def _step(self, instr: WInstr, stack: list[WasmValue], locals_: list[WasmValue], instance: WasmInstance) -> None:
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise WasmTrap("step budget exhausted")
        profiler = self.profiler
        if profiler is not None and self.steps >= profiler.next_at:
            profiler.record(self._profile_stack[-1] if self._profile_stack else None, self.steps)

        if isinstance(instr, Const):
            stack.append(_normalize(instr.valtype, instr.value))
        elif isinstance(instr, Binop):
            rhs, lhs = stack.pop(), stack.pop()
            stack.append(self._binop(instr, lhs, rhs))
        elif isinstance(instr, Unop):
            operand = stack.pop()
            stack.append(self._unop(instr, operand))
        elif isinstance(instr, Testop):
            operand = stack.pop()
            stack.append(numerics.int_eqz(int(operand), instr.valtype.bit_width))
        elif isinstance(instr, Relop):
            rhs, lhs = stack.pop(), stack.pop()
            stack.append(self._relop(instr, lhs, rhs))
        elif isinstance(instr, Cvtop):
            operand = stack.pop()
            stack.append(self._cvtop(instr, operand))
        elif isinstance(instr, WUnreachable):
            raise WasmTrap("unreachable executed")
        elif isinstance(instr, WNop):
            return
        elif isinstance(instr, WDrop):
            stack.pop()
        elif isinstance(instr, WSelect):
            condition = stack.pop()
            second, first = stack.pop(), stack.pop()
            stack.append(first if int(condition) != 0 else second)
        elif isinstance(instr, WBlock):
            self._run_block(instr.body, instr.blocktype, stack, locals_, instance, loop=False)
        elif isinstance(instr, WLoop):
            self._run_block(instr.body, instr.blocktype, stack, locals_, instance, loop=True)
        elif isinstance(instr, WIf):
            condition = stack.pop()
            body = instr.then_body if int(condition) != 0 else instr.else_body
            self._run_block(body, instr.blocktype, stack, locals_, instance, loop=False)
        elif isinstance(instr, WBr):
            raise _Branch(instr.depth, list(stack))
        elif isinstance(instr, WBrIf):
            condition = stack.pop()
            if int(condition) != 0:
                raise _Branch(instr.depth, list(stack))
        elif isinstance(instr, WBrTable):
            index = int(stack.pop())
            depth = instr.depths[index] if 0 <= index < len(instr.depths) else instr.default
            raise _Branch(depth, list(stack))
        elif isinstance(instr, WReturn):
            raise _Return(list(stack))
        elif isinstance(instr, WCall):
            self._call(instance, instr.func_index, stack)
        elif isinstance(instr, WCallIndirect):
            table_index = int(stack.pop())
            if table_index < 0 or table_index >= len(instance.table):
                raise WasmTrap(f"call_indirect index {table_index} out of table bounds")
            self._call(instance, instance.table[table_index], stack, expected=instr.functype)
        elif isinstance(instr, LocalGet):
            stack.append(locals_[instr.index])
        elif isinstance(instr, LocalSet):
            locals_[instr.index] = stack.pop()
        elif isinstance(instr, LocalTee):
            locals_[instr.index] = stack[-1]
        elif isinstance(instr, GlobalGet):
            stack.append(instance.globals[instr.index])
        elif isinstance(instr, GlobalSet):
            instance.globals[instr.index] = stack.pop()
        elif isinstance(instr, Load):
            address = int(stack.pop()) + instr.offset
            stack.append(self._load(instance, instr, address))
        elif isinstance(instr, StoreI):
            value = stack.pop()
            address = int(stack.pop()) + instr.offset
            self._store(instance, instr, address, value)
        elif isinstance(instr, MemorySize):
            stack.append(self._memory(instance).size_pages())
        elif isinstance(instr, MemoryGrow):
            delta = int(stack.pop())
            stack.append(numerics.wrap(self._memory(instance).grow(delta), 32))
        else:
            raise WasmError(f"no execution rule for Wasm instruction {instr!r}")

    def _run_block(
        self,
        body: Sequence[WInstr],
        blocktype: WasmFuncType,
        stack: list[WasmValue],
        locals_: list[WasmValue],
        instance: WasmInstance,
        *,
        loop: bool,
    ) -> None:
        params = [stack.pop() for _ in blocktype.params][::-1]
        inner = list(params)
        while True:
            try:
                self._exec_seq(body, inner, locals_, instance)
                count = len(blocktype.results)
                stack.extend(inner[len(inner) - count :] if count else [])
                return
            except _Branch as branch:
                if branch.depth > 0:
                    raise _Branch(branch.depth - 1, branch.values)
                if not loop:
                    count = len(blocktype.results)
                    stack.extend(branch.values[len(branch.values) - count :] if count else [])
                    return
                count = len(blocktype.params)
                inner = branch.values[len(branch.values) - count :] if count else []

    def _call(
        self,
        instance: WasmInstance,
        index: int,
        stack: list[WasmValue],
        expected: Optional[WasmFuncType] = None,
    ) -> None:
        target = instance.funcs[index]
        if isinstance(target, WasmFunction):
            functype = target.functype
        elif expected is not None:
            functype = expected
        else:
            # A direct call of an imported (host) function: take the type from
            # the module's import declaration.
            functype = instance.module.functions[index].functype
        if expected is not None and isinstance(target, WasmFunction):
            if target.functype != expected:
                raise WasmTrap("indirect call type mismatch")
        args = [stack.pop() for _ in functype.params][::-1]
        results = self.invoke_index(instance, index, args)
        if not isinstance(target, WasmFunction):
            # Host results enter the stack unchecked; normalize them so the
            # all-values-normalized invariant holds (defined functions already
            # return normalized values).
            results = [_normalize(valtype, value) for valtype, value in zip(functype.results, results)]
        stack.extend(results)

    # -- numeric helpers ---------------------------------------------------

    @staticmethod
    def _binop(instr: Binop, lhs: WasmValue, rhs: WasmValue) -> WasmValue:
        width = instr.valtype.bit_width
        try:
            if instr.valtype.is_integer:
                return _INT_BINOPS[instr.op](int(lhs), int(rhs), width)
            return numerics.float_binop(instr.op, float(lhs), float(rhs), width)
        except numerics.NumericTrap as exc:
            raise WasmTrap(str(exc)) from exc

    @staticmethod
    def _unop(instr: Unop, operand: WasmValue) -> WasmValue:
        width = instr.valtype.bit_width
        if instr.valtype.is_integer:
            return _INT_UNOPS[instr.op](int(operand), width)
        return numerics.float_unop(instr.op, float(operand), width)

    @staticmethod
    def _relop(instr: Relop, lhs: WasmValue, rhs: WasmValue) -> int:
        width = instr.valtype.bit_width
        if instr.valtype.is_integer:
            base = instr.op.split("_")[0]
            signed = instr.op.endswith("_s")
            return numerics.int_relop(base, int(lhs), int(rhs), width, signed)
        return numerics.float_relop(instr.op, float(lhs), float(rhs))

    @staticmethod
    def _cvtop(instr: Cvtop, operand: WasmValue) -> WasmValue:
        try:
            if instr.op == "wrap":
                return numerics.wrap(int(operand), 32)
            if instr.op in ("extend_s", "extend_u"):
                signed = instr.op == "extend_s"
                value = numerics.to_signed(int(operand), 32) if signed else numerics.to_unsigned(int(operand), 32)
                return numerics.wrap(value, 64)
            if instr.op in ("trunc_s", "trunc_u"):
                return numerics.trunc_float_to_int(float(operand), instr.target.bit_width, instr.op == "trunc_s")
            if instr.op in ("convert_s", "convert_u"):
                return numerics.convert_int_to_float(
                    int(operand), instr.source.bit_width, instr.op == "convert_s", instr.target.bit_width
                )
            if instr.op == "promote":
                return float(operand)
            if instr.op == "demote":
                return numerics.float_canon(float(operand), 32)
            if instr.op == "reinterpret":
                if instr.source.is_integer:
                    return numerics.reinterpret_int_to_float(int(operand), instr.source.bit_width)
                return numerics.reinterpret_float_to_int(float(operand), instr.source.bit_width)
        except numerics.NumericTrap as exc:
            raise WasmTrap(str(exc)) from exc
        raise WasmError(f"unknown conversion {instr.op!r}")

    # -- memory ------------------------------------------------------------

    @staticmethod
    def _memory(instance: WasmInstance) -> LinearMemory:
        if instance.memory is None:
            raise WasmTrap("module has no memory")
        return instance.memory

    def _load(self, instance: WasmInstance, instr: Load, address: int) -> WasmValue:
        memory = self._memory(instance)
        if instr.width is not None:
            raw = memory.read(address, instr.width // 8)
            value = int.from_bytes(raw, "little", signed=False)
            if instr.signed:
                value = numerics.to_signed(value, instr.width)
            return numerics.wrap(value, instr.valtype.bit_width)
        raw = memory.read(address, instr.valtype.byte_width)
        if instr.valtype is ValType.I32:
            return int.from_bytes(raw, "little")
        if instr.valtype is ValType.I64:
            return int.from_bytes(raw, "little")
        if instr.valtype is ValType.F32:
            return struct.unpack("<f", raw)[0]
        return struct.unpack("<d", raw)[0]

    def _store(self, instance: WasmInstance, instr: StoreI, address: int, value: WasmValue) -> None:
        memory = self._memory(instance)
        if instr.width is not None:
            payload = (int(value) & ((1 << instr.width) - 1)).to_bytes(instr.width // 8, "little")
        elif instr.valtype is ValType.I32:
            payload = numerics.wrap(int(value), 32).to_bytes(4, "little")
        elif instr.valtype is ValType.I64:
            payload = numerics.wrap(int(value), 64).to_bytes(8, "little")
        elif instr.valtype is ValType.F32:
            payload = struct.pack("<f", float(value))
        else:
            payload = struct.pack("<d", float(value))
        memory.write(address, payload)


# ---------------------------------------------------------------------------
# Cold-opcode handlers for the flat VM (pure stack effects, no control flow)
# ---------------------------------------------------------------------------


def _h_unop(ins, stack) -> None:
    stack[-1] = ins[1](stack[-1])


def _h_select(ins, stack) -> None:
    condition = stack.pop()
    second, first = stack.pop(), stack.pop()
    stack.append(first if int(condition) != 0 else second)


def _h_nop(ins, stack) -> None:
    pass


def _h_unreachable(ins, stack) -> None:
    raise WasmTrap("unreachable executed")


def _h_f_relop(ins, stack) -> None:
    rhs = stack.pop()
    stack[-1] = numerics.float_relop(ins[1], float(stack[-1]), float(rhs))


_PURE_HANDLERS: dict[int, Callable] = {
    OP_UNOP: _h_unop,
    OP_SELECT: _h_select,
    OP_NOP: _h_nop,
    OP_UNREACHABLE: _h_unreachable,
    OP_F_RELOP: _h_f_relop,
}


# ---------------------------------------------------------------------------
# The flat VM
# ---------------------------------------------------------------------------


class FlatVMEngine(ExecutionEngine):
    """Pre-decoded flat-code VM: pc loop, explicit frame and label stacks.

    Hot opcodes are dispatched inline in :meth:`_run` (ordered by frequency
    in lowered RichWasm code); cold pure-stack opcodes go through
    :data:`_PURE_HANDLERS`, the per-opcode handler table the decoder targets.
    """

    name: ClassVar[str] = "flat"

    def _prepare_instance(self, instance: WasmInstance) -> None:
        self._decode(instance)

    @staticmethod
    def _decode(instance: WasmInstance) -> list:
        decoded = decode_instance(instance)
        instance.decoded = decoded
        instance.decoded_funcs = list(instance.funcs)
        return decoded

    @staticmethod
    def _decode_is_current(instance: WasmInstance) -> bool:
        """Is the cached flat code still what ``instance.funcs`` would run?

        The tree walker reads ``instance.funcs`` live, so a patched function
        slot (say, an optimized body swapped in after instantiation) takes
        effect immediately there; the flat VM must not keep executing stale
        pre-decoded code.  Identity-compare the snapshot taken at decode time
        — defined bodies are immutable tuples, so slot identity is exactly
        code identity.  (Checked at invoke boundaries; calls already on the
        pc loop keep the code they started with, as does a reentrant tree
        walk mid-call.)
        """

        snapshot = instance.decoded_funcs
        funcs = instance.funcs
        if snapshot is None or len(snapshot) != len(funcs):
            return False
        for cached, current in zip(snapshot, funcs):
            if cached is not current:
                return False
        return True

    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        target = instance.funcs[index]
        if callable(target) and not isinstance(target, WasmFunction):
            results = target(*args)
            return list(results) if results is not None else []
        decoded = instance.decoded
        if decoded is None or not self._decode_is_current(instance):
            # Instance was created by another engine (decode on first use) or
            # its function table was patched since the last decode.
            decoded = self._decode(instance)
        return self._run(instance, decoded, index, args)

    def _run(self, instance: WasmInstance, decoded: list, index: int, args: list[WasmValue]) -> list[WasmValue]:
        flat: FlatFunction = decoded[index]

        funcs_table = instance.table
        globals_ = instance.globals
        memory = instance.memory
        mdata = memory.data if memory is not None else None

        # Entry frame: normalize arguments (mirrors the tree walker, which
        # normalizes the provided prefix of the parameter list).
        locals_: list[WasmValue] = list(args)
        params = flat.functype.params
        for position in range(min(len(params), len(locals_))):
            locals_[position] = _normalize(params[position], locals_[position])
        locals_.extend(flat.local_inits)

        stack: list[WasmValue] = []
        labels: list[tuple] = []
        frames: list[tuple] = []
        code = flat.code
        code_len = len(code)
        pc = 0
        cur_base = 0
        cur_nres = flat.n_results
        cur_flat = flat

        steps = self.steps
        limit = self.max_steps if self.max_steps is not None else float("inf")
        # The step check is one comparison against ``boundary`` — the nearer
        # of the trap point and the profiler's next sample.  With no profiler
        # attached, ``boundary`` is exactly the trap point (``limit + 1``,
        # since the budget traps on ``steps > limit``), so profiling support
        # costs the disabled path nothing.
        profiler = self.profiler
        trap_at = limit + 1
        next_at = profiler.next_at if profiler is not None else float("inf")
        boundary = trap_at if trap_at < next_at else next_at

        NumericTrap = numerics.NumericTrap
        wrap = numerics.wrap
        to_signed = numerics.to_signed
        int_eqz = numerics.int_eqz
        int_relop = numerics.int_relop
        float_binop = numerics.float_binop
        from_bytes = int.from_bytes
        unpack_from = struct.unpack_from
        pack_into = struct.pack_into
        pure_handlers = _PURE_HANDLERS

        try:
            while True:
                if pc >= code_len:
                    # Fell off the end of a function body: implicit return.
                    if cur_nres:
                        if len(stack) != cur_base + cur_nres:
                            stack[cur_base:] = stack[len(stack) - cur_nres :]
                    else:
                        del stack[cur_base:]
                    if not frames:
                        return stack
                    code, pc, locals_, labels, cur_base, cur_nres, cur_flat = frames.pop()
                    code_len = len(code)
                    continue

                ins = code[pc]
                op = ins[0]
                if op >= 0:
                    steps += 1
                    if steps >= boundary:
                        if steps > limit:
                            raise WasmTrap("step budget exhausted")
                        profiler.record(cur_flat.name, steps)
                        next_at = profiler.next_at
                        boundary = trap_at if trap_at < next_at else next_at
                pc += 1

                if op == OP_LOCAL_GET:
                    stack.append(locals_[ins[1]])
                elif op == OP_CONST:
                    stack.append(ins[1])
                elif op == OP_I_BINOP:
                    rhs = stack.pop()
                    try:
                        stack[-1] = ins[1](stack[-1], rhs, ins[2])
                    except NumericTrap as exc:
                        raise WasmTrap(str(exc)) from exc
                elif op == OP_LOCAL_SET:
                    locals_[ins[1]] = stack.pop()
                elif op == OP_LOCAL_TEE:
                    locals_[ins[1]] = stack[-1]
                elif op == OP_I_RELOP:
                    rhs = stack.pop()
                    stack[-1] = int_relop(ins[1], stack[-1], rhs, ins[3], ins[2])
                elif op == OP_TESTOP:
                    stack[-1] = int_eqz(stack[-1], ins[1])
                elif op == OP_BR_IF:
                    if stack.pop():
                        depth = ins[1]
                        label_index = len(labels) - 1 - depth
                        if label_index < 0:
                            raise WasmTrap(f"branch escaped function body (depth {depth - len(labels)})")
                        target, arity, _end_arity, base, is_loop = labels[label_index]
                        del labels[label_index + 1 if is_loop else label_index :]
                        if arity:
                            if len(stack) != base + arity:
                                stack[base:] = stack[len(stack) - arity :]
                        else:
                            del stack[base:]
                        pc = target
                elif op == OP_BR:
                    depth = ins[1]
                    label_index = len(labels) - 1 - depth
                    if label_index < 0:
                        raise WasmTrap(f"branch escaped function body (depth {depth - len(labels)})")
                    target, arity, _end_arity, base, is_loop = labels[label_index]
                    del labels[label_index + 1 if is_loop else label_index :]
                    if arity:
                        if len(stack) != base + arity:
                            stack[base:] = stack[len(stack) - arity :]
                    else:
                        del stack[base:]
                    pc = target
                elif op == OP_END:
                    # Fallthrough keeps the label's *result* values (for a
                    # loop these differ from the branch arity, its params).
                    target, _br_arity, arity, base, is_loop = labels.pop()
                    if len(stack) != base + arity:
                        if arity:
                            stack[base:] = stack[len(stack) - arity :]
                        else:
                            del stack[base:]
                elif op == OP_BLOCK:
                    labels.append((ins[1], ins[2], ins[2], len(stack) - ins[3], False))
                elif op == OP_LOOP:
                    labels.append((ins[1], ins[2], ins[3], len(stack) - ins[2], True))
                elif op == OP_JUMP:
                    pc = ins[1]
                elif op == OP_IF:
                    condition = stack.pop()
                    labels.append((ins[2], ins[3], ins[3], len(stack) - ins[4], False))
                    if not condition:
                        pc = ins[1]
                elif op == OP_CVT:
                    try:
                        stack[-1] = ins[1](stack[-1])
                    except NumericTrap as exc:
                        raise WasmTrap(str(exc)) from exc
                elif op == OP_CALL or op == OP_CALL_INDIRECT:
                    if op == OP_CALL_INDIRECT:
                        table_index = stack.pop()
                        if table_index < 0 or table_index >= len(funcs_table):
                            raise WasmTrap(f"call_indirect index {table_index} out of table bounds")
                        findex = funcs_table[table_index]
                        expected = ins[1]
                    else:
                        findex = ins[1]
                        expected = None
                    callee = decoded[findex]
                    if type(callee) is FlatFunction:
                        if expected is not None and callee.functype != expected:
                            raise WasmTrap("indirect call type mismatch")
                        n_params = callee.n_params
                        if n_params:
                            new_locals = stack[len(stack) - n_params :]
                            del stack[len(stack) - n_params :]
                            callee_params = callee.functype.params
                            for position in range(n_params):
                                new_locals[position] = _normalize(callee_params[position], new_locals[position])
                        else:
                            new_locals = []
                        new_locals.extend(callee.local_inits)
                        frames.append((code, pc, locals_, labels, cur_base, cur_nres, cur_flat))
                        code = callee.code
                        code_len = len(code)
                        pc = 0
                        locals_ = new_locals
                        labels = []
                        cur_base = len(stack)
                        cur_nres = callee.n_results
                        cur_flat = callee
                    else:
                        functype = expected if expected is not None else callee.functype
                        n_args = len(functype.params)
                        host_args = stack[len(stack) - n_args :] if n_args else []
                        if n_args:
                            del stack[len(stack) - n_args :]
                        # Host code may re-enter the engine: keep the shared
                        # step counter coherent across the boundary, even when
                        # the host call (or reentrant execution) raises —
                        # otherwise the outer finally would clobber the
                        # reentrant increments with the stale local value.
                        self.steps = steps
                        try:
                            results = callee.fn(*host_args)
                        finally:
                            steps = self.steps
                            # Reentrant execution may have consumed samples;
                            # re-read the profiler's schedule.
                            if profiler is not None:
                                next_at = profiler.next_at
                                boundary = trap_at if trap_at < next_at else next_at
                        results = list(results) if results is not None else []
                        stack.extend(
                            _normalize(valtype, value) for valtype, value in zip(functype.results, results)
                        )
                elif op == OP_RETURN:
                    pc = code_len
                elif op == OP_LOAD_I:
                    address = stack[-1] + ins[1]
                    nbytes = ins[2]
                    end = address + nbytes
                    if mdata is None:
                        raise WasmTrap("module has no memory")
                    if address < 0 or end > len(mdata):
                        raise WasmTrap(
                            f"out-of-bounds memory access at {address} (+{nbytes}), memory is {len(mdata)} bytes"
                        )
                    value = from_bytes(mdata[address:end], "little")
                    signed_width = ins[3]
                    if signed_width:
                        value = wrap(to_signed(value, signed_width), ins[4])
                    stack[-1] = value
                elif op == OP_STORE_I:
                    value = stack.pop()
                    address = stack.pop() + ins[1]
                    nbytes = ins[2]
                    end = address + nbytes
                    if mdata is None:
                        raise WasmTrap("module has no memory")
                    if address < 0 or end > len(mdata):
                        raise WasmTrap(
                            f"out-of-bounds memory access at {address} (+{nbytes}), memory is {len(mdata)} bytes"
                        )
                    mdata[address:end] = (int(value) & ins[3]).to_bytes(nbytes, "little")
                elif op == OP_GLOBAL_GET:
                    stack.append(globals_[ins[1]])
                elif op == OP_GLOBAL_SET:
                    globals_[ins[1]] = stack.pop()
                elif op == OP_DROP:
                    stack.pop()
                elif op == OP_BR_TABLE:
                    branch_index = int(stack.pop())
                    depths = ins[1]
                    depth = depths[branch_index] if 0 <= branch_index < len(depths) else ins[2]
                    label_index = len(labels) - 1 - depth
                    if label_index < 0:
                        raise WasmTrap(f"branch escaped function body (depth {depth - len(labels)})")
                    target, arity, _end_arity, base, is_loop = labels[label_index]
                    del labels[label_index + 1 if is_loop else label_index :]
                    if arity:
                        if len(stack) != base + arity:
                            stack[base:] = stack[len(stack) - arity :]
                    else:
                        del stack[base:]
                    pc = target
                elif op == OP_F_BINOP:
                    rhs = stack.pop()
                    try:
                        stack[-1] = float_binop(ins[1], float(stack[-1]), float(rhs), ins[2])
                    except NumericTrap as exc:
                        raise WasmTrap(str(exc)) from exc
                elif op == OP_LOAD_F:
                    address = stack[-1] + ins[1]
                    nbytes = ins[3]
                    end = address + nbytes
                    if mdata is None:
                        raise WasmTrap("module has no memory")
                    if address < 0 or end > len(mdata):
                        raise WasmTrap(
                            f"out-of-bounds memory access at {address} (+{nbytes}), memory is {len(mdata)} bytes"
                        )
                    stack[-1] = unpack_from(ins[2], mdata, address)[0]
                elif op == OP_STORE_F:
                    value = stack.pop()
                    address = stack.pop() + ins[1]
                    nbytes = ins[3]
                    end = address + nbytes
                    if mdata is None:
                        raise WasmTrap("module has no memory")
                    if address < 0 or end > len(mdata):
                        raise WasmTrap(
                            f"out-of-bounds memory access at {address} (+{nbytes}), memory is {len(mdata)} bytes"
                        )
                    pack_into(ins[2], mdata, address, float(value))
                elif op == OP_MEMORY_SIZE:
                    if memory is None:
                        raise WasmTrap("module has no memory")
                    stack.append(len(mdata) // PAGE_SIZE)
                elif op == OP_MEMORY_GROW:
                    if memory is None:
                        raise WasmTrap("module has no memory")
                    delta = stack.pop()
                    stack.append(wrap(memory.grow(int(delta)), 32))
                    mdata = memory.data
                else:
                    pure_handlers[op](ins, stack)
        finally:
            self.steps = steps


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------

ENGINES: dict[str, type[ExecutionEngine]] = {
    TreeWalkingEngine.name: TreeWalkingEngine,
    FlatVMEngine.name: FlatVMEngine,
}

EngineSpec = Union[str, ExecutionEngine, None]


def available_engines() -> tuple[str, ...]:
    return tuple(sorted(ENGINES))


def create_engine(spec: EngineSpec = None, *, max_steps: Optional[int] = None) -> ExecutionEngine:
    """Resolve an engine from a name, an instance, or the environment.

    ``None`` selects ``$REPRO_WASM_ENGINE`` when set, else
    :data:`DEFAULT_ENGINE` (the flat VM).  Passing an existing
    :class:`ExecutionEngine` returns it unchanged (``max_steps`` must then be
    unset or match).
    """

    if isinstance(spec, ExecutionEngine):
        if max_steps is not None and spec.max_steps != max_steps:
            raise ValueError("cannot override max_steps on an existing engine instance")
        return spec
    name = spec if spec is not None else os.environ.get(_ENGINE_ENV_VAR) or DEFAULT_ENGINE
    try:
        engine_cls = ENGINES[name]
    except KeyError:
        raise ValueError(f"unknown execution engine {name!r}; available: {', '.join(available_engines())}") from None
    return engine_cls(max_steps=max_steps)
