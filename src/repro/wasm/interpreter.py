"""A WebAssembly 1.0 (+ multi-value) interpreter.

This is the execution substrate for lowered RichWasm modules: the paper runs
its compiled output "in all hosts of WebAssembly"; offline we provide our own
host.  The interpreter supports the instruction subset of
:mod:`repro.wasm.ast`, a single linear byte memory with little-endian sized
accesses, a function table for ``call_indirect``, imported host functions
(used by the lowering runtime for debugging hooks), and multi-value returns.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..core.semantics import numerics
from ..core.typing.errors import WasmError
from .ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmFunction,
    WasmFuncType,
    WasmImportedFunction,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)


class WasmTrap(WasmError):
    """A WebAssembly trap."""


WasmValue = Union[int, float]
HostFunction = Callable[..., Sequence[WasmValue]]


class _Branch(Exception):
    def __init__(self, depth: int, values: list[WasmValue]):
        super().__init__(depth)
        self.depth = depth
        self.values = values


class _Return(Exception):
    def __init__(self, values: list[WasmValue]):
        super().__init__()
        self.values = values


def _normalize(valtype: ValType, value: WasmValue) -> WasmValue:
    """Normalize a host-supplied value to its canonical runtime form.

    Wasm values are bit patterns: an ``i32`` argument of ``-5`` denotes the
    same value as ``0xFFFFFFFB``.  Normalizing at the boundary (function
    arguments, host-call results, constant expressions) guarantees every
    value on the operand stack is in wrapped/canonical form — an invariant
    the optimizer's conversion-elimination passes rely on.
    """

    if valtype.is_integer:
        return numerics.wrap(int(value), valtype.bit_width)
    return numerics.float_canon(float(value), valtype.bit_width)


@dataclass
class LinearMemory:
    """A byte-addressed linear memory made of 64 KiB pages."""

    pages: int = 1
    max_pages: Optional[int] = None
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.pages * PAGE_SIZE)

    def size_pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    def grow(self, delta_pages: int) -> int:
        old = self.size_pages()
        new = old + delta_pages
        if self.max_pages is not None and new > self.max_pages:
            return -1
        self.data.extend(bytes(delta_pages * PAGE_SIZE))
        return old

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > len(self.data):
            raise WasmTrap(
                f"out-of-bounds memory access at {address} (+{length}), memory is {len(self.data)} bytes"
            )

    def read(self, address: int, length: int) -> bytes:
        self._check(address, length)
        return bytes(self.data[address : address + length])

    def write(self, address: int, payload: bytes) -> None:
        self._check(address, len(payload))
        self.data[address : address + len(payload)] = payload


@dataclass
class WasmInstance:
    """A runtime instance of a Wasm module."""

    module: WasmModule
    funcs: list[object] = field(default_factory=list)  # WasmFunction | HostFunction
    globals: list[WasmValue] = field(default_factory=list)
    memory: Optional[LinearMemory] = None
    table: list[int] = field(default_factory=list)
    exports: dict[str, int] = field(default_factory=dict)


class WasmInterpreter:
    """Instantiates and executes Wasm modules."""

    def __init__(self, *, max_steps: Optional[int] = None) -> None:
        self.max_steps = max_steps
        self.steps = 0

    # -- instantiation -------------------------------------------------------

    def instantiate(
        self,
        module: WasmModule,
        host_imports: Optional[dict[tuple[str, str], HostFunction]] = None,
    ) -> WasmInstance:
        host_imports = host_imports or {}
        instance = WasmInstance(module=module)

        for function in module.functions:
            if isinstance(function, WasmImportedFunction):
                key = (function.module, function.name)
                if key not in host_imports:
                    raise WasmError(f"unresolved Wasm import {key!r}")
                instance.funcs.append(host_imports[key])
            else:
                instance.funcs.append(function)

        for index, function in enumerate(module.functions):
            for export in function.exports:
                instance.exports[export] = index

        if module.memory is not None:
            instance.memory = LinearMemory(module.memory.min_pages, module.memory.max_pages)
            for segment in module.data:
                instance.memory.write(segment.offset, segment.data)

        instance.table = list(module.table.entries)

        for global_decl in module.globals:
            value = self._eval_const_expr(global_decl.init, instance)
            instance.globals.append(value)

        if module.start is not None:
            self.invoke_index(instance, module.start, [])
        return instance

    def _eval_const_expr(self, body: Sequence[WInstr], instance: WasmInstance) -> WasmValue:
        stack: list[WasmValue] = []
        for instr in body:
            if isinstance(instr, Const):
                stack.append(_normalize(instr.valtype, instr.value))
            elif isinstance(instr, GlobalGet):
                stack.append(instance.globals[instr.index])
            else:
                raise WasmError(f"unsupported instruction in constant expression: {instr!r}")
        return stack[-1] if stack else 0

    # -- invocation ----------------------------------------------------------

    def invoke(self, instance: WasmInstance, name: str, args: Sequence[WasmValue] = ()) -> list[WasmValue]:
        if name not in instance.exports:
            raise WasmError(f"no export named {name!r}")
        return self.invoke_index(instance, instance.exports[name], list(args))

    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        target = instance.funcs[index]
        if callable(target) and not isinstance(target, WasmFunction):
            results = target(*args)
            return list(results) if results is not None else []
        assert isinstance(target, WasmFunction)
        locals_: list[WasmValue] = list(args)
        for position, valtype in enumerate(target.functype.params[: len(locals_)]):
            locals_[position] = _normalize(valtype, locals_[position])
        for valtype in target.locals:
            locals_.append(0 if valtype.is_integer else 0.0)
        stack: list[WasmValue] = []
        try:
            self._exec_seq(target.body, stack, locals_, instance)
            count = len(target.functype.results)
            return stack[len(stack) - count :] if count else []
        except _Return as ret:
            count = len(target.functype.results)
            return ret.values[len(ret.values) - count :] if count else []
        except _Branch as branch:  # pragma: no cover - validation prevents this
            raise WasmTrap(f"branch escaped function body (depth {branch.depth})")

    # -- execution -----------------------------------------------------------

    def _exec_seq(
        self,
        body: Sequence[WInstr],
        stack: list[WasmValue],
        locals_: list[WasmValue],
        instance: WasmInstance,
    ) -> None:
        for instr in body:
            self._step(instr, stack, locals_, instance)

    def _step(self, instr: WInstr, stack: list[WasmValue], locals_: list[WasmValue], instance: WasmInstance) -> None:
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise WasmTrap("step budget exhausted")

        if isinstance(instr, Const):
            stack.append(_normalize(instr.valtype, instr.value))
        elif isinstance(instr, Binop):
            rhs, lhs = stack.pop(), stack.pop()
            stack.append(self._binop(instr, lhs, rhs))
        elif isinstance(instr, Unop):
            operand = stack.pop()
            stack.append(self._unop(instr, operand))
        elif isinstance(instr, Testop):
            operand = stack.pop()
            stack.append(numerics.int_eqz(int(operand), instr.valtype.bit_width))
        elif isinstance(instr, Relop):
            rhs, lhs = stack.pop(), stack.pop()
            stack.append(self._relop(instr, lhs, rhs))
        elif isinstance(instr, Cvtop):
            operand = stack.pop()
            stack.append(self._cvtop(instr, operand))
        elif isinstance(instr, WUnreachable):
            raise WasmTrap("unreachable executed")
        elif isinstance(instr, WNop):
            return
        elif isinstance(instr, WDrop):
            stack.pop()
        elif isinstance(instr, WSelect):
            condition = stack.pop()
            second, first = stack.pop(), stack.pop()
            stack.append(first if int(condition) != 0 else second)
        elif isinstance(instr, WBlock):
            self._run_block(instr.body, instr.blocktype, stack, locals_, instance, loop=False)
        elif isinstance(instr, WLoop):
            self._run_block(instr.body, instr.blocktype, stack, locals_, instance, loop=True)
        elif isinstance(instr, WIf):
            condition = stack.pop()
            body = instr.then_body if int(condition) != 0 else instr.else_body
            self._run_block(body, instr.blocktype, stack, locals_, instance, loop=False)
        elif isinstance(instr, WBr):
            raise _Branch(instr.depth, list(stack))
        elif isinstance(instr, WBrIf):
            condition = stack.pop()
            if int(condition) != 0:
                raise _Branch(instr.depth, list(stack))
        elif isinstance(instr, WBrTable):
            index = int(stack.pop())
            depth = instr.depths[index] if 0 <= index < len(instr.depths) else instr.default
            raise _Branch(depth, list(stack))
        elif isinstance(instr, WReturn):
            raise _Return(list(stack))
        elif isinstance(instr, WCall):
            self._call(instance, instr.func_index, stack)
        elif isinstance(instr, WCallIndirect):
            table_index = int(stack.pop())
            if table_index < 0 or table_index >= len(instance.table):
                raise WasmTrap(f"call_indirect index {table_index} out of table bounds")
            self._call(instance, instance.table[table_index], stack, expected=instr.functype)
        elif isinstance(instr, LocalGet):
            stack.append(locals_[instr.index])
        elif isinstance(instr, LocalSet):
            locals_[instr.index] = stack.pop()
        elif isinstance(instr, LocalTee):
            locals_[instr.index] = stack[-1]
        elif isinstance(instr, GlobalGet):
            stack.append(instance.globals[instr.index])
        elif isinstance(instr, GlobalSet):
            instance.globals[instr.index] = stack.pop()
        elif isinstance(instr, Load):
            address = int(stack.pop()) + instr.offset
            stack.append(self._load(instance, instr, address))
        elif isinstance(instr, StoreI):
            value = stack.pop()
            address = int(stack.pop()) + instr.offset
            self._store(instance, instr, address, value)
        elif isinstance(instr, MemorySize):
            stack.append(self._memory(instance).size_pages())
        elif isinstance(instr, MemoryGrow):
            delta = int(stack.pop())
            stack.append(numerics.wrap(self._memory(instance).grow(delta), 32))
        else:
            raise WasmError(f"no execution rule for Wasm instruction {instr!r}")

    def _run_block(
        self,
        body: Sequence[WInstr],
        blocktype: WasmFuncType,
        stack: list[WasmValue],
        locals_: list[WasmValue],
        instance: WasmInstance,
        *,
        loop: bool,
    ) -> None:
        params = [stack.pop() for _ in blocktype.params][::-1]
        inner = list(params)
        while True:
            try:
                self._exec_seq(body, inner, locals_, instance)
                count = len(blocktype.results)
                stack.extend(inner[len(inner) - count :] if count else [])
                return
            except _Branch as branch:
                if branch.depth > 0:
                    raise _Branch(branch.depth - 1, branch.values)
                if not loop:
                    count = len(blocktype.results)
                    stack.extend(branch.values[len(branch.values) - count :] if count else [])
                    return
                count = len(blocktype.params)
                inner = branch.values[len(branch.values) - count :] if count else []

    def _call(
        self,
        instance: WasmInstance,
        index: int,
        stack: list[WasmValue],
        expected: Optional[WasmFuncType] = None,
    ) -> None:
        target = instance.funcs[index]
        if isinstance(target, WasmFunction):
            functype = target.functype
        elif expected is not None:
            functype = expected
        else:
            # A direct call of an imported (host) function: take the type from
            # the module's import declaration.
            functype = instance.module.functions[index].functype
        if expected is not None and isinstance(target, WasmFunction):
            if target.functype != expected:
                raise WasmTrap("indirect call type mismatch")
        args = [stack.pop() for _ in functype.params][::-1]
        results = self.invoke_index(instance, index, args)
        if not isinstance(target, WasmFunction):
            # Host results enter the stack unchecked; normalize them so the
            # all-values-normalized invariant holds (defined functions already
            # return normalized values).
            results = [_normalize(valtype, value) for valtype, value in zip(functype.results, results)]
        stack.extend(results)

    # -- numeric helpers -------------------------------------------------------

    @staticmethod
    def _binop(instr: Binop, lhs: WasmValue, rhs: WasmValue) -> WasmValue:
        width = instr.valtype.bit_width
        try:
            if instr.valtype.is_integer:
                table = {
                    "add": numerics.int_add,
                    "sub": numerics.int_sub,
                    "mul": numerics.int_mul,
                    "div_s": numerics.int_div_s,
                    "div_u": numerics.int_div_u,
                    "rem_s": numerics.int_rem_s,
                    "rem_u": numerics.int_rem_u,
                    "and": numerics.int_and,
                    "or": numerics.int_or,
                    "xor": numerics.int_xor,
                    "shl": numerics.int_shl,
                    "shr_s": numerics.int_shr_s,
                    "shr_u": numerics.int_shr_u,
                    "rotl": numerics.int_rotl,
                    "rotr": numerics.int_rotr,
                }
                return table[instr.op](int(lhs), int(rhs), width)
            return numerics.float_binop(instr.op, float(lhs), float(rhs), width)
        except numerics.NumericTrap as exc:
            raise WasmTrap(str(exc)) from exc

    @staticmethod
    def _unop(instr: Unop, operand: WasmValue) -> WasmValue:
        width = instr.valtype.bit_width
        if instr.valtype.is_integer:
            table = {
                "clz": numerics.int_clz,
                "ctz": numerics.int_ctz,
                "popcnt": numerics.int_popcnt,
            }
            return table[instr.op](int(operand), width)
        return numerics.float_unop(instr.op, float(operand), width)

    @staticmethod
    def _relop(instr: Relop, lhs: WasmValue, rhs: WasmValue) -> int:
        width = instr.valtype.bit_width
        if instr.valtype.is_integer:
            base = instr.op.split("_")[0]
            signed = instr.op.endswith("_s")
            return numerics.int_relop(base, int(lhs), int(rhs), width, signed)
        return numerics.float_relop(instr.op, float(lhs), float(rhs))

    @staticmethod
    def _cvtop(instr: Cvtop, operand: WasmValue) -> WasmValue:
        try:
            if instr.op == "wrap":
                return numerics.wrap(int(operand), 32)
            if instr.op in ("extend_s", "extend_u"):
                signed = instr.op == "extend_s"
                value = numerics.to_signed(int(operand), 32) if signed else numerics.to_unsigned(int(operand), 32)
                return numerics.wrap(value, 64)
            if instr.op in ("trunc_s", "trunc_u"):
                return numerics.trunc_float_to_int(float(operand), instr.target.bit_width, instr.op == "trunc_s")
            if instr.op in ("convert_s", "convert_u"):
                return numerics.convert_int_to_float(
                    int(operand), instr.source.bit_width, instr.op == "convert_s", instr.target.bit_width
                )
            if instr.op == "promote":
                return float(operand)
            if instr.op == "demote":
                return numerics.float_canon(float(operand), 32)
            if instr.op == "reinterpret":
                if instr.source.is_integer:
                    return numerics.reinterpret_int_to_float(int(operand), instr.source.bit_width)
                return numerics.reinterpret_float_to_int(float(operand), instr.source.bit_width)
        except numerics.NumericTrap as exc:
            raise WasmTrap(str(exc)) from exc
        raise WasmError(f"unknown conversion {instr.op!r}")

    # -- memory -------------------------------------------------------------------

    @staticmethod
    def _memory(instance: WasmInstance) -> LinearMemory:
        if instance.memory is None:
            raise WasmTrap("module has no memory")
        return instance.memory

    def _load(self, instance: WasmInstance, instr: Load, address: int) -> WasmValue:
        memory = self._memory(instance)
        if instr.width is not None:
            raw = memory.read(address, instr.width // 8)
            value = int.from_bytes(raw, "little", signed=False)
            if instr.signed:
                value = numerics.to_signed(value, instr.width)
            return numerics.wrap(value, instr.valtype.bit_width)
        raw = memory.read(address, instr.valtype.byte_width)
        if instr.valtype is ValType.I32:
            return int.from_bytes(raw, "little")
        if instr.valtype is ValType.I64:
            return int.from_bytes(raw, "little")
        if instr.valtype is ValType.F32:
            return struct.unpack("<f", raw)[0]
        return struct.unpack("<d", raw)[0]

    def _store(self, instance: WasmInstance, instr: StoreI, address: int, value: WasmValue) -> None:
        memory = self._memory(instance)
        if instr.width is not None:
            payload = (int(value) & ((1 << instr.width) - 1)).to_bytes(instr.width // 8, "little")
        elif instr.valtype is ValType.I32:
            payload = numerics.wrap(int(value), 32).to_bytes(4, "little")
        elif instr.valtype is ValType.I64:
            payload = numerics.wrap(int(value), 64).to_bytes(8, "little")
        elif instr.valtype is ValType.F32:
            payload = struct.pack("<f", float(value))
        else:
            payload = struct.pack("<d", float(value))
        memory.write(address, payload)
