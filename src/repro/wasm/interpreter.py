"""The Wasm execution facade and shared runtime state.

This module holds the runtime objects every execution engine shares —
:class:`LinearMemory`, :class:`WasmInstance`, :class:`WasmTrap`, value
normalization — plus :class:`WasmInterpreter`, the stable entry point the
rest of the repo (``opt.verify``, ``ffi.program``, ``lower``, examples,
tests) programs against.

The actual instruction execution lives in :mod:`repro.wasm.engine` behind
the :class:`~repro.wasm.engine.ExecutionEngine` abstraction:

* ``engine="flat"`` (default) — the pre-decoded flat-code VM;
* ``engine="tree"`` — the original recursive tree-walker.

``WasmInterpreter`` is a thin facade: it resolves an engine once in its
constructor and forwards ``instantiate``/``invoke``/``invoke_index`` and the
``steps``/``max_steps`` counters, so existing call sites keep working
unchanged while the engine stays swappable (also via the
``REPRO_WASM_ENGINE`` environment variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..core.semantics import numerics
from ..core.typing.errors import WasmError
from .ast import PAGE_SIZE, ValType, WasmModule


class WasmTrap(WasmError):
    """A WebAssembly trap."""


WasmValue = Union[int, float]
HostFunction = Callable[..., Sequence[WasmValue]]


def _normalize(valtype: ValType, value: WasmValue) -> WasmValue:
    """Normalize a host-supplied value to its canonical runtime form.

    Wasm values are bit patterns: an ``i32`` argument of ``-5`` denotes the
    same value as ``0xFFFFFFFB``.  Normalizing at the boundary (function
    arguments, host-call results, constant expressions) guarantees every
    value on the operand stack is in wrapped/canonical form — an invariant
    the optimizer's conversion-elimination passes rely on.
    """

    if valtype.is_integer:
        return numerics.wrap(int(value), valtype.bit_width)
    return numerics.float_canon(float(value), valtype.bit_width)


# The Wasm 1.0 hard limit: memory is indexed by u32 byte addresses, so it can
# never exceed 2**32 bytes = 65536 pages, declared maximum or not.
MAX_MEMORY_PAGES = (1 << 32) // PAGE_SIZE

_VIEW_HELD_MESSAGE = (
    "cannot resize memory while a zero-copy view from read() is held; "
    "release the view (or use read_bytes() for data that must survive grow)"
)


@dataclass
class LinearMemory:
    """A byte-addressed linear memory made of 64 KiB pages.

    Reads go through a cached :class:`memoryview` over the backing
    ``bytearray``, so :meth:`read` is zero-copy; writes are in-place slice
    assignments.  :meth:`grow` extends the backing store in place (object
    identity is preserved, so engines that bound ``memory.data`` locally stay
    valid) after releasing and re-creating the cached view.

    Callers must not hold a view returned by :meth:`read` across a
    :meth:`grow` or :meth:`reset` — resizing requires the buffer to be
    unexported, so either raises a :class:`BufferError` naming the hazard
    (and leaves the memory unchanged) while a view is outstanding.  Use
    :meth:`read_bytes` for data that must survive a resize.
    """

    pages: int = 1
    max_pages: Optional[int] = None
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.pages * PAGE_SIZE)
        elif not isinstance(self.data, bytearray):
            self.data = bytearray(self.data)
        self._view = memoryview(self.data)

    def size_pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``, returning the old size in pages.

        Per Wasm semantics the failure mode is a ``-1`` result, never a trap:
        a negative delta (an out-of-range u32 at the instruction level), a
        delta exceeding the declared ``max_pages``, or one exceeding the
        4 GiB / :data:`MAX_MEMORY_PAGES` hard limit all return ``-1`` and
        leave the memory unchanged.
        """

        old = self.size_pages()
        if delta_pages < 0:
            return -1
        new = old + delta_pages
        limit = MAX_MEMORY_PAGES if self.max_pages is None else min(self.max_pages, MAX_MEMORY_PAGES)
        if new > limit:
            return -1
        if delta_pages == 0:
            return old
        self._view.release()
        try:
            self.data.extend(bytes(delta_pages * PAGE_SIZE))
        except BufferError as exc:
            raise BufferError(_VIEW_HELD_MESSAGE) from exc
        finally:
            self._view = memoryview(self.data)
        return old

    def reset(self, image: bytes) -> None:
        """Restore the backing store to ``image`` in place.

        Identity-preserving like :meth:`grow` (bindings to ``data`` stay
        valid) and resizing: a memory grown past ``len(image)`` shrinks back.
        Used by the instance pool to recycle instances without
        re-instantiating.
        """

        self._view.release()
        try:
            self.data[:] = image
        except BufferError as exc:
            raise BufferError(_VIEW_HELD_MESSAGE) from exc
        finally:
            self._view = memoryview(self.data)

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > len(self.data):
            raise WasmTrap(
                f"out-of-bounds memory access at {address} (+{length}), memory is {len(self.data)} bytes"
            )

    def read(self, address: int, length: int) -> memoryview:
        """Bounds-checked zero-copy read of ``length`` bytes."""

        self._check(address, length)
        return self._view[address : address + length]

    def read_bytes(self, address: int, length: int) -> bytes:
        """Bounds-checked read returning an owned :class:`bytes` copy."""

        self._check(address, length)
        return bytes(self.data[address : address + length])

    def write(self, address: int, payload: bytes) -> None:
        self._check(address, len(payload))
        self.data[address : address + len(payload)] = payload


@dataclass
class WasmInstance:
    """A runtime instance of a Wasm module."""

    module: WasmModule
    funcs: list[object] = field(default_factory=list)  # WasmFunction | HostFunction
    globals: list[WasmValue] = field(default_factory=list)
    memory: Optional[LinearMemory] = None
    table: list[int] = field(default_factory=list)
    exports: dict[str, int] = field(default_factory=dict)
    # Flat-code cache filled by the flat VM at instantiation (or lazily on
    # first invoke when the instance was built by another engine), plus the
    # snapshot of ``funcs`` it was decoded from: the flat VM revalidates the
    # snapshot on every external invoke and re-decodes when a function slot
    # has been swapped (e.g. for an optimized body), so patched instances
    # never execute stale flat code.
    decoded: Optional[list] = field(default=None, repr=False, compare=False)
    decoded_funcs: Optional[list] = field(default=None, repr=False, compare=False)


class WasmInterpreter:
    """Instantiates and executes Wasm modules on a pluggable engine.

    ``engine`` accepts an engine name (``"flat"``, ``"tree"``), an
    :class:`~repro.wasm.engine.ExecutionEngine` instance, or ``None`` for the
    default (``$REPRO_WASM_ENGINE`` when set, else the flat VM).
    """

    def __init__(self, *, max_steps: Optional[int] = None, engine=None) -> None:
        from .engine import create_engine

        self.engine = create_engine(engine, max_steps=max_steps)

    @property
    def engine_name(self) -> str:
        return self.engine.name

    @property
    def max_steps(self) -> Optional[int]:
        return self.engine.max_steps

    @max_steps.setter
    def max_steps(self, value: Optional[int]) -> None:
        self.engine.max_steps = value

    @property
    def steps(self) -> int:
        return self.engine.steps

    @steps.setter
    def steps(self, value: int) -> None:
        self.engine.steps = value

    # -- delegation --------------------------------------------------------

    def instantiate(
        self,
        module: WasmModule,
        host_imports: Optional[dict[tuple[str, str], HostFunction]] = None,
    ) -> WasmInstance:
        return self.engine.instantiate(module, host_imports)

    def invoke(self, instance: WasmInstance, name: str, args: Sequence[WasmValue] = ()) -> list[WasmValue]:
        return self.engine.invoke(instance, name, args)

    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        return self.engine.invoke_index(instance, index, args)

    def _eval_const_expr(self, body, instance: WasmInstance) -> WasmValue:
        return self.engine._eval_const_expr(body, instance)
