"""The compiled execution tier: flat code translated to Python source.

The flat VM (:mod:`repro.wasm.engine`) already removed the tree walker's
re-discovery of structure, but every step still pays a dispatch-loop
iteration, a handler lookup and a step-budget comparison.  This module is
the next tier — the standard template-compilation move: decoded
:class:`~repro.wasm.decode.FlatFunction` code is translated *once per
module* into Python source (one Python function per Wasm function) and
``exec``'d, so the CPython bytecode interpreter becomes the dispatch loop.

Translation strategy:

* pc-addressed control flow is re-nested into the ``block``/``loop``/``if``
  tree the decoder flattened, then rendered as ``while True:`` regions —
  ``br`` to a block is ``break``, ``br`` to a loop is ``continue``, and
  multi-level branches set a ``_br`` counter unwound by a small cascade
  after each inner region;
* Wasm locals become Python locals ``l0..lN``;
* the operand stack becomes Python locals ``s0..sN`` wherever the static
  stack depth is provable (it always is for validated code); translation
  falls back to an explicit list per function otherwise;
* step accounting is batched per basic block: one ``steps += k`` plus one
  boundary comparison per chunk of straight-line code, placed exactly where
  the flat VM folds its budget/profiler trigger.  When the boundary falls
  inside a chunk, a twin "careful" arm re-counts that chunk one step at a
  time, so ``max_steps`` traps and :class:`~repro.obs.profile.StepProfiler`
  samples land on the identical step — and with the identical partial side
  effects — as the flat and tree engines.  Potentially-trapping operations
  always terminate their chunk, so a trap observes the exact step count.

:class:`CompiledPyEngine` (``"compiled"``) exposes the tier behind the
:class:`~repro.wasm.engine.ExecutionEngine` ABC.  Translation is memoized
per module object (like the decode memo) and adopted across structurally
identical modules by :class:`repro.runtime.cache.ModuleCache`'s
``translate`` stage, so workers and repeat runs skip it the same way they
skip decode.
"""

from __future__ import annotations

import struct
import weakref
from typing import ClassVar, Optional

from ..core.semantics import numerics
from .ast import PAGE_SIZE, WasmFunction, WasmImportedFunction, WasmModule
from .decode import (
    OP_BLOCK,
    OP_BR,
    OP_BR_IF,
    OP_BR_TABLE,
    OP_CALL,
    OP_CALL_INDIRECT,
    OP_CONST,
    OP_CVT,
    OP_DROP,
    OP_END,
    OP_F_BINOP,
    OP_F_RELOP,
    OP_GLOBAL_GET,
    OP_GLOBAL_SET,
    OP_I_BINOP,
    OP_I_RELOP,
    OP_IF,
    OP_LOAD_F,
    OP_LOAD_I,
    OP_LOCAL_GET,
    OP_LOCAL_SET,
    OP_LOCAL_TEE,
    OP_LOOP,
    OP_MEMORY_GROW,
    OP_MEMORY_SIZE,
    OP_NOP,
    OP_RETURN,
    OP_SELECT,
    OP_STORE_F,
    OP_STORE_I,
    OP_TESTOP,
    OP_UNOP,
    OP_UNREACHABLE,
    DecodedModule,
    FlatFunction,
    HostEntry,
    decode_instance,
    decode_module,
)
from .engine import ENGINES, ExecutionEngine, FlatVMEngine
from .interpreter import WasmInstance, WasmTrap, WasmValue, _normalize

_INF = float("inf")

# Integer binops inlined as expressions (operands are always normalized, so
# ``and``/``or``/``xor`` need no re-wrap and unsigned shifts stay in range).
_INLINE_IBINOP = {
    numerics.int_add: lambda a, b, w, m: f"({a} + {b}) & {m:#x}",
    numerics.int_sub: lambda a, b, w, m: f"({a} - {b}) & {m:#x}",
    numerics.int_mul: lambda a, b, w, m: f"({a} * {b}) & {m:#x}",
    numerics.int_and: lambda a, b, w, m: f"{a} & {b}",
    numerics.int_or: lambda a, b, w, m: f"{a} | {b}",
    numerics.int_xor: lambda a, b, w, m: f"{a} ^ {b}",
    numerics.int_shl: lambda a, b, w, m: f"({a} << ({b} % {w})) & {m:#x}",
    numerics.int_shr_u: lambda a, b, w, m: f"{a} >> ({b} % {w})",
}

# Binops that can raise NumericTrap (must terminate their step chunk).
_TRAPPING_IBINOPS = frozenset(
    (numerics.int_div_s, numerics.int_div_u, numerics.int_rem_s, numerics.int_rem_u)
)


class _RegisterModeUnsupported(Exception):
    """Static stack depth could not be proven; retranslate with a list."""


class _ConstPool:
    """Names for objects the generated source cannot spell as literals."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self.values: dict[str, object] = {}

    def add(self, obj, prefix: str = "k") -> str:
        key = id(obj)
        name = self._names.get(key)
        if name is None:
            name = f"_{prefix}{len(self._names)}"
            self._names[key] = name
            self.values[name] = obj
        return name


# ---------------------------------------------------------------------------
# Re-nesting: recover the construct tree the decoder flattened
# ---------------------------------------------------------------------------
#
# Construct nodes are tuples tagged with a *string* first element so they can
# never collide with instruction tuples (whose first element is an int).


def _find_end(code: list, pos: int) -> int:
    depth = 0
    while True:
        op = code[pos][0]
        if op == OP_BLOCK or op == OP_LOOP or op == OP_IF:
            depth += 1
        elif op == OP_END:
            if depth == 0:
                return pos
            depth -= 1
        pos += 1


def _parse_seq(code: list, pos: int, stop: int) -> list:
    nodes: list = []
    while pos < stop:
        ins = code[pos]
        op = ins[0]
        if op == OP_BLOCK:
            body = _parse_seq(code, pos + 1, ins[1] - 1)
            nodes.append(("block", ins[2], ins[3], body))
            pos = ins[1]
        elif op == OP_LOOP:
            end = _find_end(code, pos + 1)
            body = _parse_seq(code, pos + 1, end)
            nodes.append(("loop", ins[2], ins[3], body))
            pos = end + 1
        elif op == OP_IF:
            else_start, after_end = ins[1], ins[2]
            end = after_end - 1
            if else_start == end:
                then_nodes = _parse_seq(code, pos + 1, end)
                else_nodes: list = []
            else:
                then_nodes = _parse_seq(code, pos + 1, else_start - 1)
                else_nodes = _parse_seq(code, else_start, end)
            nodes.append(("if", ins[3], ins[4], then_nodes, else_nodes))
            pos = after_end
        else:
            nodes.append(ins)
            pos += 1
    return nodes


class _Label:
    __slots__ = ("kind", "br_arity", "end_arity", "base")

    def __init__(self, kind, br_arity, end_arity, base):
        self.kind = kind  # "block" | "loop" | "if"
        self.br_arity = br_arity
        self.end_arity = end_arity
        self.base = base  # int (register mode) or base-var name (list mode)


# ---------------------------------------------------------------------------
# The emitters
# ---------------------------------------------------------------------------


class _FunctionEmitter:
    """Shared emission machinery; stack access is specialized by subclass."""

    mode: ClassVar[str] = "abstract"

    def __init__(self, index: int, flat: FlatFunction, slots: list, module: WasmModule, pool: _ConstPool):
        self.index = index
        self.flat = flat
        self.slots = slots  # decoded table: FlatFunction | HostEntry | None
        self.module = module
        self.pool = pool
        self.lines: list[str] = []
        self.indent = 1
        self.chunk: list[list[str]] = []
        self.labels: list[_Label] = []
        self.has_memory = module.memory is not None
        code = flat.code
        self.need_br = any(
            (ins[0] in (OP_BR, OP_BR_IF) and ins[1] > 0)
            or (ins[0] == OP_BR_TABLE and (ins[2] > 0 or any(d > 0 for d in ins[1])))
            for ins in code
        )
        self.uses_globals = any(ins[0] in (OP_GLOBAL_GET, OP_GLOBAL_SET) for ins in code)
        self.uses_targets = any(
            ins[0] == OP_CALL_INDIRECT
            or (
                ins[0] == OP_CALL
                and ins[1] < len(slots)
                and isinstance(slots[ins[1]], FlatFunction)
            )
            for ins in code
        )
        self.uses_memory = self.has_memory and any(
            ins[0] in (OP_LOAD_I, OP_LOAD_F, OP_STORE_I, OP_STORE_F, OP_MEMORY_SIZE, OP_MEMORY_GROW)
            for ins in code
        )
        self.fname_ref = pool.add(flat.name, "nm") if flat.name is not None else "None"

    # -- low-level writing -------------------------------------------------

    def write(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def step(self, lines: list[str]) -> None:
        """Append one counted instruction's code to the current chunk."""

        self.chunk.append(lines)

    def flush(self) -> None:
        chunk = self.chunk
        if not chunk:
            return
        self.chunk = []
        count = len(chunk)
        write = self.write
        if count == 1:
            write("steps += 1")
            write("if steps >= boundary:")
            write(f"    boundary = eng._on_boundary(steps, {self.fname_ref})")
            for line in chunk[0]:
                write(line)
            return
        write(f"steps += {count}")
        write("if steps < boundary:")
        body = [line for lines in chunk for line in lines]
        if body:
            for line in body:
                write("    " + line)
        else:
            write("    pass")
        write("else:")
        write(f"    steps -= {count}")
        for lines in chunk:
            write("    steps += 1")
            write("    if steps >= boundary:")
            write(f"        boundary = eng._on_boundary(steps, {self.fname_ref})")
            for line in lines:
                write("    " + line)

    # -- value normalization ------------------------------------------------

    def norm_expr(self, valtype, expr: str) -> str:
        """Python expression normalizing ``expr`` exactly like ``_normalize``."""

        if valtype.is_integer:
            return f"int({expr}) & {(1 << valtype.bit_width) - 1:#x}"
        if valtype.bit_width == 32:
            return f"{self.pool.add(numerics.float_canon, 'fn')}(float({expr}), 32)"
        return f"float({expr})"

    # -- host/defined call targets ------------------------------------------

    def host_functype(self, findex: int):
        slot = self.slots[findex]
        if isinstance(slot, HostEntry):
            return slot.functype
        declared = self.module.functions[findex] if findex < len(self.module.functions) else None
        return declared.functype if isinstance(declared, WasmImportedFunction) else None


class _RegisterEmitter(_FunctionEmitter):
    """Operand stack as Python locals ``s0..sN`` (static depth proven)."""

    mode: ClassVar[str] = "register"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.depth = 0

    # -- stack primitives --------------------------------------------------

    def pop(self) -> tuple[str, list[str]]:
        if self.depth <= 0:
            raise _RegisterModeUnsupported("stack underflow")
        self.depth -= 1
        return f"s{self.depth}", []

    def push(self, expr: str) -> list[str]:
        line = f"s{self.depth} = {expr}"
        self.depth += 1
        return [line]

    def top(self) -> str:
        if self.depth <= 0:
            raise _RegisterModeUnsupported("stack underflow")
        return f"s{self.depth - 1}"

    def set_top(self, expr: str) -> str:
        return f"s{self.depth - 1} = {expr}"

    def discard(self) -> list[str]:
        if self.depth <= 0:
            raise _RegisterModeUnsupported("stack underflow")
        self.depth -= 1
        return []

    # -- label plumbing ----------------------------------------------------

    def make_label(self, kind: str, n_params: int, br_arity: int, end_arity: int) -> _Label:
        base = self.depth - n_params
        if base < 0:
            raise _RegisterModeUnsupported("negative label base")
        return _Label(kind, br_arity, end_arity, base)

    def branch_adjust(self, label: _Label) -> list[str]:
        arity, base = label.br_arity, label.base
        if self.depth < base + arity:
            raise _RegisterModeUnsupported("branch underflow")
        return [
            f"s{base + j} = s{self.depth - arity + j}"
            for j in range(arity)
            if base + j != self.depth - arity + j
        ]

    def end_adjust(self, label: _Label) -> list[str]:
        if self.depth != label.base + label.end_arity:
            raise _RegisterModeUnsupported("fallthrough depth mismatch")
        return []

    def return_lines(self) -> list[str]:
        nres = self.flat.n_results
        if self.depth < nres:
            raise _RegisterModeUnsupported("return underflow")
        values = ", ".join(f"s{self.depth - nres + j}" for j in range(nres))
        return [f"return (steps, {values})" if nres else "return (steps,)"]

    def call_args(self, n_params: int) -> tuple[str, list[str]]:
        if self.depth < n_params:
            raise _RegisterModeUnsupported("call underflow")
        args = ", ".join(f"s{self.depth - n_params + j}" for j in range(n_params))
        self.depth -= n_params
        return args, []

    def defined_call_results(self, n_results: int) -> list[str]:
        base = self.depth
        if n_results == 0:
            lines = ["steps = _r[0]"]
        else:
            targets = ", ".join(f"s{base + j}" for j in range(n_results))
            lines = [f"steps, {targets} = _r"]
        self.depth += n_results
        return lines

    def host_call_results(self, functype) -> list[str]:
        lines = ["_r = list(_r) if _r is not None else []"]
        for j, valtype in enumerate(functype.results):
            lines.append(f"s{self.depth} = {self.norm_expr(valtype, f'_r[{j}]')}")
            self.depth += 1
        return lines

    def prologue(self) -> list[str]:
        return []


class _ListEmitter(_FunctionEmitter):
    """Operand stack as an explicit list ``st`` (the robust fallback)."""

    mode: ClassVar[str] = "list"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._tmp = 0

    def _fresh(self) -> str:
        name = f"_p{self._tmp % 4}"
        self._tmp += 1
        return name

    def pop(self) -> tuple[str, list[str]]:
        name = self._fresh()
        return name, [f"{name} = st.pop()"]

    def push(self, expr: str) -> list[str]:
        return [f"st.append({expr})"]

    def top(self) -> str:
        return "st[-1]"

    def set_top(self, expr: str) -> str:
        return f"st[-1] = {expr}"

    def discard(self) -> list[str]:
        return ["del st[-1]"]

    def make_label(self, kind: str, n_params: int, br_arity: int, end_arity: int) -> _Label:
        base = f"_b{len(self.labels)}"
        self.write(f"{base} = len(st) - {n_params}")
        return _Label(kind, br_arity, end_arity, base)

    def branch_adjust(self, label: _Label) -> list[str]:
        arity, base = label.br_arity, label.base
        if arity:
            return [
                f"if len(st) != {base} + {arity}:",
                f"    st[{base}:] = st[len(st) - {arity}:]",
            ]
        return [f"del st[{base}:]"]

    def end_adjust(self, label: _Label) -> list[str]:
        arity, base = label.end_arity, label.base
        if arity:
            return [
                f"if len(st) != {base} + {arity}:",
                f"    st[{base}:] = st[len(st) - {arity}:]",
            ]
        return [f"del st[{base}:]"]

    def return_lines(self) -> list[str]:
        nres = self.flat.n_results
        if nres:
            return [f"return (steps, *st[len(st) - {nres}:])"]
        return ["return (steps,)"]

    def call_args(self, n_params: int) -> tuple[str, list[str]]:
        if n_params == 0:
            return "", []
        return "*_a", [f"_a = st[len(st) - {n_params}:]", f"del st[len(st) - {n_params}:]"]

    def defined_call_results(self, n_results: int) -> list[str]:
        return ["steps = _r[0]", "st.extend(_r[1:])"]

    def host_call_results(self, functype) -> list[str]:
        nz = self.pool.add(_normalize, "fn")
        types = self.pool.add(functype.results, "t")
        return [
            "_r = list(_r) if _r is not None else []",
            f"st.extend({nz}(_vt, _v) for _vt, _v in zip({types}, _r))",
        ]

    def prologue(self) -> list[str]:
        return ["st = []"]


# ---------------------------------------------------------------------------
# Leaf and structure translation (mode-independent, built on the primitives)
# ---------------------------------------------------------------------------


def _emit_body(em: _FunctionEmitter, nodes: list) -> bool:
    """Emit a node sequence; returns True when control provably left it."""

    for position, node in enumerate(nodes):
        if isinstance(node[0], str):
            em.step([])  # the construct header costs one step
            em.flush()
            _emit_construct(em, node)
            continue
        if _emit_leaf(em, node):
            # Unconditional transfer: the rest of this body is dead code the
            # flat VM also never reaches (its pc has left the region).
            em.flush()
            return True
    em.flush()
    return False


def _emit_construct(em: _FunctionEmitter, node) -> None:
    kind = node[0]
    if kind == "if":
        _, arity, n_params, then_nodes, else_nodes = node
        cond, lines = em.pop()
        for line in lines:
            em.write(line)
        label = em.make_label("if", n_params, arity, arity)
        entry_depth = getattr(em, "depth", None)
        em.write("while True:")
        em.indent += 1
        em.write(f"if {cond}:")
        em.indent += 1
        em.labels.append(label)
        if not _emit_body(em, then_nodes):
            for line in em.end_adjust(label):
                em.write(line)
            em.write("break")
        em.indent -= 1
        if entry_depth is not None:
            em.depth = entry_depth
        if not _emit_body(em, else_nodes):
            for line in em.end_adjust(label):
                em.write(line)
            em.write("break")
        em.labels.pop()
        em.indent -= 1
    else:
        if kind == "loop":
            _, n_params, n_results, body = node
            label = em.make_label("loop", n_params, n_params, n_results)
        else:
            _, arity, n_params, body = node
            label = em.make_label("block", n_params, arity, arity)
        em.write("while True:")
        em.indent += 1
        em.labels.append(label)
        if not _emit_body(em, body):
            for line in em.end_adjust(label):
                em.write(line)
            em.write("break")
        em.labels.pop()
        em.indent -= 1
    if hasattr(em, "depth"):
        em.depth = (label.base if isinstance(label.base, int) else 0) + label.end_arity
    # Unwind multi-level branches that broke out of the inner region.
    if em.need_br and em.labels:
        parent = em.labels[-1]
        em.write("if _br:")
        em.write("    _br -= 1")
        if parent.kind == "loop":
            em.write("    if _br:")
            em.write("        break")
            em.write("    continue")
        else:
            em.write("    break")


def _branch_lines(em: _FunctionEmitter, depth: int) -> list[str]:
    """Adjust-stack-and-transfer code for a branch to ``depth``."""

    if depth >= len(em.labels):
        return [
            "eng.steps = steps",
            f'raise _WT("branch escaped function body (depth {depth - len(em.labels)})")',
        ]
    label = em.labels[len(em.labels) - 1 - depth]
    lines = em.branch_adjust(label)
    if depth == 0:
        lines.append("continue" if label.kind == "loop" else "break")
    else:
        lines.append(f"_br = {depth}")
        lines.append("break")
    return lines


def _emit_leaf(em: _FunctionEmitter, ins: tuple) -> bool:
    """Emit one flat instruction; returns True for unconditional transfers."""

    op = ins[0]
    pool = em.pool

    if op == OP_LOCAL_GET:
        em.step(em.push(f"l{ins[1]}"))
    elif op == OP_LOCAL_SET:
        value, lines = em.pop()
        em.step(lines + [f"l{ins[1]} = {value}"])
    elif op == OP_LOCAL_TEE:
        em.step([f"l{ins[1]} = {em.top()}"])
    elif op == OP_CONST:
        value = ins[1]
        em.step(em.push(repr(value) if isinstance(value, int) else pool.add(value, "c")))
    elif op == OP_I_BINOP:
        fn, width = ins[1], ins[2]
        rhs, lines = em.pop()
        inline = _INLINE_IBINOP.get(fn)
        if inline is not None:
            em.step(lines + [em.set_top(inline(em.top(), rhs, width, (1 << width) - 1))])
        elif fn in _TRAPPING_IBINOPS:
            fn_ref = pool.add(fn, "fn")
            assign = em.set_top(f"{fn_ref}({em.top()}, {rhs}, {width})")
            em.step(lines + [
                "try:",
                "    " + assign,
                "except _NT as exc:",
                "    eng.steps = steps",
                "    raise _WT(str(exc)) from exc",
            ])
            em.flush()
        else:
            em.step(lines + [em.set_top(f"{pool.add(fn, 'fn')}({em.top()}, {rhs}, {width})")])
    elif op == OP_F_BINOP:
        rhs, lines = em.pop()
        fbin = pool.add(numerics.float_binop, "fn")
        em.step(lines + [em.set_top(f"{fbin}({ins[1]!r}, {em.top()}, {rhs}, {ins[2]})")])
    elif op == OP_I_RELOP:
        base, signed, width = ins[1], ins[2], ins[3]
        rhs, lines = em.pop()
        lhs = em.top()
        if base == "eq":
            expr = f"1 if {lhs} == {rhs} else 0"
        elif base == "ne":
            expr = f"1 if {lhs} != {rhs} else 0"
        elif not signed:
            symbol = {"lt": "<", "gt": ">", "le": "<=", "ge": ">="}[base]
            expr = f"1 if {lhs} {symbol} {rhs} else 0"
        else:
            expr = f"{pool.add(numerics.int_relop, 'fn')}({base!r}, {lhs}, {rhs}, {width}, True)"
        em.step(lines + [em.set_top(expr)])
    elif op == OP_F_RELOP:
        rhs, lines = em.pop()
        frel = pool.add(numerics.float_relop, "fn")
        em.step(lines + [em.set_top(f"{frel}({ins[1]!r}, {em.top()}, {rhs})")])
    elif op == OP_TESTOP:
        em.step([em.set_top(f"1 if {em.top()} == 0 else 0")])
    elif op == OP_UNOP:
        em.step([em.set_top(f"{pool.add(ins[1], 'fn')}({em.top()})")])
    elif op == OP_CVT:
        cvt_ref = pool.add(ins[1], "fn")
        assign = em.set_top(f"{cvt_ref}({em.top()})")
        em.step([
            "try:",
            "    " + assign,
            "except _NT as exc:",
            "    eng.steps = steps",
            "    raise _WT(str(exc)) from exc",
        ])
        em.flush()
    elif op == OP_DROP:
        em.step(em.discard())
    elif op == OP_SELECT:
        cond, lines1 = em.pop()
        second, lines2 = em.pop()
        em.step(lines1 + lines2 + [f"if not {cond}:", f"    {em.set_top(second)}"])
    elif op == OP_NOP:
        em.step([])
    elif op == OP_UNREACHABLE:
        em.step(["eng.steps = steps", 'raise _WT("unreachable executed")'])
        return True
    elif op == OP_GLOBAL_GET:
        em.step(em.push(f"gl[{ins[1]}]"))
    elif op == OP_GLOBAL_SET:
        value, lines = em.pop()
        em.step(lines + [f"gl[{ins[1]}] = {value}"])
    elif op in (OP_LOAD_I, OP_LOAD_F, OP_STORE_I, OP_STORE_F, OP_MEMORY_SIZE, OP_MEMORY_GROW):
        return _emit_memory_leaf(em, ins)
    elif op == OP_BR:
        em.step(_branch_lines(em, ins[1]))
        return True
    elif op == OP_BR_IF:
        cond, lines = em.pop()
        taken = _branch_lines(em, ins[1])
        em.step(lines + [f"if {cond}:"] + ["    " + line for line in taken])
        # A taken branch leaves mid-chunk; flush so no later instruction is
        # pre-counted in the fast arm when the exit fires.
        em.flush()
    elif op == OP_BR_TABLE:
        depths, default = ins[1], ins[2]
        index, lines = em.pop()
        if depths:
            depth_snapshot = getattr(em, "depth", None)
            for case, depth in enumerate(depths):
                lines.append(f"{'if' if case == 0 else 'elif'} {index} == {case}:")
                lines.extend("    " + line for line in _branch_lines(em, depth))
                if depth_snapshot is not None:
                    em.depth = depth_snapshot
            lines.append("else:")
            lines.extend("    " + line for line in _branch_lines(em, default))
        else:
            lines.extend(_branch_lines(em, default))
        em.step(lines)
        return True
    elif op == OP_RETURN:
        em.step(em.return_lines())
        return True
    elif op == OP_CALL:
        _emit_call(em, ins[1], expected=None)
    elif op == OP_CALL_INDIRECT:
        _emit_call_indirect(em, ins[1])
    else:  # pragma: no cover - decoder emits no other leaves
        raise _RegisterModeUnsupported(f"unknown opcode {op}")
    return False


def _oob_lines(em: _FunctionEmitter, nbytes: int) -> list[str]:
    return [
        f"if _a < 0 or _a + {nbytes} > len(_md):",
        "    eng.steps = steps",
        "    raise _WT(f\"out-of-bounds memory access at {_a} "
        f"(+{nbytes})" + ', memory is {len(_md)} bytes")',
    ]


def _emit_memory_leaf(em: _FunctionEmitter, ins: tuple) -> bool:
    op = ins[0]
    if not em.has_memory:
        em.step(["eng.steps = steps", 'raise _WT("module has no memory")'])
        return True
    pool = em.pool
    if op == OP_MEMORY_SIZE:
        em.step(em.push(f"len(_md) // {PAGE_SIZE}"))
        return False
    if op == OP_MEMORY_GROW:
        grow = em.set_top(f"rt.memory.grow({em.top()}) & 0xffffffff")
        em.step([grow])
        return False
    offset, fmt_or_nbytes = ins[1], ins[2]
    if op == OP_LOAD_I:
        nbytes, signed_width, wrap_width = ins[2], ins[3], ins[4]
        lines = [f"_a = {em.top()} + {offset}"] + _oob_lines(em, nbytes)
        lines.append(em.set_top(f'_fb(_md[_a:_a + {nbytes}], "little")'))
        if signed_width:
            tsg = pool.add(numerics.to_signed, "fn")
            lines.append(em.set_top(f"{tsg}({em.top()}, {signed_width}) & {(1 << wrap_width) - 1:#x}"))
        em.step(lines)
    elif op == OP_LOAD_F:
        fmt, nbytes = ins[2], ins[3]
        lines = [f"_a = {em.top()} + {offset}"] + _oob_lines(em, nbytes)
        lines.append(em.set_top(f"_upf({fmt!r}, _md, _a)[0]"))
        em.step(lines)
    elif op == OP_STORE_I:
        nbytes, mask = ins[2], ins[3]
        value, lines1 = em.pop()
        address, lines2 = em.pop()
        lines = lines1 + lines2 + [f"_a = {address} + {offset}"] + _oob_lines(em, nbytes)
        lines.append(f'_md[_a:_a + {nbytes}] = ({value} & {mask:#x}).to_bytes({nbytes}, "little")')
        em.step(lines)
    else:  # OP_STORE_F
        fmt, nbytes = ins[2], ins[3]
        value, lines1 = em.pop()
        address, lines2 = em.pop()
        lines = lines1 + lines2 + [f"_a = {address} + {offset}"] + _oob_lines(em, nbytes)
        lines.append(f"_pki({fmt!r}, _md, _a, float({value}))")
        em.step(lines)
    em.flush()
    return False


def _host_call_lines(em: _FunctionEmitter, entry_expr: str, functype) -> list[str]:
    if functype is None:
        return [
            "eng.steps = steps",
            'raise _WT("direct call to a host function without a declared import type")',
        ]
    args, arg_lines = em.call_args(len(functype.params))
    lines = arg_lines + [
        f"_h = {entry_expr}",
        "eng.steps = steps",
        "try:",
        f"    _r = _h.fn({args})",
        "finally:",
        "    steps = eng.steps",
        "boundary = eng._current_boundary()",
    ]
    lines.extend(em.host_call_results(functype))
    return lines


def _emit_call(em: _FunctionEmitter, findex: int, expected) -> None:
    callee = em.slots[findex] if findex < len(em.slots) else None
    if isinstance(callee, FlatFunction):
        # Direct calls dispatch through the runtime's target table rather
        # than naming the sibling function: the generated chunk then has no
        # free reference to the rest of the module, so per-function chunks
        # can be cached and recombined across module versions.
        args, arg_lines = em.call_args(callee.n_params)
        call = f"_tg[{findex}](rt, steps, boundary{', ' + args if args else ''})"
        if args == "*_a":
            call = f"_tg[{findex}](rt, steps, boundary, *_a)"
        lines = arg_lines + [f"_r = {call}"]
        lines.extend(em.defined_call_results(callee.n_results))
        em.step(lines)
    else:
        em.step(_host_call_lines(em, f"rt.decoded[{findex}]", em.host_functype(findex)))
    em.flush()


def _emit_call_indirect(em: _FunctionEmitter, expected) -> None:
    pool = em.pool
    expected_ref = pool.add(expected, "t")
    index, lines = em.pop()
    lines += [
        f"if {index} < 0 or {index} >= len(rt.table):",
        "    eng.steps = steps",
        '    raise _WT(f"call_indirect index {' + index + '} out of table bounds")',
        f"_fx = rt.table[{index}]",
        "_ce = rt.decoded[_fx]",
        "if type(_ce) is _FF:",
        f"    if _ce.functype != {expected_ref}:",
        "        eng.steps = steps",
        '        raise _WT("indirect call type mismatch")',
    ]
    depth_snapshot = getattr(em, "depth", None)
    args, arg_lines = em.call_args(len(expected.params))
    call = f"_tg[_fx](rt, steps, boundary{', ' + args if args else ''})"
    if args == "*_a":
        call = "_tg[_fx](rt, steps, boundary, *_a)"
    lines.extend("    " + line for line in arg_lines)
    lines.append(f"    _r = {call}")
    lines.extend("    " + line for line in em.defined_call_results(len(expected.results)))
    result_depth = getattr(em, "depth", None)
    if depth_snapshot is not None:
        em.depth = depth_snapshot
    lines.append("else:")
    lines.extend("    " + line for line in _host_call_lines(em, "_ce", expected))
    if result_depth is not None:
        em.depth = result_depth
    em.step(lines)
    em.flush()


# ---------------------------------------------------------------------------
# Whole-function / whole-module translation
# ---------------------------------------------------------------------------


def _emit_function(index: int, flat: FlatFunction, slots: list, module: WasmModule,
                   pool: _ConstPool, force_list: bool = False) -> tuple[list[str], str]:
    nodes = _parse_seq(flat.code, 0, len(flat.code))
    for emitter_cls in ((_ListEmitter,) if force_list else (_RegisterEmitter, _ListEmitter)):
        em = emitter_cls(index, flat, slots, module, pool)
        try:
            # Locals are defaulted parameters: internal calls pass exactly
            # ``n_params`` arguments so the defaults apply, while external
            # invocations with surplus arguments fill local slots directly —
            # the same frame shape the flat VM builds (``args + inits``).
            slots_sig = [f"l{i}" for i in range(flat.n_params)]
            slots_sig += [
                f"l{flat.n_params + j}={init!r}" for j, init in enumerate(flat.local_inits)
            ]
            head = ", ".join(slots_sig)
            em.lines.append(f"def _f{index}(rt, steps, boundary{', ' + head if head else ''}):")
            em.write("eng = rt.engine")
            if em.uses_targets:
                em.write("_tg = rt.targets")
            if em.uses_globals:
                em.write("gl = rt.globals")
            if em.uses_memory:
                em.write("_md = rt.memory.data")
            for i, valtype in enumerate(flat.functype.params):
                em.write(f"l{i} = {em.norm_expr(valtype, f'l{i}')}")
            if em.need_br:
                em.write("_br = 0")
            for line in em.prologue():
                em.write(line)
            if not _emit_body(em, nodes):
                for line in em.return_lines():
                    em.write(line)
            return em.lines, em.mode
        except _RegisterModeUnsupported:
            continue
    raise AssertionError("list-mode translation cannot fail")  # pragma: no cover


class ModuleTranslation:
    """The per-module translation artifact: source plus exec'd callables.

    ``functions[i]`` is the compiled Python callable for defined slot ``i``
    and ``None`` at host slots; ``modes[i]`` records whether the register or
    list stack layout was used.  The artifact is instance-independent (all
    instance state flows through the per-instance runtime object), so it is
    shared across every instance of the module — and, via the module cache's
    content keyspace, across structurally identical module objects.
    """

    __slots__ = ("source", "functions", "modes", "function_count")

    def __init__(self, source: str, functions: tuple, modes: tuple):
        self.source = source
        self.functions = functions
        self.modes = modes
        self.function_count = sum(1 for fn in functions if fn is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleTranslation({self.function_count} functions, {len(self.source)} chars)"


def _base_pool_values() -> dict[str, object]:
    return dict(
        _WT=WasmTrap,
        _NT=numerics.NumericTrap,
        _FF=FlatFunction,
        _fb=int.from_bytes,
        _upf=struct.unpack_from,
        _pki=struct.pack_into,
    )


def emit_function_chunk(
    index: int, slots: list, module: WasmModule, *, force_list: bool = False
) -> tuple[str, str, dict[str, object]]:
    """Emit one function's translation unit source without exec'ing it.

    Returns ``(chunk, mode, pool_values)`` — the generated source, the
    calling-convention mode, and the const-pool namespace the chunk must be
    exec'd against.  Split out of :func:`_translate_units` so compile
    workers can do the expensive emission + ``compile()`` in a subprocess
    and ship the pieces back (``pool_values`` entries are picklable; the
    code object travels as a ``marshal`` blob).
    """

    pool = _ConstPool()
    pool.values.update(_base_pool_values())
    lines, mode = _emit_function(index, slots[index], slots, module, pool, force_list)
    return "\n".join(lines), mode, dict(pool.values)


def build_translation_unit(
    index: int,
    chunk: str,
    mode: str,
    pool_values: dict[str, object],
    *,
    module_name: str | None = None,
    code=None,
) -> tuple[str, str, object]:
    """Exec a chunk from :func:`emit_function_chunk` into a translate unit.

    ``code`` short-circuits the ``compile()`` step with a pre-compiled code
    object (e.g. unmarshalled from a compile worker); the exec itself is
    nearly free.  The returned ``(chunk, mode, callable)`` triple is the
    exact value ``_translate_units`` caches.
    """

    if code is None:
        code = compile(chunk, f"<pygen:{module_name or 'module'}:f{index}>", "exec")
    namespace = dict(pool_values)
    exec(code, namespace)
    return (chunk, mode, namespace[f"_f{index}"])


def translate_functions(slots: list, module: WasmModule, *, force_list: bool = False) -> ModuleTranslation:
    """Translate a decoded function table (``FlatFunction``/host per slot)."""

    pool = _ConstPool()
    pool.values.update(_base_pool_values())
    chunks: list[str] = []
    modes: list = []
    for index, slot in enumerate(slots):
        if isinstance(slot, FlatFunction):
            lines, mode = _emit_function(index, slot, slots, module, pool, force_list)
            chunks.append("\n".join(lines))
            modes.append(mode)
        else:
            modes.append(None)
    source = "\n\n".join(chunks)
    namespace = dict(pool.values)
    exec(compile(source, f"<pygen:{module.name or 'module'}>", "exec"), namespace)
    functions = tuple(
        namespace.get(f"_f{index}") if isinstance(slot, FlatFunction) else None
        for index, slot in enumerate(slots)
    )
    return ModuleTranslation(source, functions, tuple(modes))


def _translate_units(
    slots: list, module: WasmModule, unit_cache, *, force_list: bool = False
) -> ModuleTranslation:
    """Per-function translation: each defined slot becomes its own unit.

    Only reachable through :func:`translate_module`, where ``slots`` is the
    module's own decode — so ``slots[i]`` *is* the flat code of
    ``module.functions[i]`` and the (function digest, signature digest,
    index) unit key addresses the chunk exactly.  Each unit is emitted with
    a private const pool and exec'd into a private namespace; the generated
    code reads everything else (including direct-call targets) off the
    per-invoke runtime object, so a cached callable recombines into any
    module version whose key matches.
    """

    chunks: list[str] = []
    functions: list = []
    modes: list = []
    for index, slot in enumerate(slots):
        if not isinstance(slot, FlatFunction):
            functions.append(None)
            modes.append(None)
            continue
        key = unit_cache.translate_key(
            module.functions[index], module, index, force_list=force_list
        )
        unit = unit_cache.get("translate", key)
        if unit is None:
            chunk, mode, pool_values = emit_function_chunk(index, slots, module, force_list=force_list)
            unit = build_translation_unit(index, chunk, mode, pool_values, module_name=module.name)
            unit_cache.put("translate", key, unit)
        chunk, mode, compiled = unit
        chunks.append(chunk)
        functions.append(compiled)
        modes.append(mode)
    return ModuleTranslation("\n\n".join(chunks), tuple(functions), tuple(modes))


# Per-module translation memo, keyed like the decode memo: by id() with a
# weakref guard so id reuse after collection cannot alias.
_MODULE_TRANSLATE_CACHE: dict[int, tuple[weakref.ref, ModuleTranslation]] = {}


def _remember_translation(module: WasmModule, translation: ModuleTranslation) -> None:
    key = id(module)

    def _evict(ref, _key=key):
        cached = _MODULE_TRANSLATE_CACHE.get(_key)
        if cached is not None and cached[0] is ref:
            del _MODULE_TRANSLATE_CACHE[_key]

    _MODULE_TRANSLATE_CACHE[key] = (weakref.ref(module, _evict), translation)


def translate_module(module: WasmModule, *, unit_cache=None) -> ModuleTranslation:
    """Translate every defined function of ``module``, memoized per object.

    With a ``unit_cache`` (:class:`repro.compilepipe.FunctionUnitCache`),
    translation is assembled from per-function units so a new module version
    re-translates only the functions whose content actually changed.
    """

    entry = _MODULE_TRANSLATE_CACHE.get(id(module))
    if entry is not None and entry[0]() is module:
        return entry[1]
    slots = decode_module(module, unit_cache=unit_cache).flat
    if unit_cache is not None:
        translation = _translate_units(slots, module, unit_cache)
    else:
        translation = translate_functions(slots, module)
    _remember_translation(module, translation)
    return translation


def adopt_translation(module: WasmModule, translation: ModuleTranslation) -> None:
    """Seed the per-module memo with a translation produced for a
    structurally identical module (the content-addressed cache hit path)."""

    entry = _MODULE_TRANSLATE_CACHE.get(id(module))
    if entry is None or entry[0]() is not module:
        _remember_translation(module, translation)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class _Runtime:
    """Per-instance state the generated code reads (refreshed per invoke)."""

    __slots__ = ("engine", "globals", "memory", "table", "decoded", "targets")

    def __init__(self) -> None:
        self.engine = None
        self.globals = None
        self.memory = None
        self.table = None
        self.decoded = None
        self.targets = None


class _CompiledInstance:
    __slots__ = ("rt", "targets", "funcs_snapshot")

    def __init__(self, rt: _Runtime, targets: list, funcs_snapshot: list):
        self.rt = rt
        self.targets = targets
        self.funcs_snapshot = funcs_snapshot


def _matches_module_decode(decoded: list, shared: DecodedModule) -> bool:
    if len(decoded) != len(shared.flat):
        return False
    for entry, module_entry in zip(decoded, shared.flat):
        if module_entry is None:
            if not isinstance(entry, HostEntry):
                return False
        elif entry is not module_entry:
            return False
    return True


class CompiledPyEngine(ExecutionEngine):
    """Template-compiled engine: flat code exec'd as Python source.

    Semantics (results, traps, memory, globals, ``steps``) are bit-identical
    to the flat and tree engines — enforced by the three-way differential
    cross-check and the step-parity suites.  Translation happens once per
    module object (and is shared across content-identical modules via the
    module cache); patched instances are retranslated against a function
    snapshot exactly like the flat VM's decode cache.
    """

    name: ClassVar[str] = "compiled"

    #: Lazily-built flat VM twin for arity-mismatched entry invocations.
    _flat_twin: Optional[FlatVMEngine] = None

    def _prepare_instance(self, instance: WasmInstance) -> None:
        self._compile_instance(instance)

    # -- step boundary helpers (shared with the generated code) ------------

    def _current_boundary(self):
        limit = self.max_steps
        trap_at = limit + 1 if limit is not None else _INF
        profiler = self.profiler
        if profiler is None:
            return trap_at
        next_at = profiler.next_at
        return trap_at if trap_at < next_at else next_at

    def _on_boundary(self, steps: int, function_name):
        """Handle a batched step counter crossing the trap/sample boundary."""

        limit = self.max_steps
        if limit is not None and steps > limit:
            self.steps = steps
            raise WasmTrap("step budget exhausted")
        profiler = self.profiler
        if profiler is not None and steps >= profiler.next_at:
            profiler.record(function_name, steps)
        return self._current_boundary()

    # -- translation management --------------------------------------------

    def _compile_instance(self, instance: WasmInstance) -> _CompiledInstance:
        decoded = decode_instance(instance)
        shared = decode_module(instance.module)
        if _matches_module_decode(decoded, shared):
            translation = translate_module(instance.module)
        else:
            # Patched function table: translate this instance's decode fresh
            # (the module-level artifact would run stale code).
            translation = translate_functions(decoded, instance.module)
        rt = _Runtime()
        rt.decoded = decoded
        targets = list(translation.functions)
        rt.targets = targets
        compiled = _CompiledInstance(rt, targets, list(instance.funcs))
        instance.compiled_py = compiled
        # Keep the flat VM's decode cache coherent too: we just decoded.
        instance.decoded = decoded
        instance.decoded_funcs = list(instance.funcs)
        return compiled

    @staticmethod
    def _compiled_is_current(instance: WasmInstance, compiled: _CompiledInstance) -> bool:
        snapshot = compiled.funcs_snapshot
        funcs = instance.funcs
        if len(snapshot) != len(funcs):
            return False
        for cached, current in zip(snapshot, funcs):
            if cached is not current:
                return False
        return True

    # -- invocation ---------------------------------------------------------

    def invoke_index(self, instance: WasmInstance, index: int, args: list[WasmValue]) -> list[WasmValue]:
        target = instance.funcs[index]
        if callable(target) and not isinstance(target, WasmFunction):
            results = target(*args)
            return list(results) if results is not None else []
        compiled: Optional[_CompiledInstance] = getattr(instance, "compiled_py", None)
        if compiled is None or not self._compiled_is_current(instance, compiled):
            compiled = self._compile_instance(instance)
        flat = compiled.rt.decoded[index]
        if len(args) != flat.n_params:
            adapted = self._adapt_entry_args(flat, args)
            if adapted is None:
                return self._invoke_mismatched_arity(instance, index, args)
            args = adapted
        rt = compiled.rt
        rt.engine = self
        rt.globals = instance.globals
        rt.memory = instance.memory
        rt.table = instance.table
        result = compiled.targets[index](rt, self.steps, self._current_boundary(), *args)
        self.steps = result[0]
        return list(result[1:])

    @staticmethod
    def _adapt_entry_args(flat, args: list[WasmValue]) -> Optional[list[WasmValue]]:
        """Map a surplus-argument entry call onto the generated signature.

        The flat VM's entry frame is ``list(args)`` with the local inits
        appended, so surplus arguments occupy leading local slots and push
        the inits outward.  The generated functions take locals as defaulted
        parameters, so passing the surplus arguments through reproduces that
        frame exactly — provided every slot still covered by a default would
        receive the same init value the flat VM's shifted frame gives it.
        Returns the argument list to pass, or ``None`` when only the flat
        twin can reproduce the historical semantics (missing arguments, or
        an init shift that changes a slot's value/type)."""

        supplied, n_params = len(args), flat.n_params
        if supplied < n_params:
            return None
        inits = flat.local_inits
        total = n_params + len(inits)
        if supplied >= total:
            # Every readable slot is an argument; extras are unreachable.
            return args[:total]
        for position in range(supplied, total):
            lead, shifted = inits[position - n_params], inits[position - supplied]
            if type(lead) is not type(shifted) or lead != shifted:
                return None
        return args

    def _invoke_mismatched_arity(
        self, instance: WasmInstance, index: int, args: list[WasmValue]
    ) -> list[WasmValue]:
        """Entry invocations whose argument count disagrees with the
        function signature.  The historical engines build the entry frame as
        ``list(args) + local_inits``, so surplus arguments silently occupy
        local slots — semantics the fixed-signature generated code cannot
        express.  Validation guarantees exact arity for internal calls, so
        only external invocations land here; they run on a flat VM twin
        sharing this engine's step counter, budget and profiler, which keeps
        results, traps and ``steps`` bit-identical to the flat engine."""

        twin = self._flat_twin
        if twin is None:
            twin = self._flat_twin = FlatVMEngine()
        twin.max_steps = self.max_steps
        twin.profiler = self.profiler
        twin.steps = self.steps
        try:
            return twin.invoke_index(instance, index, args)
        finally:
            self.steps = twin.steps


ENGINES[CompiledPyEngine.name] = CompiledPyEngine
