"""Abstract syntax for the WebAssembly 1.0 (+ multi-value) substrate.

RichWasm is lowered to this language (paper §6).  The subset implemented here
is the one the lowering needs — and which the paper's compiler targets:
numeric instructions over ``i32``/``i64``/``f32``/``f64``, full structured
control flow, locals and globals, a single linear byte memory with sized
loads/stores, direct and indirect calls through a function table, and
multi-value blocks/functions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union


class ValType(enum.Enum):
    """Wasm value types."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_integer(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def bit_width(self) -> int:
        return 32 if self in (ValType.I32, ValType.F32) else 64

    @property
    def byte_width(self) -> int:
        return self.bit_width // 8


@dataclass(frozen=True)
class WasmFuncType:
    """A Wasm function type ``[params] -> [results]`` (multi-value allowed)."""

    params: tuple[ValType, ...]
    results: tuple[ValType, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        params = " ".join(str(p) for p in self.params)
        results = " ".join(str(r) for r in self.results)
        return f"(func ({params}) -> ({results}))"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """``t.const c``."""

    valtype: ValType
    value: Union[int, float]


@dataclass(frozen=True)
class Unop:
    """A unary numeric operator, e.g. ``i32.clz`` or ``f64.sqrt``."""

    valtype: ValType
    op: str


@dataclass(frozen=True)
class Binop:
    """A binary numeric operator, e.g. ``i32.add``."""

    valtype: ValType
    op: str


@dataclass(frozen=True)
class Testop:
    """``t.eqz``."""

    valtype: ValType
    op: str = "eqz"


@dataclass(frozen=True)
class Relop:
    """A comparison operator, e.g. ``i32.lt_s``."""

    valtype: ValType
    op: str


@dataclass(frozen=True)
class Cvtop:
    """A conversion, e.g. ``i64.extend_i32_u``."""

    target: ValType
    op: str
    source: ValType


@dataclass(frozen=True)
class WUnreachable:
    pass


@dataclass(frozen=True)
class WNop:
    pass


@dataclass(frozen=True)
class WDrop:
    pass


@dataclass(frozen=True)
class WSelect:
    pass


@dataclass(frozen=True)
class WBlock:
    blocktype: WasmFuncType
    body: tuple["WInstr", ...]


@dataclass(frozen=True)
class WLoop:
    blocktype: WasmFuncType
    body: tuple["WInstr", ...]


@dataclass(frozen=True)
class WIf:
    blocktype: WasmFuncType
    then_body: tuple["WInstr", ...]
    else_body: tuple["WInstr", ...] = ()


@dataclass(frozen=True)
class WBr:
    depth: int


@dataclass(frozen=True)
class WBrIf:
    depth: int


@dataclass(frozen=True)
class WBrTable:
    depths: tuple[int, ...]
    default: int


@dataclass(frozen=True)
class WReturn:
    pass


@dataclass(frozen=True)
class WCall:
    func_index: int


@dataclass(frozen=True)
class WCallIndirect:
    functype: WasmFuncType


@dataclass(frozen=True)
class LocalGet:
    index: int


@dataclass(frozen=True)
class LocalSet:
    index: int


@dataclass(frozen=True)
class LocalTee:
    index: int


@dataclass(frozen=True)
class GlobalGet:
    index: int


@dataclass(frozen=True)
class GlobalSet:
    index: int


@dataclass(frozen=True)
class Load:
    """``t.load`` / ``t.loadN_sx`` with a static offset."""

    valtype: ValType
    offset: int = 0
    width: Optional[int] = None  # 8, 16 or 32 for narrow loads
    signed: bool = False


@dataclass(frozen=True)
class StoreI:
    """``t.store`` / ``t.storeN`` with a static offset."""

    valtype: ValType
    offset: int = 0
    width: Optional[int] = None


@dataclass(frozen=True)
class MemorySize:
    pass


@dataclass(frozen=True)
class MemoryGrow:
    pass


WInstr = Union[
    Const,
    Unop,
    Binop,
    Testop,
    Relop,
    Cvtop,
    WUnreachable,
    WNop,
    WDrop,
    WSelect,
    WBlock,
    WLoop,
    WIf,
    WBr,
    WBrIf,
    WBrTable,
    WReturn,
    WCall,
    WCallIndirect,
    LocalGet,
    LocalSet,
    LocalTee,
    GlobalGet,
    GlobalSet,
    Load,
    StoreI,
    MemorySize,
    MemoryGrow,
]


# ---------------------------------------------------------------------------
# Module structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WasmFunction:
    """A defined Wasm function."""

    functype: WasmFuncType
    locals: tuple[ValType, ...]
    body: tuple[WInstr, ...]
    name: Optional[str] = None
    exports: tuple[str, ...] = ()


@dataclass(frozen=True)
class WasmImportedFunction:
    """A function imported from another module (or the host)."""

    functype: WasmFuncType
    module: str
    name: str
    exports: tuple[str, ...] = ()


WasmFunctionDecl = Union[WasmFunction, WasmImportedFunction]


@dataclass(frozen=True)
class WasmGlobal:
    valtype: ValType
    mutable: bool
    init: tuple[WInstr, ...]
    exports: tuple[str, ...] = ()
    name: Optional[str] = None


@dataclass(frozen=True)
class WasmMemory:
    """A linear memory: ``min_pages`` 64 KiB pages, optionally bounded."""

    min_pages: int = 1
    max_pages: Optional[int] = None
    exports: tuple[str, ...] = ()


@dataclass(frozen=True)
class WasmTable:
    """A function table initialized with the given function indices."""

    entries: tuple[int, ...] = ()
    exports: tuple[str, ...] = ()


@dataclass(frozen=True)
class WasmData:
    """A data segment written into memory at instantiation."""

    offset: int
    data: bytes


@dataclass(frozen=True)
class WasmModule:
    functions: tuple[WasmFunctionDecl, ...] = ()
    globals: tuple[WasmGlobal, ...] = ()
    memory: Optional[WasmMemory] = None
    table: WasmTable = field(default_factory=WasmTable)
    data: tuple[WasmData, ...] = ()
    start: Optional[int] = None
    name: Optional[str] = None

    def exported_functions(self) -> dict[str, int]:
        exports: dict[str, int] = {}
        for index, function in enumerate(self.functions):
            for export in function.exports:
                exports[export] = index
        return exports

    def function_count(self) -> int:
        return len(self.functions)

    def instruction_count(self) -> int:
        total = 0
        for function in self.functions:
            if isinstance(function, WasmFunction):
                total += function_instruction_count(function)
        return total


PAGE_SIZE = 65536


def count_instrs(body: Sequence[WInstr]) -> int:
    """Count instructions, descending into nested blocks."""

    total = 0
    for instr in body:
        total += 1
        if isinstance(instr, (WBlock, WLoop)):
            total += count_instrs(instr.body)
        elif isinstance(instr, WIf):
            total += count_instrs(instr.then_body) + count_instrs(instr.else_body)
    return total


def function_instruction_count(function: WasmFunction) -> int:
    """:func:`count_instrs` over a function body, cached on the instance.

    Lowering statistics, module instruction counts and the optimizer all
    re-count the same immutable bodies; with function-level caching a reused
    function would otherwise pay an O(body) walk on every recompile.
    """

    cached = function.__dict__.get("_instr_count")
    if cached is None:
        cached = count_instrs(function.body)
        function.__dict__["_instr_count"] = cached
    return cached
