"""The L3 linear type checker (paper §5, following [12]).

Unlike the ML checker, this one *does* enforce linearity at the source level:
every linear variable (anything that is not of an unrestricted type) must be
used exactly once, and unrestricted variables may be used any number of
times.  The checker threads a usage environment through the expression and
reports variables that are duplicated or silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.typing.errors import CompilationError
from .ast import (
    L3Expr,
    L3Function,
    L3Import,
    L3Module,
    L3Type,
    LBang,
    LBangI,
    LBinOp,
    LCall,
    LFree,
    LInt,
    LIntLit,
    LJoin,
    LLet,
    LLetBang,
    LLetPair,
    LMLRef,
    LNew,
    LOwned,
    LPair,
    LSplit,
    LSwap,
    LTensor,
    LUnit,
    LUnitV,
    LVar,
    is_unrestricted_type,
    type_size_bits,
)


class L3TypeError(CompilationError):
    """An L3 source program is ill-typed (including linearity violations)."""


@dataclass
class LinearEnv:
    """Variables in scope, with usage tracking for the linear ones."""

    types: dict[str, L3Type] = field(default_factory=dict)
    used: set[str] = field(default_factory=set)

    def bind(self, name: str, ty: L3Type) -> None:
        self.types[name] = ty

    def use(self, name: str) -> L3Type:
        if name not in self.types:
            raise L3TypeError(f"unbound variable {name!r}")
        ty = self.types[name]
        if not is_unrestricted_type(ty):
            if name in self.used:
                raise L3TypeError(f"linear variable {name!r} used more than once")
            self.used.add(name)
        return ty

    def check_consumed(self, name: str) -> None:
        ty = self.types.get(name)
        if ty is None:
            return
        if not is_unrestricted_type(ty) and name not in self.used:
            raise L3TypeError(f"linear variable {name!r} is never used (it would be dropped)")


@dataclass(frozen=True)
class FunSig:
    param_type: L3Type
    result_type: L3Type


def types_equal(lhs: L3Type, rhs: L3Type) -> bool:
    return lhs == rhs


class L3Checker:
    """Checks one module."""

    def __init__(self, module: L3Module):
        self.module = module
        self.signatures: dict[str, FunSig] = {}
        for imported in module.imports:
            self.signatures[imported.binding_name] = FunSig(imported.param_type, imported.result_type)
        for function in module.functions:
            self.signatures[function.name] = FunSig(function.param_type, function.result_type)

    def check(self) -> dict[str, FunSig]:
        for function in self.module.functions:
            env = LinearEnv()
            env.bind(function.param, function.param_type)
            result = self.check_expr(env, function.body)
            if not types_equal(result, function.result_type):
                raise L3TypeError(
                    f"function {function.name!r} declared to return {function.result_type},"
                    f" body has type {result}"
                )
            env.check_consumed(function.param)
        return self.signatures

    # -- expressions ------------------------------------------------------------

    def check_expr(self, env: LinearEnv, expr: L3Expr) -> L3Type:
        if isinstance(expr, LUnitV):
            return LUnit()
        if isinstance(expr, LIntLit):
            return LInt()
        if isinstance(expr, LVar):
            return env.use(expr.name)
        if isinstance(expr, LLet):
            bound = self.check_expr(env, expr.bound)
            env.bind(expr.name, bound)
            result = self.check_expr(env, expr.body)
            env.check_consumed(expr.name)
            return result
        if isinstance(expr, LBangI):
            inner = self.check_expr(env, expr.value)
            if not is_unrestricted_type(inner):
                raise L3TypeError(f"! applied to a linear value of type {inner}")
            return LBang(inner)
        if isinstance(expr, LLetBang):
            bound = self.check_expr(env, expr.bound)
            if not isinstance(bound, LBang):
                raise L3TypeError(f"let ! on a non-! value of type {bound}")
            env.bind(expr.name, bound.inner)
            result = self.check_expr(env, expr.body)
            return result
        if isinstance(expr, LPair):
            left = self.check_expr(env, expr.left)
            right = self.check_expr(env, expr.right)
            return LTensor(left, right)
        if isinstance(expr, LLetPair):
            bound = self.check_expr(env, expr.bound)
            if not isinstance(bound, LTensor):
                raise L3TypeError(f"let-pair on a non-pair of type {bound}")
            env.bind(expr.left_name, bound.left)
            env.bind(expr.right_name, bound.right)
            result = self.check_expr(env, expr.body)
            env.check_consumed(expr.left_name)
            env.check_consumed(expr.right_name)
            return result
        if isinstance(expr, LNew):
            content = self.check_expr(env, expr.value)
            return LOwned(content)
        if isinstance(expr, LFree):
            owned = self.check_expr(env, expr.owned)
            if not isinstance(owned, LOwned):
                raise L3TypeError(f"free of a non-owned value of type {owned}")
            return owned.content
        if isinstance(expr, LSwap):
            owned = self.check_expr(env, expr.owned)
            value = self.check_expr(env, expr.value)
            if not isinstance(owned, LOwned):
                raise L3TypeError(f"swap on a non-owned value of type {owned}")
            # Strong update: the cell now holds the new value's type; the old
            # content comes back paired with the new ownership.  Capabilities
            # track the size of the cell (§5), so the new value must occupy
            # the same slot size as the original allocation.
            if type_size_bits(value) != type_size_bits(owned.content):
                raise L3TypeError(
                    f"strong update changes the slot size: cell holds {owned.content}"
                    f" ({type_size_bits(owned.content)} bits), new value has type {value}"
                    f" ({type_size_bits(value)} bits)"
                )
            return LTensor(owned.content, LOwned(value))
        if isinstance(expr, LJoin):
            owned = self.check_expr(env, expr.owned)
            if not isinstance(owned, LOwned):
                raise L3TypeError(f"join of a non-owned value of type {owned}")
            return LMLRef(owned.content)
        if isinstance(expr, LSplit):
            ref = self.check_expr(env, expr.ref)
            if not isinstance(ref, LMLRef):
                raise L3TypeError(f"split of a non-reference value of type {ref}")
            return LOwned(ref.content)
        if isinstance(expr, LBinOp):
            left = self.check_expr(env, expr.left)
            right = self.check_expr(env, expr.right)
            if not isinstance(_strip_bang(left), LInt) or not isinstance(_strip_bang(right), LInt):
                raise L3TypeError(f"arithmetic on non-integers: {left} {expr.op} {right}")
            return LInt()
        if isinstance(expr, LCall):
            if expr.name not in self.signatures:
                raise L3TypeError(f"call of unknown function {expr.name!r}")
            signature = self.signatures[expr.name]
            arg = self.check_expr(env, expr.arg)
            if not types_equal(arg, signature.param_type):
                raise L3TypeError(
                    f"call of {expr.name!r}: argument has type {arg},"
                    f" function expects {signature.param_type}"
                )
            return signature.result_type
        raise L3TypeError(f"unknown expression {expr!r}")


def _strip_bang(ty: L3Type) -> L3Type:
    return ty.inner if isinstance(ty, LBang) else ty


def check_l3_module(module: L3Module) -> dict[str, FunSig]:
    """Type-check an L3 module, returning the function signatures."""

    return L3Checker(module).check()
