"""The L3 → RichWasm compiler (paper §5).

L3 is much lower level than ML, so compilation is a single code-generation
phase (no closure conversion: functions are top level).  The interesting
choices:

* ``Owned τ`` (``∃ρ. !Ptr ρ ⊗ Cap ρ τ``) is compiled *faithfully* as an
  existential location package over a pair of a linear read-write capability
  and an unrestricted pointer, so the RichWasm ``ref.split`` / ``ref.join`` /
  ``mem.pack`` machinery is exercised exactly as the paper describes;
* ``new`` allocates a single-field struct in the **linear** memory and splits
  the resulting reference into capability and pointer;
* ``free`` swaps the content out (strong update with ``unit``, which always
  fits), frees the cell, and returns the content;
* ``swap`` is a strong update through ``struct.swap``;
* the interop extension ``Ref τ`` (``MLRef``) is represented as the joined
  linear reference ``∃ρ.(ref rw ρ (struct (T,|T|)))^lin`` — exactly the type
  ML's ``(ref τ)lin`` linking type compiles to, which is what makes the
  ML/L3 FFI of Fig. 3 link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.syntax import (
    Call,
    Drop,
    Function,
    GetLocal,
    Import,
    ImportedFunction,
    Instr,
    IntBinop,
    IntRelop,
    LIN,
    MemPack,
    MemUnpack,
    Module,
    NumBinop,
    NumConst,
    NumRelop,
    NumType,
    Privilege,
    RefJoin,
    RefSplit,
    RefT,
    Return,
    SeqGroup,
    SeqUngroup,
    SetLocal,
    SizeConst,
    StructFree,
    StructHT,
    StructMalloc,
    StructSwap,
    Table,
    Type,
    UNR,
    UnitV,
    arrow,
    cap,
    exloc,
    funtype as make_funtype,
    i32,
    prod,
    ptr,
    unit,
)
from ..core.syntax.locations import LocVar
from ..core.syntax.types import CapT, ExLocT, ProdT, PtrT
from ..core.typing.errors import CompilationError
from ..core.typing.sizing import closed_size_of_type
from .._compat import UNSET as _UNSET, codegen_lowering as _codegen_lowering
from .ast import (
    L3Expr,
    L3Function,
    L3Module,
    L3Type,
    LBang,
    LBangI,
    LBinOp,
    LCall,
    LFree,
    LInt,
    LIntLit,
    LJoin,
    LLet,
    LLetBang,
    LLetPair,
    LMLRef,
    LNew,
    LOwned,
    LPair,
    LSplit,
    LSwap,
    LTensor,
    LUnit,
    LUnitV,
    LVar,
)
from .typecheck import FunSig, L3Checker, L3TypeError, LinearEnv, check_l3_module


# ---------------------------------------------------------------------------
# Type translation
# ---------------------------------------------------------------------------


def compile_type(l3type: L3Type) -> Type:
    """Translate an L3 type to its RichWasm representation."""

    if isinstance(l3type, LUnit):
        return unit()
    if isinstance(l3type, LInt):
        return i32()
    if isinstance(l3type, LBang):
        return compile_type(l3type.inner)
    if isinstance(l3type, LTensor):
        left = compile_type(l3type.left)
        right = compile_type(l3type.right)
        qual = LIN if (left.qual == LIN or right.qual == LIN) else UNR
        return prod([left, right], qual)
    if isinstance(l3type, LOwned):
        return owned_type(l3type.content)
    if isinstance(l3type, LMLRef):
        return mlref_type(l3type.content)
    raise CompilationError(f"cannot compile L3 type {l3type!r}")


def cell_heaptype(content: L3Type) -> StructHT:
    """The single-field struct heap type of an L3 cell holding ``content``."""

    compiled = compile_type(content)
    return StructHT(((compiled, closed_size_of_type(compiled)),))


def owned_type(content: L3Type) -> Type:
    """``∃ρ. ((cap rw ρ ψ)^lin ⊗ (ptr ρ)^unr)^lin`` — the type of ``new``'s result."""

    heaptype = cell_heaptype(content)
    pair = Type(
        ProdT((Type(CapT(Privilege.RW, LocVar(0), heaptype), LIN), Type(PtrT(LocVar(0)), UNR))),
        LIN,
    )
    return Type(ExLocT(pair), LIN)


def mlref_type(content: L3Type) -> Type:
    """``∃ρ.(ref rw ρ ψ)^lin`` — the joined, ML-compatible linear reference."""

    heaptype = cell_heaptype(content)
    return Type(ExLocT(Type(RefT(Privilege.RW, LocVar(0), heaptype), LIN)), LIN)


def is_linear(ty: Type) -> bool:
    return ty.qual == LIN


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


@dataclass
class _Builder:
    param_count: int
    locals_sizes: list = field(default_factory=list)

    def new_local(self, size_bits: int) -> int:
        index = self.param_count + len(self.locals_sizes)
        self.locals_sizes.append(SizeConst(max(size_bits, 32)))
        return index


@dataclass(frozen=True)
class _Local:
    index: int
    l3type: L3Type


class L3Compiler:
    """Compiles a linearity-checked L3 module to RichWasm."""

    def __init__(self, module: L3Module, signatures: dict[str, FunSig]):
        self.module = module
        self.signatures = signatures
        self.function_index: dict[str, int] = {}
        self.functions: list = []

    def compile(self) -> Module:
        for imported in self.module.imports:
            index = len(self.functions)
            funtype = make_funtype(
                [compile_type(imported.param_type)], [compile_type(imported.result_type)]
            )
            self.functions.append(
                ImportedFunction(funtype, Import(imported.module, imported.name), (), imported.binding_name)
            )
            self.function_index[imported.binding_name] = index
        for function in self.module.functions:
            self.function_index[function.name] = len(self.functions)
            self.functions.append(None)
        for function in self.module.functions:
            self.functions[self.function_index[function.name]] = self._compile_function(function)
        return Module(
            functions=tuple(self.functions),
            globals=(),
            table=Table(),
            name=self.module.name,
        )

    def _compile_function(self, function: L3Function) -> Function:
        param_type = compile_type(function.param_type)
        result_type = compile_type(function.result_type)
        builder = _Builder(param_count=1)
        env = {function.param: _Local(0, function.param_type)}
        body, _ = self.compile_expr(env, function.body, builder)
        return Function(
            funtype=make_funtype([param_type], [result_type]),
            locals_sizes=tuple(builder.locals_sizes),
            body=tuple(body) + (Return(),),
            exports=(function.name,) if function.export else (),
            name=function.name,
        )

    # -- type inference helper (re-runs the source checker on subexpressions) ----

    def _infer(self, env: dict[str, _Local], expr: L3Expr) -> L3Type:
        checker = L3Checker(self.module)
        linear_env = LinearEnv()
        for name, binding in env.items():
            linear_env.bind(name, binding.l3type)
        return checker.check_expr(linear_env, expr)

    # -- expressions --------------------------------------------------------------

    def compile_expr(
        self, env: dict[str, _Local], expr: L3Expr, builder: _Builder
    ) -> tuple[list[Instr], Type]:
        if isinstance(expr, LUnitV):
            return [UnitV()], unit()
        if isinstance(expr, LIntLit):
            return [NumConst(NumType.I32, expr.value)], i32()
        if isinstance(expr, LVar):
            binding = env[expr.name]
            compiled = compile_type(binding.l3type)
            qual = LIN if is_linear(compiled) else UNR
            return [GetLocal(binding.index, qual)], compiled
        if isinstance(expr, LLet):
            bound_l3 = self._infer(env, expr.bound)
            bound, bound_type = self.compile_expr(env, expr.bound, builder)
            local = builder.new_local(_bits(bound_type))
            inner = dict(env)
            inner[expr.name] = _Local(local, bound_l3)
            body, body_type = self.compile_expr(inner, expr.body, builder)
            return [*bound, SetLocal(local), *body], body_type
        if isinstance(expr, LBangI):
            return self.compile_expr(env, expr.value, builder)
        if isinstance(expr, LLetBang):
            bound_l3 = self._infer(env, expr.bound)
            if not isinstance(bound_l3, LBang):
                raise L3TypeError(f"let ! of non-! value {bound_l3}")
            bound, bound_type = self.compile_expr(env, expr.bound, builder)
            local = builder.new_local(_bits(bound_type))
            inner = dict(env)
            inner[expr.name] = _Local(local, bound_l3.inner)
            body, body_type = self.compile_expr(inner, expr.body, builder)
            return [*bound, SetLocal(local), *body], body_type
        if isinstance(expr, LPair):
            left, left_type = self.compile_expr(env, expr.left, builder)
            right, right_type = self.compile_expr(env, expr.right, builder)
            qual = LIN if (is_linear(left_type) or is_linear(right_type)) else UNR
            return [*left, *right, SeqGroup(2, qual)], prod([left_type, right_type], qual)
        if isinstance(expr, LLetPair):
            bound_l3 = self._infer(env, expr.bound)
            if not isinstance(bound_l3, LTensor):
                raise L3TypeError(f"let-pair of non-pair {bound_l3}")
            bound, bound_type = self.compile_expr(env, expr.bound, builder)
            left_type = compile_type(bound_l3.left)
            right_type = compile_type(bound_l3.right)
            left_local = builder.new_local(_bits(left_type))
            right_local = builder.new_local(_bits(right_type))
            inner = dict(env)
            inner[expr.left_name] = _Local(left_local, bound_l3.left)
            inner[expr.right_name] = _Local(right_local, bound_l3.right)
            body, body_type = self.compile_expr(inner, expr.body, builder)
            return [
                *bound,
                SeqUngroup(),
                SetLocal(right_local),
                SetLocal(left_local),
                *body,
            ], body_type
        if isinstance(expr, LNew):
            return self._compile_new(env, expr, builder)
        if isinstance(expr, LFree):
            return self._compile_free(env, expr, builder)
        if isinstance(expr, LSwap):
            return self._compile_swap(env, expr, builder)
        if isinstance(expr, LJoin):
            return self._compile_join(env, expr, builder)
        if isinstance(expr, LSplit):
            return self._compile_split(env, expr, builder)
        if isinstance(expr, LBinOp):
            left, _ = self.compile_expr(env, expr.left, builder)
            right, _ = self.compile_expr(env, expr.right, builder)
            arith = {"+": IntBinop.ADD, "-": IntBinop.SUB, "*": IntBinop.MUL}
            compare = {"=": IntRelop.EQ, "<": IntRelop.LT_S}
            if expr.op in arith:
                return [*left, *right, NumBinop(NumType.I32, arith[expr.op])], i32()
            if expr.op in compare:
                return [*left, *right, NumRelop(NumType.I32, compare[expr.op])], i32()
            raise CompilationError(f"unknown L3 operator {expr.op!r}")
        if isinstance(expr, LCall):
            if expr.name not in self.function_index:
                raise CompilationError(f"call of unknown function {expr.name!r}")
            signature = self.signatures[expr.name]
            arg, _ = self.compile_expr(env, expr.arg, builder)
            return [*arg, Call(self.function_index[expr.name], ())], compile_type(signature.result_type)
        raise CompilationError(f"cannot compile L3 expression {expr!r}")

    # -- heap operations --------------------------------------------------------------

    def _compile_new(self, env, expr: LNew, builder: _Builder) -> tuple[list[Instr], Type]:
        content_l3 = self._infer(env, expr.value)
        value, value_type = self.compile_expr(env, expr.value, builder)
        result = owned_type(content_l3)
        size = closed_size_of_type(value_type)
        instrs = [
            *value,
            StructMalloc((size,), LIN),
            MemUnpack(
                arrow([], [result]),
                (),
                (
                    RefSplit(),
                    SeqGroup(2, LIN),
                    MemPack(LocVar(0)),
                ),
            ),
        ]
        return instrs, result

    def _compile_free(self, env, expr: LFree, builder: _Builder) -> tuple[list[Instr], Type]:
        owned_l3 = self._infer(env, expr.owned)
        if not isinstance(owned_l3, LOwned):
            raise L3TypeError(f"free of non-owned {owned_l3}")
        owned, _ = self.compile_expr(env, expr.owned, builder)
        content_type = compile_type(owned_l3.content)
        tmp = builder.new_local(_bits(content_type))
        instrs = [
            *owned,
            MemUnpack(
                arrow([], [content_type]),
                (),
                (
                    SeqUngroup(),
                    RefJoin(),
                    UnitV(),
                    StructSwap(0),
                    SetLocal(tmp),
                    StructFree(),
                    GetLocal(tmp, LIN if is_linear(content_type) else UNR),
                ),
            ),
        ]
        return instrs, content_type

    def _compile_swap(self, env, expr: LSwap, builder: _Builder) -> tuple[list[Instr], Type]:
        owned_l3 = self._infer(env, expr.owned)
        value_l3 = self._infer(env, expr.value)
        if not isinstance(owned_l3, LOwned):
            raise L3TypeError(f"swap on non-owned {owned_l3}")
        value, value_type = self.compile_expr(env, expr.value, builder)
        owned, _ = self.compile_expr(env, expr.owned, builder)
        old_type = compile_type(owned_l3.content)
        new_owned = owned_type(value_l3)
        result = prod([old_type, new_owned], LIN)

        value_local = builder.new_local(_bits(value_type))
        ref_local = builder.new_local(32)
        old_local = builder.new_local(_bits(old_type))
        owned_local = builder.new_local(_bits(new_owned))
        value_qual = LIN if is_linear(value_type) else UNR
        old_qual = LIN if is_linear(old_type) else UNR
        instrs = [
            *value,
            *owned,
            MemUnpack(
                arrow([value_type], [result]),
                (),
                (
                    # stack: value, (cap ⊗ ptr)
                    SeqUngroup(),
                    RefJoin(),
                    SetLocal(ref_local),
                    SetLocal(value_local),
                    GetLocal(ref_local, LIN),
                    GetLocal(value_local, value_qual),
                    StructSwap(0),
                    # stack: ref', old-content
                    SetLocal(old_local),
                    RefSplit(),
                    SeqGroup(2, LIN),
                    MemPack(LocVar(0)),
                    SetLocal(owned_local),
                    GetLocal(old_local, old_qual),
                    GetLocal(owned_local, LIN),
                    SeqGroup(2, LIN),
                ),
            ),
        ]
        return instrs, result

    def _compile_join(self, env, expr: LJoin, builder: _Builder) -> tuple[list[Instr], Type]:
        owned_l3 = self._infer(env, expr.owned)
        if not isinstance(owned_l3, LOwned):
            raise L3TypeError(f"join of non-owned {owned_l3}")
        owned, _ = self.compile_expr(env, expr.owned, builder)
        result = mlref_type(owned_l3.content)
        instrs = [
            *owned,
            MemUnpack(
                arrow([], [result]),
                (),
                (SeqUngroup(), RefJoin(), MemPack(LocVar(0))),
            ),
        ]
        return instrs, result

    def _compile_split(self, env, expr: LSplit, builder: _Builder) -> tuple[list[Instr], Type]:
        ref_l3 = self._infer(env, expr.ref)
        if not isinstance(ref_l3, LMLRef):
            raise L3TypeError(f"split of non-reference {ref_l3}")
        ref, _ = self.compile_expr(env, expr.ref, builder)
        result = owned_type(ref_l3.content)
        instrs = [
            *ref,
            MemUnpack(
                arrow([], [result]),
                (),
                (RefSplit(), SeqGroup(2, LIN), MemPack(LocVar(0))),
            ),
        ]
        return instrs, result


def _bits(ty: Type) -> int:
    from ..core.syntax.sizes import eval_size

    return eval_size(closed_size_of_type(ty))


def compile_l3_module(
    module: L3Module, *, lower: bool = False, cache=None, config=None,
    optimize=_UNSET, memory_pages=_UNSET, engine=_UNSET,
):
    """Linearity-check and compile an L3 module to RichWasm.

    By default this returns the RichWasm :class:`Module` (this is also the
    ``"l3"`` frontend of :func:`repro.api.compile`).  With ``lower=True``,
    a ``config=`` (:class:`repro.api.CompileConfig`), or a ``cache=``
    (:class:`repro.runtime.ModuleCache`, which memoizes the lower/optimize
    stage by content) it continues down the pipeline and returns the
    :class:`repro.lower.LoweredModule` instead, optionally post-processed by
    the config's named :mod:`repro.opt` pipeline.

    The ``optimize``/``memory_pages``/``engine`` keywords are the deprecated
    pre-:mod:`repro.api` surface (one :class:`DeprecationWarning` per call,
    and passing any of them implies lowering); ``optimize=True`` maps to
    ``O2``.
    """

    signatures = check_l3_module(module)
    richwasm = L3Compiler(module, signatures).compile()
    lowered = _codegen_lowering(
        "compile_l3_module", richwasm, lower=lower, cache=cache, config=config,
        legacy={"optimize": optimize, "memory_pages": memory_pages, "engine": engine},
    )
    return richwasm if lowered is None else lowered
