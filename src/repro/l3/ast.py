"""Abstract syntax of the L3 source language (paper §5, following [12]).

L3 is a linear language with locations and safe strong updates.  The core
surface implemented here:

* types — unit, integers, ``!τ`` (unrestricted values), tensor products
  ``τ1 ⊗ τ2``, and ``Owned τ``: the existential package
  ``∃ρ. !Ptr ρ ⊗ Cap ρ τ`` that ``new`` returns.  Following §5, capabilities
  track the size of the memory they govern, which here is derived from the
  stored type.
* the linking-type extension — ``MLRef τ``: an ML-style reference type, plus
  ``join`` / ``split`` to convert between a pointer⊗capability pair and a
  reference at the boundary with ML code.
* terms — variables, let, ``!``-introduction (``Bang``) and elimination
  (``LetBang``), pairs and pair-elimination, ``new`` / ``free`` / ``swap``,
  ``join`` / ``split``, integer arithmetic, and calls of top-level or
  imported functions.  Functions are top level only: the paper's L3 compiler
  does not perform closure conversion, so lambdas may not capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LUnit:
    def __str__(self) -> str:  # pragma: no cover - trivial
        return "unit"


@dataclass(frozen=True)
class LInt:
    def __str__(self) -> str:  # pragma: no cover - trivial
        return "int"


@dataclass(frozen=True)
class LBang:
    """``!τ`` — an unrestricted (freely duplicable) value."""

    inner: "L3Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"!{self.inner}"


@dataclass(frozen=True)
class LTensor:
    """``τ1 ⊗ τ2`` — a linear pair."""

    left: "L3Type"
    right: "L3Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} ⊗ {self.right})"


@dataclass(frozen=True)
class LOwned:
    """``∃ρ. !Ptr ρ ⊗ Cap ρ τ`` — ownership of a heap cell holding ``τ``."""

    content: "L3Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(owned {self.content})"


@dataclass(frozen=True)
class LMLRef:
    """``Ref τ`` — the ML-like reference added for interop (paper §5)."""

    content: "L3Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(mlref {self.content})"


L3Type = Union[LUnit, LInt, LBang, LTensor, LOwned, LMLRef]


def is_unrestricted_type(ty: L3Type) -> bool:
    """Types whose values may be freely duplicated and dropped."""

    if isinstance(ty, (LUnit, LInt, LBang)):
        return True
    return False


def type_size_bits(ty: L3Type) -> int:
    """The representation size of an L3 type in bits.

    Following the paper's §5 adjustment, L3 capabilities explicitly track the
    size of the memory they govern; the type checker uses this to restrict
    strong updates (``swap``) to values that fit the original allocation.
    """

    if isinstance(ty, LUnit):
        return 0
    if isinstance(ty, LInt):
        return 32
    if isinstance(ty, LBang):
        return type_size_bits(ty.inner)
    if isinstance(ty, LTensor):
        return type_size_bits(ty.left) + type_size_bits(ty.right)
    if isinstance(ty, (LOwned, LMLRef)):
        return 32
    raise TypeError(f"not an L3 type: {ty!r}")


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LUnitV:
    pass


@dataclass(frozen=True)
class LIntLit:
    value: int


@dataclass(frozen=True)
class LVar:
    name: str


@dataclass(frozen=True)
class LLet:
    name: str
    bound: "L3Expr"
    body: "L3Expr"


@dataclass(frozen=True)
class LBangI:
    """``!e`` — introduce an unrestricted value (e must be unrestricted)."""

    value: "L3Expr"


@dataclass(frozen=True)
class LLetBang:
    """``let !x = e1 in e2`` — eliminate a bang; ``x`` may be used freely."""

    name: str
    bound: "L3Expr"
    body: "L3Expr"


@dataclass(frozen=True)
class LPair:
    left: "L3Expr"
    right: "L3Expr"


@dataclass(frozen=True)
class LLetPair:
    """``let (x, y) = e1 in e2``."""

    left_name: str
    right_name: str
    bound: "L3Expr"
    body: "L3Expr"


@dataclass(frozen=True)
class LNew:
    """``new e`` — allocate a linear heap cell, returning ownership of it."""

    value: "L3Expr"


@dataclass(frozen=True)
class LFree:
    """``free e`` — consume ownership, deallocate, return the stored value."""

    owned: "L3Expr"


@dataclass(frozen=True)
class LSwap:
    """``swap e1 e2`` — strong update: store ``e2``, return (old value ⊗ ownership)."""

    owned: "L3Expr"
    value: "L3Expr"


@dataclass(frozen=True)
class LJoin:
    """``join e`` — convert ownership (ptr⊗cap) into an ML-style reference."""

    owned: "L3Expr"


@dataclass(frozen=True)
class LSplit:
    """``split e`` — convert an ML-style reference back into ownership."""

    ref: "L3Expr"


@dataclass(frozen=True)
class LBinOp:
    op: str
    left: "L3Expr"
    right: "L3Expr"


@dataclass(frozen=True)
class LCall:
    """Call of a top-level or imported function."""

    name: str
    arg: "L3Expr"


L3Expr = Union[
    LUnitV,
    LIntLit,
    LVar,
    LLet,
    LBangI,
    LLetBang,
    LPair,
    LLetPair,
    LNew,
    LFree,
    LSwap,
    LJoin,
    LSplit,
    LBinOp,
    LCall,
]


# ---------------------------------------------------------------------------
# Modules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class L3Function:
    """A top-level L3 function (one argument, no captured variables)."""

    name: str
    param: str
    param_type: L3Type
    result_type: L3Type
    body: L3Expr
    export: bool = True


@dataclass(frozen=True)
class L3Import:
    """An imported function, typically exported by an ML module."""

    module: str
    name: str
    param_type: L3Type
    result_type: L3Type
    local_name: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.local_name if self.local_name is not None else self.name


@dataclass(frozen=True)
class L3Module:
    name: str
    imports: tuple[L3Import, ...] = ()
    functions: tuple[L3Function, ...] = ()


def l3_module(
    name: str,
    functions: Sequence[L3Function] = (),
    imports: Sequence[L3Import] = (),
) -> L3Module:
    return L3Module(name, tuple(imports), tuple(functions))
