"""The L3 frontend (paper §5): AST, linear type checker, compiler to RichWasm."""

from .ast import (
    L3Expr,
    L3Function,
    L3Import,
    L3Module,
    L3Type,
    LBang,
    LBangI,
    LBinOp,
    LCall,
    LFree,
    LInt,
    LIntLit,
    LJoin,
    LLet,
    LLetBang,
    LLetPair,
    LMLRef,
    LNew,
    LOwned,
    LPair,
    LSplit,
    LSwap,
    LTensor,
    LUnit,
    LUnitV,
    LVar,
    is_unrestricted_type,
    l3_module,
)
from .codegen import L3Compiler, compile_l3_module, compile_type as compile_l3_type, mlref_type, owned_type
from .typecheck import FunSig, L3Checker, L3TypeError, check_l3_module

__all__ = [name for name in dir() if not name.startswith("_")]
