"""Computing the size ``||τ||`` of a RichWasm type.

Sizes are what make strong updates checkable: the checker must be able to
bound the runtime representation size of any type that is written into a
local slot or a struct field (paper §2.1).  The conventions (in bits) follow
the lowering described in §6:

* ``unit``, capabilities and ownership tokens are erased → size 0;
* numeric types take their natural width (32 or 64);
* references and pointers lower to a single ``i32`` pointer → 32;
* code references carry a module-instance index and a table index → 64;
* tuples are flattened → the sum of the component sizes;
* a pretype variable contributes its declared size bound;
* recursive and existential-location types contribute their body's size
  (RichWasm guarantees recursion occurs under an indirection, so the
  recursive occurrence itself counts as a boxed pointer).
"""

from __future__ import annotations

from ..syntax.intern import free_levels
from ..syntax.sizes import SIZE_PTR, Size, SizeConst, size_plus, size_sum
from ..syntax.types import (
    CapT,
    CodeRefT,
    ExLocT,
    NumT,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    RecT,
    RefT,
    Type,
    UnitT,
    VarT,
)
from .constraints import TypeVarContext
from .errors import SizeError

#: Size of a lowered reference or pointer (one Wasm ``i32``).
REF_SIZE = SizeConst(32)
#: Size of a lowered code reference (instance index + table index).
CODEREF_SIZE = SizeConst(64)


def size_of_pretype(pretype: Pretype, type_ctx: TypeVarContext) -> Size:
    """An upper bound for the representation size of ``pretype``.

    For pretypes without free pretype variables the result is independent of
    ``type_ctx`` (``VarT`` is the only case that consults it), so it is
    memoized on the interned node.
    """

    cached = pretype.__dict__.get("_hc_size")
    if cached is not None:
        return cached
    result = _size_of_pretype(pretype, type_ctx)
    if "_hc" in pretype.__dict__ and free_levels(pretype)[3] == 0:
        pretype.__dict__["_hc_size"] = result
    return result


def _size_of_pretype(pretype: Pretype, type_ctx: TypeVarContext) -> Size:
    if isinstance(pretype, UnitT):
        return SizeConst(0)
    if isinstance(pretype, NumT):
        return pretype.numtype.size
    if isinstance(pretype, ProdT):
        return size_sum([size_of_type(c, type_ctx) for c in pretype.components])
    if isinstance(pretype, (RefT, PtrT)):
        return REF_SIZE
    if isinstance(pretype, (CapT, OwnT)):
        return SizeConst(0)
    if isinstance(pretype, CodeRefT):
        return CODEREF_SIZE
    if isinstance(pretype, VarT):
        bounds = type_ctx.lookup(pretype.index)
        return bounds.size_bound
    if isinstance(pretype, RecT):
        # The recursive occurrence is guaranteed to sit behind a reference, so
        # treat the bound variable as pointer-sized when measuring the body.
        inner_ctx = type_ctx.push(pretype.qual_bound, REF_SIZE, heapable=True)
        return size_of_type(pretype.body, inner_ctx)
    if isinstance(pretype, ExLocT):
        return size_of_type(pretype.body, type_ctx)
    raise SizeError(f"cannot compute the size of pretype {pretype!r}")


def size_of_type(ty: Type, type_ctx: TypeVarContext) -> Size:
    """An upper bound for the representation size of ``ty`` (``||τ||``)."""

    return size_of_pretype(ty.pretype, type_ctx)


def closed_size_of_type(ty: Type) -> Size:
    """Size of a type with no free pretype variables."""

    return size_of_type(ty, TypeVarContext())
