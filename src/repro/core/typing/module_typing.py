"""Module typing: checking functions, globals and tables of a RichWasm module.

This is the entry point compilers use: :func:`check_module` validates every
defined function body against its declared function type, every global
initializer against its declared pretype, and the table against the function
index space, producing the :class:`~repro.core.typing.env.ModuleEnv` used by
instruction typing.  Cross-module programs are checked by
:mod:`repro.ffi.link`, which resolves imports to the exporting module's
declarations before calling into this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..syntax.modules import Function, FunctionDecl, Global, GlobalDecl, ImportedFunction, ImportedGlobal, Module
from ..syntax.qualifiers import UNR
from ..syntax.sizes import Size
from ..syntax.types import (
    FunType,
    LocQuant,
    QualQuant,
    SizeQuant,
    Type,
    TypeQuant,
    UnitT,
)
from .constraints import QualContext
from .env import (
    FunctionEnv,
    GlobalType,
    LocalEnv,
    LocalSlot,
    ModuleEnv,
    StoreTyping,
    empty_function_env,
    empty_store_typing,
)
from .errors import LinearityError, ModuleTypeError
from .instruction_typing import InstructionChecker
from .sizing import size_of_type
from .validity import check_funtype_valid


@dataclass(frozen=True)
class ModuleCheckResult:
    """The outcome of checking a module: its environment and some statistics."""

    module_env: ModuleEnv
    functions_checked: int
    globals_checked: int
    instructions_checked: int


def module_env_of(module: Module) -> ModuleEnv:
    """Build the module environment (function/global/table types) of a module."""

    func_types = tuple(f.funtype for f in module.functions)
    global_types = tuple(GlobalType(g.pretype, g.mutable) for g in module.globals)
    table_types = []
    for entry in module.table.entries:
        if entry < 0 or entry >= len(module.functions):
            raise ModuleTypeError(f"table entry {entry} does not name a function")
        table_types.append(module.functions[entry].funtype)
    return ModuleEnv(func_types, global_types, tuple(table_types))


def function_env_of(funtype: FunType) -> tuple[FunctionEnv, list[Type]]:
    """Open a function type's quantifiers into a fresh function environment.

    Returns the environment (with the qualifier/size/type/location contexts
    populated from the quantifier prefix) and the parameter types as seen
    from inside the body.
    """

    env = empty_function_env(funtype.arrow.results)
    for quant in funtype.quants:
        if isinstance(quant, LocQuant):
            env = env.push_loc()
        elif isinstance(quant, SizeQuant):
            env = env.push_size(quant.lower, quant.upper)
        elif isinstance(quant, QualQuant):
            env = env.push_qual(quant.lower, quant.upper)
        elif isinstance(quant, TypeQuant):
            env = env.push_type(quant.qual_bound, quant.size_bound, quant.heapable)
        else:  # pragma: no cover - defensive
            raise ModuleTypeError(f"unknown quantifier {quant!r}")
    return env, list(funtype.arrow.params)


def check_function(
    store_typing: StoreTyping,
    module_env: ModuleEnv,
    function: Function,
    *,
    allow_caps_in_linear_memory: bool = True,
) -> None:
    """Check one function definition against its declared type."""

    check_funtype_valid(empty_function_env(), function.funtype, "function type")
    fenv, params = function_env_of(function.funtype)
    checker = InstructionChecker(
        store_typing, module_env, allow_caps_in_linear_memory=allow_caps_in_linear_memory
    )

    # Parameters become the first locals (sized by their types); declared
    # locals start as unrestricted unit values of the declared sizes.
    slots: list[LocalSlot] = []
    for param in params:
        slots.append(LocalSlot(param, size_of_type(param, fenv.type_ctx)))
    for size in function.locals_sizes:
        slots.append(LocalSlot(Type(UnitT(), UNR), size))
    local_env = LocalEnv(tuple(slots))

    final_env = checker.check_body(
        fenv, local_env, function.body, [], list(function.funtype.arrow.results)
    )

    # At the end of the function every local must be unrestricted: any linear
    # value still sitting in a local would be silently dropped.
    for index, slot in enumerate(final_env):
        if not fenv.qual_ctx.leq(slot.type.qual, UNR):
            raise LinearityError(
                f"function ends with a linear value of type {slot.type} in local {index}"
            )


def check_global(
    store_typing: StoreTyping,
    module_env: ModuleEnv,
    global_decl: Global,
    *,
    allow_caps_in_linear_memory: bool = True,
) -> None:
    """Check one global initializer."""

    checker = InstructionChecker(
        store_typing, module_env, allow_caps_in_linear_memory=allow_caps_in_linear_memory
    )
    fenv = empty_function_env()
    expected = Type(global_decl.pretype, UNR)
    checker.check_body(fenv, LocalEnv(), global_decl.init, [], [expected])


def check_module(
    module: Module,
    *,
    store_typing: Optional[StoreTyping] = None,
    allow_caps_in_linear_memory: bool = True,
    unit_cache=None,
) -> ModuleCheckResult:
    """Check a whole module; raises a RichWasmTypeError subclass on failure.

    ``unit_cache`` (a :class:`repro.compilepipe.FunctionUnitCache`) memoizes
    per-function checks: a function whose (body, signature environment,
    ``allow_caps_in_linear_memory``) key was checked before is skipped, and
    only its cached instruction count feeds the statistics.  Only successful
    checks are cached, and only against the default store typing — a custom
    ``store_typing`` widens what a body may reference, so its results are
    not per-function keyed.
    """

    module_env = module_env_of(module)
    store = store_typing if store_typing is not None else empty_store_typing([module_env])
    units = unit_cache if store_typing is None else None

    functions_checked = 0
    instructions_checked = 0
    for function in module.functions:
        if isinstance(function, ImportedFunction):
            check_funtype_valid(empty_function_env(), function.funtype, "imported function type")
            continue
        if units is not None:
            key = units.typecheck_key(function, module, allow_caps=allow_caps_in_linear_memory)
            cached_count = units.get("typecheck", key)
            if cached_count is not None:
                functions_checked += 1
                instructions_checked += cached_count
                continue
        check_function(
            store, module_env, function, allow_caps_in_linear_memory=allow_caps_in_linear_memory
        )
        if units is not None:
            units.put("typecheck", key, function.instruction_count())
        functions_checked += 1
        instructions_checked += function.instruction_count()

    globals_checked = 0
    for global_decl in module.globals:
        if isinstance(global_decl, ImportedGlobal):
            continue
        check_global(
            store, module_env, global_decl, allow_caps_in_linear_memory=allow_caps_in_linear_memory
        )
        globals_checked += 1

    return ModuleCheckResult(
        module_env=module_env,
        functions_checked=functions_checked,
        globals_checked=globals_checked,
        instructions_checked=instructions_checked,
    )
