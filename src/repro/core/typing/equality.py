"""Structural equality of RichWasm types.

The checker compares types when an instruction's expected operand type must
match what is on the stack (block parameters, stored field types, branch
argument types, ...).  Equality is structural, except that size expressions
are compared up to normalization (constant folding and reordering of
variables), so ``32 + σ`` and ``σ + 32`` describe the same slot.
"""

from __future__ import annotations

from typing import Sequence

from ..syntax.sizes import size_structurally_equal
from ..syntax.types import (
    ArrayHT,
    ArrowType,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    FunType,
    HeapType,
    LocQuant,
    NumT,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    QualQuant,
    Quant,
    RecT,
    RefT,
    SizeQuant,
    StructHT,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    VariantHT,
)


def types_equal(lhs: Type, rhs: Type) -> bool:
    """Structural equality of types (sizes compared up to normalization)."""

    return lhs.qual == rhs.qual and pretypes_equal(lhs.pretype, rhs.pretype)


def type_lists_equal(lhs: Sequence[Type], rhs: Sequence[Type]) -> bool:
    return len(lhs) == len(rhs) and all(types_equal(a, b) for a, b in zip(lhs, rhs))


def pretypes_equal(lhs: Pretype, rhs: Pretype) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, (UnitT,)):
        return True
    if isinstance(lhs, NumT):
        return lhs.numtype == rhs.numtype
    if isinstance(lhs, VarT):
        return lhs.index == rhs.index
    if isinstance(lhs, ProdT):
        return type_lists_equal(lhs.components, rhs.components)
    if isinstance(lhs, RefT):
        return (
            lhs.privilege == rhs.privilege
            and lhs.loc == rhs.loc
            and heaptypes_equal(lhs.heaptype, rhs.heaptype)
        )
    if isinstance(lhs, CapT):
        return (
            lhs.privilege == rhs.privilege
            and lhs.loc == rhs.loc
            and heaptypes_equal(lhs.heaptype, rhs.heaptype)
        )
    if isinstance(lhs, PtrT):
        return lhs.loc == rhs.loc
    if isinstance(lhs, OwnT):
        return lhs.loc == rhs.loc
    if isinstance(lhs, RecT):
        return lhs.qual_bound == rhs.qual_bound and types_equal(lhs.body, rhs.body)
    if isinstance(lhs, ExLocT):
        return types_equal(lhs.body, rhs.body)
    if isinstance(lhs, CodeRefT):
        return funtypes_equal(lhs.funtype, rhs.funtype)
    return False


def heaptypes_equal(lhs: HeapType, rhs: HeapType) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, VariantHT):
        return type_lists_equal(lhs.cases, rhs.cases)
    if isinstance(lhs, StructHT):
        if len(lhs.fields) != len(rhs.fields):
            return False
        return all(
            types_equal(lt, rt) and size_structurally_equal(ls, rs)
            for (lt, ls), (rt, rs) in zip(lhs.fields, rhs.fields)
        )
    if isinstance(lhs, ArrayHT):
        return types_equal(lhs.element, rhs.element)
    if isinstance(lhs, ExHT):
        return (
            lhs.qual_bound == rhs.qual_bound
            and size_structurally_equal(lhs.size_bound, rhs.size_bound)
            and types_equal(lhs.body, rhs.body)
        )
    return False


def quants_equal(lhs: Quant, rhs: Quant) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, LocQuant):
        return True
    if isinstance(lhs, SizeQuant):
        return (
            len(lhs.lower) == len(rhs.lower)
            and len(lhs.upper) == len(rhs.upper)
            and all(size_structurally_equal(a, b) for a, b in zip(lhs.lower, rhs.lower))
            and all(size_structurally_equal(a, b) for a, b in zip(lhs.upper, rhs.upper))
        )
    if isinstance(lhs, QualQuant):
        return lhs.lower == rhs.lower and lhs.upper == rhs.upper
    if isinstance(lhs, TypeQuant):
        return (
            lhs.qual_bound == rhs.qual_bound
            and size_structurally_equal(lhs.size_bound, rhs.size_bound)
            and lhs.heapable == rhs.heapable
        )
    return False


def arrows_equal(lhs: ArrowType, rhs: ArrowType) -> bool:
    return type_lists_equal(lhs.params, rhs.params) and type_lists_equal(lhs.results, rhs.results)


def funtypes_equal(lhs: FunType, rhs: FunType) -> bool:
    return (
        len(lhs.quants) == len(rhs.quants)
        and all(quants_equal(a, b) for a, b in zip(lhs.quants, rhs.quants))
        and arrows_equal(lhs.arrow, rhs.arrow)
    )
