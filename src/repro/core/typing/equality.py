"""Structural equality of RichWasm types — identity-fast via hash-consing.

The checker compares types when an instruction's expected operand type must
match what is on the stack (block parameters, stored field types, branch
argument types, ...).  Equality is structural, except that size expressions
are compared up to normalization (constant folding and reordering of
variables), so ``32 + σ`` and ``σ + 32`` describe the same slot.

Since PR 5 all type constructors route through the interning layer
(:mod:`repro.core.syntax.intern`), so structurally identical terms are the
same object and equality is two pointer comparisons: ``lhs is rhs`` for the
common case, and ``canonical(lhs) is canonical(rhs)`` to fold in the
size-normalization semantics (each node caches its size-normalized canonical
form).  The structural algorithms are kept as ``structural_*`` oracles: they
remain the definition of equality, serve the property tests, and handle
*non-interned* inputs (nodes built under :func:`interning_disabled` or
deserialized by other means), which carry no canonical-form cache.
"""

from __future__ import annotations

from typing import Sequence

from ..syntax import intern
from ..syntax.sizes import size_structurally_equal
from ..syntax.types import (
    ArrayHT,
    ArrowType,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    FunType,
    HeapType,
    LocQuant,
    NumT,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    QualQuant,
    Quant,
    RecT,
    RefT,
    SizeQuant,
    StructHT,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    VariantHT,
)


def _canonical_equal(lhs, rhs):
    """Identity-fast verdict for two nodes, or ``None`` to fall back.

    Only valid when both nodes are interned (the canonical representative of
    their structure) and interning is on — then equality up to size
    normalization is exactly identity of the cached canonical forms.
    """

    if lhs is rhs:
        return True
    if type(lhs) is not type(rhs):
        return False
    if intern._ENABLED and "_hc" in lhs.__dict__ and "_hc" in rhs.__dict__:
        return intern.canonical(lhs) is intern.canonical(rhs)
    return None


def types_equal(lhs: Type, rhs: Type) -> bool:
    """Structural equality of types (sizes compared up to normalization)."""

    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_types_equal(lhs, rhs)


def type_lists_equal(lhs: Sequence[Type], rhs: Sequence[Type]) -> bool:
    return len(lhs) == len(rhs) and all(types_equal(a, b) for a, b in zip(lhs, rhs))


def pretypes_equal(lhs: Pretype, rhs: Pretype) -> bool:
    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_pretypes_equal(lhs, rhs)


def heaptypes_equal(lhs: HeapType, rhs: HeapType) -> bool:
    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_heaptypes_equal(lhs, rhs)


def quants_equal(lhs: Quant, rhs: Quant) -> bool:
    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_quants_equal(lhs, rhs)


def arrows_equal(lhs: ArrowType, rhs: ArrowType) -> bool:
    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_arrows_equal(lhs, rhs)


def funtypes_equal(lhs: FunType, rhs: FunType) -> bool:
    verdict = _canonical_equal(lhs, rhs)
    if verdict is not None:
        return verdict
    return structural_funtypes_equal(lhs, rhs)


# ---------------------------------------------------------------------------
# The structural definition (oracle and non-interned fallback)
# ---------------------------------------------------------------------------


def structural_types_equal(lhs: Type, rhs: Type) -> bool:
    """The defining structural walk (no interning shortcuts)."""

    return lhs.qual == rhs.qual and structural_pretypes_equal(lhs.pretype, rhs.pretype)


def _structural_type_lists_equal(lhs: Sequence[Type], rhs: Sequence[Type]) -> bool:
    return len(lhs) == len(rhs) and all(
        structural_types_equal(a, b) for a, b in zip(lhs, rhs)
    )


def structural_pretypes_equal(lhs: Pretype, rhs: Pretype) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, (UnitT,)):
        return True
    if isinstance(lhs, NumT):
        return lhs.numtype == rhs.numtype
    if isinstance(lhs, VarT):
        return lhs.index == rhs.index
    if isinstance(lhs, ProdT):
        return _structural_type_lists_equal(lhs.components, rhs.components)
    if isinstance(lhs, RefT):
        return (
            lhs.privilege == rhs.privilege
            and lhs.loc == rhs.loc
            and structural_heaptypes_equal(lhs.heaptype, rhs.heaptype)
        )
    if isinstance(lhs, CapT):
        return (
            lhs.privilege == rhs.privilege
            and lhs.loc == rhs.loc
            and structural_heaptypes_equal(lhs.heaptype, rhs.heaptype)
        )
    if isinstance(lhs, PtrT):
        return lhs.loc == rhs.loc
    if isinstance(lhs, OwnT):
        return lhs.loc == rhs.loc
    if isinstance(lhs, RecT):
        return lhs.qual_bound == rhs.qual_bound and structural_types_equal(lhs.body, rhs.body)
    if isinstance(lhs, ExLocT):
        return structural_types_equal(lhs.body, rhs.body)
    if isinstance(lhs, CodeRefT):
        return structural_funtypes_equal(lhs.funtype, rhs.funtype)
    return False


def structural_heaptypes_equal(lhs: HeapType, rhs: HeapType) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, VariantHT):
        return _structural_type_lists_equal(lhs.cases, rhs.cases)
    if isinstance(lhs, StructHT):
        if len(lhs.fields) != len(rhs.fields):
            return False
        return all(
            structural_types_equal(lt, rt) and size_structurally_equal(ls, rs)
            for (lt, ls), (rt, rs) in zip(lhs.fields, rhs.fields)
        )
    if isinstance(lhs, ArrayHT):
        return structural_types_equal(lhs.element, rhs.element)
    if isinstance(lhs, ExHT):
        return (
            lhs.qual_bound == rhs.qual_bound
            and size_structurally_equal(lhs.size_bound, rhs.size_bound)
            and structural_types_equal(lhs.body, rhs.body)
        )
    return False


def structural_quants_equal(lhs: Quant, rhs: Quant) -> bool:
    if type(lhs) is not type(rhs):
        return False
    if isinstance(lhs, LocQuant):
        return True
    if isinstance(lhs, SizeQuant):
        return (
            len(lhs.lower) == len(rhs.lower)
            and len(lhs.upper) == len(rhs.upper)
            and all(size_structurally_equal(a, b) for a, b in zip(lhs.lower, rhs.lower))
            and all(size_structurally_equal(a, b) for a, b in zip(lhs.upper, rhs.upper))
        )
    if isinstance(lhs, QualQuant):
        return lhs.lower == rhs.lower and lhs.upper == rhs.upper
    if isinstance(lhs, TypeQuant):
        return (
            lhs.qual_bound == rhs.qual_bound
            and size_structurally_equal(lhs.size_bound, rhs.size_bound)
            and lhs.heapable == rhs.heapable
        )
    return False


def structural_arrows_equal(lhs: ArrowType, rhs: ArrowType) -> bool:
    return _structural_type_lists_equal(lhs.params, rhs.params) and _structural_type_lists_equal(
        lhs.results, rhs.results
    )


def structural_funtypes_equal(lhs: FunType, rhs: FunType) -> bool:
    return (
        len(lhs.quants) == len(rhs.quants)
        and all(structural_quants_equal(a, b) for a, b in zip(lhs.quants, rhs.quants))
        and structural_arrows_equal(lhs.arrow, rhs.arrow)
    )
