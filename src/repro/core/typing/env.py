"""Typing environments (paper Fig. 5).

* :class:`LocalEnv` — the type and slot size of every local variable.
* :class:`FunctionEnv` — label stack, return type, qualifier / size / pretype
  variable constraints, location variables, and the *linear environment* that
  tracks the linearity of values sitting on the operand stack between jump
  targets.
* :class:`ModuleEnv` — the declared functions, globals and table.
* :class:`StoreTyping` — module instance typings plus the typing of the
  linear and unrestricted memories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..syntax.locations import ConcreteLoc, MemKind
from ..syntax.qualifiers import LIN, UNR, Qual
from ..syntax.sizes import Size
from ..syntax.types import FunType, HeapType, Pretype, Type
from .constraints import LocContext, QualContext, SizeContext, TypeVarContext
from .errors import LocalTypeError, ModuleTypeError, StoreTypeError

# ---------------------------------------------------------------------------
# Local environment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalSlot:
    """One local slot: its current type and the size it was allocated with."""

    type: Type
    size: Size


@dataclass(frozen=True)
class LocalEnv:
    """The local environment ``L = (τ, sz)*``."""

    slots: tuple[LocalSlot, ...] = ()

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def get(self, index: int) -> LocalSlot:
        if index < 0 or index >= len(self.slots):
            raise LocalTypeError(f"local index {index} out of range (have {len(self.slots)})")
        return self.slots[index]

    def set_type(self, index: int, ty: Type) -> "LocalEnv":
        """Return a new environment with slot ``index`` retyped (same size).

        Writing the type the slot already holds returns ``self`` unchanged —
        with interned types this is one identity check, and keeping the
        environment object stable lets downstream comparisons short-circuit.
        """

        slot = self.get(index)
        if slot.type is ty:
            return self
        new_slots = list(self.slots)
        new_slots[index] = LocalSlot(ty, slot.size)
        return LocalEnv(tuple(new_slots))

    def apply_effects(self, effects: Sequence) -> "LocalEnv":
        """Apply a local-effect annotation ``(i, τ)*`` (paper: ``(i, τ)*[L]``)."""

        env = self
        for effect in effects:
            env = env.set_type(effect.index, effect.type)
        return env

    @staticmethod
    def make(entries: Sequence[tuple[Type, Size]]) -> "LocalEnv":
        return LocalEnv(tuple(LocalSlot(t, s) for t, s in entries))


# ---------------------------------------------------------------------------
# Labels and function environment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LabelInfo:
    """One entry of the label component: the branch-argument types and the
    local environment every jump to this label must agree on."""

    arg_types: tuple[Type, ...]
    local_env: LocalEnv


@dataclass(frozen=True)
class FunctionEnv:
    """The function environment ``F`` (paper Fig. 5)."""

    labels: tuple[LabelInfo, ...] = ()
    return_types: Optional[tuple[Type, ...]] = None
    qual_ctx: QualContext = field(default_factory=QualContext)
    size_ctx: SizeContext = field(default_factory=SizeContext)
    type_ctx: TypeVarContext = field(default_factory=TypeVarContext)
    loc_ctx: LocContext = field(default_factory=LocContext)
    linear: tuple[Qual, ...] = ()

    # -- derived copies ------------------------------------------------------

    def _with(
        self,
        *,
        labels=None,
        qual_ctx=None,
        size_ctx=None,
        type_ctx=None,
        loc_ctx=None,
        linear=None,
    ) -> "FunctionEnv":
        """A copy with the given components swapped.

        Hand-rolled instead of :func:`dataclasses.replace`: these copies are
        made four-plus times per nested block, and ``replace``'s field
        introspection dominated the checker profile.
        """

        return FunctionEnv(
            labels if labels is not None else self.labels,
            self.return_types,
            qual_ctx if qual_ctx is not None else self.qual_ctx,
            size_ctx if size_ctx is not None else self.size_ctx,
            type_ctx if type_ctx is not None else self.type_ctx,
            loc_ctx if loc_ctx is not None else self.loc_ctx,
            linear if linear is not None else self.linear,
        )

    # -- labels -------------------------------------------------------------

    def push_label(self, arg_types: Sequence[Type], local_env: LocalEnv) -> "FunctionEnv":
        return self._with(
            labels=(LabelInfo(tuple(arg_types), local_env), *self.labels),
            linear=(UNR, *self.linear),
        )

    def label(self, depth: int) -> LabelInfo:
        if depth < 0 or depth >= len(self.labels):
            raise LocalTypeError(f"branch depth {depth} out of range (have {len(self.labels)})")
        return self.labels[depth]

    # -- linear environment --------------------------------------------------

    def set_linear_head(self, qual: Qual) -> "FunctionEnv":
        if not self.linear:
            return self._with(linear=(qual,))
        if self.linear[0] is qual:
            return self
        return self._with(linear=(qual, *self.linear[1:]))

    def linear_head(self) -> Qual:
        return self.linear[0] if self.linear else UNR

    def linear_join_up_to(self, depth: int) -> tuple[Qual, ...]:
        """The linear-environment entries dropped by a branch to label ``depth``.

        Branching to label ``depth`` discards everything sitting on the stack
        between the current position and that label, which is tracked by the
        first ``depth + 1`` entries of the linear environment.
        """

        return self.linear[: depth + 1]

    # -- binders -------------------------------------------------------------

    def push_loc(self) -> "FunctionEnv":
        return self._with(loc_ctx=self.loc_ctx.push())

    def push_qual(self, lower: Sequence[Qual] = (), upper: Sequence[Qual] = ()) -> "FunctionEnv":
        return self._with(qual_ctx=self.qual_ctx.push(lower, upper))

    def push_size(self, lower: Sequence[Size] = (), upper: Sequence[Size] = ()) -> "FunctionEnv":
        return self._with(size_ctx=self.size_ctx.push(lower, upper))

    def push_type(self, qual_bound: Qual, size_bound: Size, heapable: bool = True) -> "FunctionEnv":
        return self._with(type_ctx=self.type_ctx.push(qual_bound, size_bound, heapable))


def empty_function_env(return_types: Optional[Sequence[Type]] = None) -> FunctionEnv:
    """``F_empty`` with an optional return type (used for configurations)."""

    return FunctionEnv(
        return_types=tuple(return_types) if return_types is not None else None
    )


# ---------------------------------------------------------------------------
# Module environment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalType:
    """The type of a global: its pretype and mutability."""

    pretype: Pretype
    mutable: bool


@dataclass(frozen=True)
class ModuleEnv:
    """The module environment ``M = {func χ*, global tg*, table χ*}``."""

    funcs: tuple[FunType, ...] = ()
    globals: tuple[GlobalType, ...] = ()
    table: tuple[FunType, ...] = ()

    def func(self, index: int) -> FunType:
        if index < 0 or index >= len(self.funcs):
            raise ModuleTypeError(f"function index {index} out of range (have {len(self.funcs)})")
        return self.funcs[index]

    def global_(self, index: int) -> GlobalType:
        if index < 0 or index >= len(self.globals):
            raise ModuleTypeError(f"global index {index} out of range (have {len(self.globals)})")
        return self.globals[index]

    def table_entry(self, index: int) -> FunType:
        if index < 0 or index >= len(self.table):
            raise ModuleTypeError(f"table index {index} out of range (have {len(self.table)})")
        return self.table[index]


# ---------------------------------------------------------------------------
# Store typing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemEntryTyping:
    """Typing of one heap cell: its heap type and the size it was allocated at."""

    heaptype: HeapType
    size: int


@dataclass
class StoreTyping:
    """The store typing ``S = {inst M*, unr ℓ ⇀ ψ, lin ℓ ⇀ ψ}``."""

    instances: tuple[ModuleEnv, ...] = ()
    unr: dict[int, MemEntryTyping] = field(default_factory=dict)
    lin: dict[int, MemEntryTyping] = field(default_factory=dict)

    def instance(self, index: int) -> ModuleEnv:
        if index < 0 or index >= len(self.instances):
            raise StoreTypeError(
                f"module instance index {index} out of range (have {len(self.instances)})"
            )
        return self.instances[index]

    def lookup(self, loc: ConcreteLoc) -> MemEntryTyping:
        table = self.lin if loc.mem is MemKind.LIN else self.unr
        if loc.address not in table:
            raise StoreTypeError(f"location {loc} has no typing")
        return table[loc.address]

    def has(self, loc: ConcreteLoc) -> bool:
        table = self.lin if loc.mem is MemKind.LIN else self.unr
        return loc.address in table


def empty_store_typing(instances: Sequence[ModuleEnv] = ()) -> StoreTyping:
    """A store typing with no memory entries (used for static module checking)."""

    return StoreTyping(instances=tuple(instances))


# ---------------------------------------------------------------------------
# Linear resource accounting
# ---------------------------------------------------------------------------


@dataclass
class LinearUse:
    """Tracks which linear store locations a derivation consumed.

    The paper threads disjoint splits of the linear store typing through the
    premises of every rule; algorithmically we instead record the multiset of
    linear locations each sub-derivation claims and check (a) no location is
    claimed twice and (b) at the top level every location of the linear store
    typing is claimed exactly once.
    """

    used: set[int] = field(default_factory=set)

    def claim(self, loc: ConcreteLoc) -> None:
        if loc.mem is not MemKind.LIN:
            return
        if loc.address in self.used:
            raise StoreTypeError(
                f"linear location {loc} used more than once (duplication of a linear resource)"
            )
        self.used.add(loc.address)

    def merge(self, other: "LinearUse") -> None:
        overlap = self.used & other.used
        if overlap:
            raise StoreTypeError(
                f"linear locations {sorted(overlap)} used in two disjoint derivations"
            )
        self.used |= other.used
