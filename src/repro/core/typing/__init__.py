"""The RichWasm type system (paper §4).

Public entry points:

* :func:`check_module` — type-check a whole module.
* :class:`InstructionChecker` — type-check instruction sequences.
* :func:`check_value` / :func:`check_heap_value` — value typing (Fig. 6).
* :mod:`repro.core.typing.config_typing` — configuration/store typing (Fig. 8),
  used by the empirical type-safety harness.
"""

from .constraints import (
    LocContext,
    QualBounds,
    QualContext,
    SizeBounds,
    SizeContext,
    TypeVarBounds,
    TypeVarContext,
)
from .env import (
    FunctionEnv,
    GlobalType,
    LabelInfo,
    LinearUse,
    LocalEnv,
    LocalSlot,
    ModuleEnv,
    StoreTyping,
    MemEntryTyping,
    empty_function_env,
    empty_store_typing,
)
from .equality import (
    arrows_equal,
    funtypes_equal,
    heaptypes_equal,
    pretypes_equal,
    type_lists_equal,
    types_equal,
)
from .errors import (
    CapabilityError,
    CompilationError,
    LinearityError,
    LinkError,
    LocalTypeError,
    LoweringError,
    ModuleTypeError,
    QualifierError,
    RichWasmError,
    RichWasmTypeError,
    SizeError,
    StackTypeError,
    StoreTypeError,
    WasmError,
)
from .instruction_typing import InstructionChecker, TypingState
from .module_typing import (
    ModuleCheckResult,
    check_function,
    check_global,
    check_module,
    function_env_of,
    module_env_of,
)
from .sizing import closed_size_of_type, size_of_pretype, size_of_type
from .validity import (
    check_funtype_valid,
    check_heaptype_valid,
    check_type_valid,
    heaptype_no_caps,
    type_no_caps,
)
from .value_typing import check_heap_value, check_value, synthesize_value_type

__all__ = [name for name in dir() if not name.startswith("_")]
