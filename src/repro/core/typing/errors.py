"""Error types raised by the RichWasm type checker.

All checker failures raise :class:`RichWasmTypeError` (or a subclass) with a
human-readable message describing which rule failed.  The FFI examples in the
paper (Figs. 1 and 3) rely on these being raised for ill-typed cross-language
programs, so the error classes distinguish the broad failure categories.
"""

from __future__ import annotations


class RichWasmError(Exception):
    """Base class for all errors produced by the reproduction."""


class RichWasmTypeError(RichWasmError):
    """An instruction sequence, value, or module failed to type check."""


class LinearityError(RichWasmTypeError):
    """A linear value was duplicated, dropped, or jumped over."""


class QualifierError(RichWasmTypeError):
    """A qualifier constraint ``q ⪯ q'`` could not be established."""


class SizeError(RichWasmTypeError):
    """A size constraint ``sz ≤ sz'`` could not be established."""


class CapabilityError(RichWasmTypeError):
    """A capability/ownership token was misused (e.g. stored in GC memory)."""


class StackTypeError(RichWasmTypeError):
    """The operand stack did not have the shape an instruction expects."""


class LocalTypeError(RichWasmTypeError):
    """A local-variable slot was used at the wrong type or size."""


class ModuleTypeError(RichWasmTypeError):
    """A module-level declaration (function, global, table) is ill-typed."""


class StoreTypeError(RichWasmTypeError):
    """A runtime store or configuration is ill-typed."""


class LinkError(RichWasmError):
    """Imports/exports of linked modules do not match up."""


class CompilationError(RichWasmError):
    """A source-language program could not be compiled to RichWasm."""


class WasmError(RichWasmError):
    """An error in the Wasm substrate (validation or execution)."""


class LoweringError(RichWasmError):
    """RichWasm to Wasm lowering failed."""
