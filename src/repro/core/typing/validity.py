"""Well-formedness of types and the ``no_caps`` judgement.

``F ⊢ τ type`` checks that every variable occurring in a type is bound in the
function environment and that qualifier containment constraints hold (an
unrestricted container may not hold linear components).  ``no_caps`` checks
that a type/heap type contains no capabilities or ownership tokens and that
every pretype variable is declared capability-free (``heapable``); values of
such types may be stored in the garbage-collected memory (paper §2.1, §3).
"""

from __future__ import annotations

from ..syntax.qualifiers import Qual
from ..syntax.types import (
    ArrayHT,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    HeapType,
    LocQuant,
    NumT,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    QualQuant,
    RecT,
    RefT,
    SizeQuant,
    StructHT,
    Type,
    TypeQuant,
    UnitT,
    VarT,
)
from .env import FunctionEnv
from .errors import CapabilityError, QualifierError, RichWasmTypeError, SizeError


def check_qual_valid(env: FunctionEnv, qual: Qual, context: str = "") -> None:
    """``F ⊢ q qual`` — the qualifier is well-scoped."""

    if not env.qual_ctx.valid(qual):
        raise QualifierError(f"qualifier {qual} is not in scope ({context})")


def check_size_valid(env: FunctionEnv, size, context: str = "") -> None:
    """``F ⊢ sz size`` — the size is well-scoped."""

    if not env.size_ctx.valid(size):
        raise SizeError(f"size {size} mentions variables not in scope ({context})")


def check_loc_valid(env: FunctionEnv, loc, context: str = "") -> None:
    """``F ⊢ ℓ loc`` — the location is a concrete address or a bound variable."""

    from ..syntax.locations import ConcreteLoc, LocVar

    if isinstance(loc, ConcreteLoc):
        return
    if isinstance(loc, LocVar):
        if not env.loc_ctx.valid(loc.index):
            raise RichWasmTypeError(f"location variable {loc} is not in scope ({context})")
        return
    raise RichWasmTypeError(f"not a location: {loc!r} ({context})")


def check_type_valid(env: FunctionEnv, ty: Type, context: str = "") -> None:
    """``F ⊢ τ type`` — all variables bound, containment constraints satisfied."""

    check_qual_valid(env, ty.qual, context)
    check_pretype_valid(env, ty.pretype, ty.qual, context)


def check_pretype_valid(env: FunctionEnv, pre: Pretype, qual: Qual, context: str = "") -> None:
    """Check a pretype under the qualifier it is annotated with."""

    if isinstance(pre, (UnitT, NumT)):
        return
    if isinstance(pre, VarT):
        if not env.type_ctx.valid(pre.index):
            raise RichWasmTypeError(f"pretype variable {pre} is not in scope ({context})")
        bounds = env.type_ctx.lookup(pre.index)
        # The variable may only be used at qualifiers >= its declared lower bound.
        if not env.qual_ctx.leq(bounds.qual_bound, qual):
            raise QualifierError(
                f"pretype variable {pre} requires qualifier >= {bounds.qual_bound}, used at {qual}"
                + (f" ({context})" if context else "")
            )
        return
    if isinstance(pre, ProdT):
        for component in pre.components:
            check_type_valid(env, component, context)
            # An unrestricted tuple may not contain linear components.
            if not env.qual_ctx.leq(component.qual, qual):
                raise QualifierError(
                    f"tuple at qualifier {qual} cannot contain component at {component.qual}"
                    + (f" ({context})" if context else "")
                )
        return
    if isinstance(pre, (RefT, CapT)):
        check_loc_valid(env, pre.loc, context)
        check_heaptype_valid(env, pre.heaptype, context)
        return
    if isinstance(pre, (PtrT, OwnT)):
        check_loc_valid(env, pre.loc, context)
        return
    if isinstance(pre, RecT):
        check_qual_valid(env, pre.qual_bound, context)
        from .sizing import REF_SIZE

        inner = env.push_type(pre.qual_bound, REF_SIZE, heapable=True)
        check_type_valid(inner, pre.body, context)
        return
    if isinstance(pre, ExLocT):
        inner = env.push_loc()
        check_type_valid(inner, pre.body, context)
        return
    if isinstance(pre, CodeRefT):
        check_funtype_valid(env, pre.funtype, context)
        return
    raise RichWasmTypeError(f"not a pretype: {pre!r} ({context})")


def check_heaptype_valid(env: FunctionEnv, ht: HeapType, context: str = "") -> None:
    """``F ⊢ ψ heaptype``."""

    if isinstance(ht, (StructHT,)):
        for field_type, field_size in ht.fields:
            check_type_valid(env, field_type, context)
            check_size_valid(env, field_size, context)
        return
    if isinstance(ht, ArrayHT):
        check_type_valid(env, ht.element, context)
        return
    if isinstance(ht, ExHT):
        check_qual_valid(env, ht.qual_bound, context)
        check_size_valid(env, ht.size_bound, context)
        inner = env.push_type(ht.qual_bound, ht.size_bound, heapable=True)
        check_type_valid(inner, ht.body, context)
        return
    # VariantHT
    for case in ht.cases:
        check_type_valid(env, case, context)


def check_funtype_valid(env: FunctionEnv, ft, context: str = "") -> None:
    """``F ⊢ χ funtype`` — quantifier bounds and the arrow are well-formed."""

    inner = env
    for quant in ft.quants:
        if isinstance(quant, LocQuant):
            inner = inner.push_loc()
        elif isinstance(quant, SizeQuant):
            for bound in (*quant.lower, *quant.upper):
                check_size_valid(inner, bound, context)
            inner = inner.push_size(quant.lower, quant.upper)
        elif isinstance(quant, QualQuant):
            for bound in (*quant.lower, *quant.upper):
                check_qual_valid(inner, bound, context)
            inner = inner.push_qual(quant.lower, quant.upper)
        elif isinstance(quant, TypeQuant):
            check_qual_valid(inner, quant.qual_bound, context)
            check_size_valid(inner, quant.size_bound, context)
            inner = inner.push_type(quant.qual_bound, quant.size_bound, quant.heapable)
        else:  # pragma: no cover - defensive
            raise RichWasmTypeError(f"not a quantifier: {quant!r}")
    for ty in (*ft.arrow.params, *ft.arrow.results):
        check_type_valid(inner, ty, context)


# ---------------------------------------------------------------------------
# no_caps
# ---------------------------------------------------------------------------


def type_no_caps(env: FunctionEnv, ty: Type) -> bool:
    """``no_caps_Ftype τ`` — the type is guaranteed capability-free."""

    return pretype_no_caps(env, ty.pretype)


def pretype_no_caps(env: FunctionEnv, pre: Pretype) -> bool:
    if isinstance(pre, (CapT, OwnT)):
        return False
    if isinstance(pre, VarT):
        if not env.type_ctx.valid(pre.index):
            return False
        return env.type_ctx.lookup(pre.index).heapable
    if isinstance(pre, ProdT):
        return all(type_no_caps(env, component) for component in pre.components)
    if isinstance(pre, RecT):
        from .sizing import REF_SIZE

        inner = env.push_type(pre.qual_bound, REF_SIZE, heapable=True)
        return type_no_caps(inner, pre.body)
    if isinstance(pre, ExLocT):
        return type_no_caps(env.push_loc(), pre.body)
    # References are fine: they pair the capability with a pointer, which is
    # exactly the form the paper requires for heap storage.
    return True


def heaptype_no_caps(env: FunctionEnv, ht: HeapType) -> bool:
    """``no_caps_Ftype ψ``."""

    if isinstance(ht, StructHT):
        return all(type_no_caps(env, t) for t in ht.field_types)
    if isinstance(ht, ArrayHT):
        return type_no_caps(env, ht.element)
    if isinstance(ht, ExHT):
        inner = env.push_type(ht.qual_bound, ht.size_bound, heapable=True)
        return type_no_caps(inner, ht.body)
    return all(type_no_caps(env, case) for case in ht.cases)


def require_type_no_caps(env: FunctionEnv, ty: Type, context: str = "") -> None:
    if not type_no_caps(env, ty):
        raise CapabilityError(
            f"type {ty} may contain a bare capability and cannot be stored on the heap"
            + (f" ({context})" if context else "")
        )


def require_heaptype_no_caps(env: FunctionEnv, ht: HeapType, context: str = "") -> None:
    if not heaptype_no_caps(env, ht):
        raise CapabilityError(
            f"heap type {ht} may contain a bare capability"
            + (f" ({context})" if context else "")
        )
