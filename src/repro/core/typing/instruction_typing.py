"""Instruction typing (paper Fig. 7).

The judgement ``S; M; F; L ⊢ e* : τ1* → τ2* | L'`` is implemented
algorithmically: the checker walks an instruction sequence with an explicit
operand stack of types and the current local environment, popping the operand
types each instruction requires and pushing its results.  Linearity is
enforced at every point where a value could be duplicated or dropped:

* ``drop``/``select`` and dead store of locals require unrestricted operands;
* ``get_local`` of a linear slot strongly updates the slot to ``unit``;
* branches require every value they would implicitly discard — both on the
  visible stack and on the stacks of enclosing blocks (tracked by the linear
  environment) — to be unrestricted;
* struct/variant/array/existential operations enforce the size and
  ``no_caps`` side conditions of Fig. 7.

Entering a binder (``mem.unpack`` opens a location variable,
``exist.unpack`` opens a pretype variable) shifts the whole checker state
into the extended context, mirroring the paper's de Bruijn discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..syntax.instructions import (
    ArrayFree,
    ArrayGet,
    ArrayMalloc,
    ArraySet,
    Block,
    Br,
    BrIf,
    BrTable,
    Call,
    CallIndirect,
    CapJoin,
    CapSplit,
    CodeRefI,
    Drop,
    ExistPack,
    ExistUnpack,
    GetGlobal,
    GetLocal,
    If,
    Inst,
    Instr,
    IntTestop,
    Loop,
    MemPack,
    MemUnpack,
    Nop,
    NumBinop,
    NumConst,
    NumCvtop,
    NumRelop,
    NumTestop,
    NumUnop,
    Qualify,
    RecFold,
    RecUnfold,
    RefDemote,
    RefJoin,
    RefSplit,
    Return,
    Select,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    StructFree,
    StructGet,
    StructMalloc,
    StructSet,
    StructSwap,
    TeeLocal,
    Unreachable,
    VariantCase,
    VariantMalloc,
)
from ..syntax.locations import ConcreteLoc, LocVar, MemKind
from ..syntax.qualifiers import LIN, UNR, Qual
from ..syntax.sizes import SizeConst
from ..syntax.types import (
    ArrayHT,
    ArrowType,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    FunType,
    HeapType,
    Index,
    LocIndex,
    LocQuant,
    NumT,
    NumType,
    OwnT,
    PretypeIndex,
    Pretype,
    Privilege,
    ProdT,
    PtrT,
    QualIndex,
    QualQuant,
    RecT,
    RefT,
    Shift,
    SizeIndex,
    SizeQuant,
    StructHT,
    Subst,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    VariantHT,
    instantiate_funtype,
    shift_type,
    subst_pretype,
    subst_type,
    unfold_rec,
)
from ..syntax.values import (
    CapV,
    CoderefV,
    FoldV,
    MempackV,
    NumV,
    OwnV,
    ProdV,
    PtrV,
    RefV,
    UnitV,
    Value,
)
from ..syntax import intern as _intern
from .constraints import QualContext
from .env import FunctionEnv, LabelInfo, LinearUse, LocalEnv, LocalSlot, ModuleEnv, StoreTyping
from .equality import heaptypes_equal, pretypes_equal, type_lists_equal, types_equal
from .errors import (
    CapabilityError,
    LinearityError,
    LocalTypeError,
    QualifierError,
    RichWasmTypeError,
    SizeError,
    StackTypeError,
)
from .sizing import size_of_pretype, size_of_type
from .validity import (
    check_funtype_valid,
    check_qual_valid,
    check_type_valid,
    require_heaptype_no_caps,
    require_type_no_caps,
    type_no_caps,
)
from .value_typing import check_value


# ---------------------------------------------------------------------------
# Checker state
# ---------------------------------------------------------------------------


@dataclass
class TypingState:
    """The mutable state threaded through a block: stack, locals, liveness."""

    stack: list[Type]
    local_env: LocalEnv
    dead: bool = False


#: Interned singletons for the types the checker synthesizes constantly.
_UNIT_UNR = Type(UnitT(), UNR)
_NUM_UNR = {numtype: Type(NumT(numtype), UNR) for numtype in NumType}


def _unit_unr() -> Type:
    """``unit^unr`` — the pre-built singleton, except in the interning-off
    baseline mode, which reconstructs per call like the pre-refactor
    checker (keeping the benchmark comparison honest)."""

    if _intern._ENABLED:
        return _UNIT_UNR
    return Type(UnitT(), UNR)


def _num_unr(numtype: NumType) -> Type:
    if _intern._ENABLED:
        return _NUM_UNR[numtype]
    return Type(NumT(numtype), UNR)

#: Shared shift descriptors for the two binder-introducing instructions.
_SHIFT_NONE = Shift()
_SHIFT_LOCS1 = Shift(locs=1)
_SHIFT_TYPES1 = Shift(types=1)


def _shift_local_env(env: LocalEnv, shift: Shift) -> LocalEnv:
    # Interned closed types shift to themselves; when no slot changes (the
    # common case — locals rarely mention binder variables) keep the whole
    # environment object, sparing the rebuild and downstream comparisons.
    slots = []
    changed = False
    for slot in env.slots:
        shifted = shift_type(slot.type, shift)
        if shifted is slot.type:
            slots.append(slot)
        else:
            slots.append(LocalSlot(shifted, slot.size))
            changed = True
    return LocalEnv(tuple(slots)) if changed else env


def _shift_types(types: tuple, shift: Shift) -> tuple:
    shifted = tuple(shift_type(t, shift) for t in types)
    return types if all(a is b for a, b in zip(shifted, types)) else shifted


def _shift_function_env(fenv: FunctionEnv, shift: Shift) -> FunctionEnv:
    changed = False
    labels = []
    for label in fenv.labels:
        arg_types = _shift_types(label.arg_types, shift)
        local_env = _shift_local_env(label.local_env, shift)
        if arg_types is label.arg_types and local_env is label.local_env:
            labels.append(label)
        else:
            labels.append(LabelInfo(arg_types, local_env))
            changed = True
    returns = fenv.return_types
    if returns is not None:
        returns = _shift_types(returns, shift)
        changed = changed or returns is not fenv.return_types
    if not changed:
        return fenv
    return replace(fenv, labels=tuple(labels), return_types=returns)


#: Resolved ``(checker class, instruction class) -> unbound method`` dispatch
#: memo — the per-instruction ``getattr(f"_check_{...}")`` lookup showed up
#: in the checker profile.
_DISPATCH: dict = {}


class InstructionChecker:
    """Checks instruction sequences against the typing rules of Fig. 7."""

    def __init__(
        self,
        store_typing: StoreTyping,
        module_env: ModuleEnv,
        *,
        allow_caps_in_linear_memory: bool = True,
        observer=None,
    ) -> None:
        self.store_typing = store_typing
        self.module_env = module_env
        #: §5 describes a relaxed rule where capabilities may be stored in the
        #: manually-managed (linear) part of the heap; the strict formalized
        #: rule forbids capabilities on the heap everywhere.
        self.allow_caps_in_linear_memory = allow_caps_in_linear_memory
        #: Optional callback ``observer(instr, stack, local_env)`` invoked
        #: before each instruction is checked, in traversal order.  The
        #: type-directed lowering pass (paper §6) uses this to obtain the
        #: operand types of every instruction without re-implementing typing.
        self.observer = observer

    # -- public entry points -------------------------------------------------

    def check_body(
        self,
        fenv: FunctionEnv,
        local_env: LocalEnv,
        body: Sequence[Instr],
        params: Sequence[Type],
        results: Sequence[Type],
    ) -> LocalEnv:
        """Check ``body : params → results | L'`` and return the final ``L'``."""

        state = TypingState(stack=list(params), local_env=local_env)
        for instr in body:
            self.check_instr(fenv, state, instr)
        if not state.dead:
            self._check_final_stack(fenv, state, results)
        return state.local_env

    # -- stack helpers --------------------------------------------------------

    def _pop(self, fenv: FunctionEnv, state: TypingState, what: str = "operand") -> Type:
        if state.dead:
            # Dead code: synthesize an unrestricted unit; it will never run.
            return _unit_unr()
        if not state.stack:
            raise StackTypeError(f"stack underflow: expected {what}, stack is empty")
        return state.stack.pop()

    def _pop_expect(self, fenv: FunctionEnv, state: TypingState, expected: Type, what: str) -> Type:
        actual = self._pop(fenv, state, what)
        if state.dead:
            return expected
        if not types_equal(actual, expected):
            raise StackTypeError(f"expected {expected} for {what}, found {actual}")
        return actual

    def _pop_many(self, fenv: FunctionEnv, state: TypingState, count: int, what: str) -> list[Type]:
        popped = [self._pop(fenv, state, what) for _ in range(count)]
        popped.reverse()
        return popped

    def _pop_expect_many(
        self, fenv: FunctionEnv, state: TypingState, expected: Sequence[Type], what: str
    ) -> None:
        for ty in reversed(list(expected)):
            self._pop_expect(fenv, state, ty, what)

    def _push(self, state: TypingState, *types: Type) -> None:
        if state.dead:
            return
        state.stack.extend(types)

    def _pop_num(self, fenv: FunctionEnv, state: TypingState, numtype: NumType, what: str) -> None:
        self._pop_expect(fenv, state, _num_unr(numtype), what)

    def _check_final_stack(self, fenv: FunctionEnv, state: TypingState, results: Sequence[Type]) -> None:
        if len(state.stack) != len(results) or not type_lists_equal(state.stack, list(results)):
            raise StackTypeError(
                "block does not leave the declared result types on the stack: "
                f"expected {[str(t) for t in results]}, found {[str(t) for t in state.stack]}"
            )

    def _stack_qual_join(self, fenv: FunctionEnv, types: Sequence[Type]) -> Qual:
        return fenv.qual_ctx.join([t.qual for t in types])

    def _require_unrestricted(self, fenv: FunctionEnv, ty: Type, action: str) -> None:
        if not fenv.qual_ctx.leq(ty.qual, UNR):
            raise LinearityError(f"cannot {action} a potentially linear value of type {ty}")

    # -- block helpers --------------------------------------------------------

    def _check_nested_block(
        self,
        fenv: FunctionEnv,
        state: TypingState,
        arrow: ArrowType,
        effects,
        bodies: Sequence[Sequence[Instr]],
        *,
        extra_stack_types: Sequence[Sequence[Type]] = ((),),
        extra_frame_quals: Sequence[Qual] = (),
        loop: bool = False,
        binder_shift: Optional[Shift] = None,
        binder_push: Optional[str] = None,
        binder_args: tuple = (),
    ) -> None:
        """Shared logic for every block-introducing instruction.

        ``bodies`` are the alternative bodies (one for ``block``, two for
        ``if``, N for ``variant.case``); ``extra_stack_types[i]`` is appended
        to the block parameters for body ``i`` (the variant payload / the
        unpacked value).  ``extra_frame_quals`` are qualifiers of values that
        are conceptually parked below the block while it runs (e.g. the
        variant reference in the unrestricted case) and therefore must be
        treated as part of the enclosing frame for branch purposes.
        """

        self._pop_expect_many(fenv, state, arrow.params, "block parameter")
        if state.dead:
            return

        rest_qual = self._stack_qual_join(fenv, state.stack)
        frame_qual = fenv.qual_ctx.join([rest_qual, fenv.linear_head(), *extra_frame_quals])

        local_env = state.local_env
        result_env = local_env.apply_effects(effects)

        inner_fenv = fenv
        inner_shift = _SHIFT_NONE
        if binder_push == "loc":
            inner_shift = _SHIFT_LOCS1
        elif binder_push == "type":
            inner_shift = _SHIFT_TYPES1
        if not inner_shift.is_zero():
            inner_fenv = _shift_function_env(inner_fenv, inner_shift)
        if binder_push == "loc":
            inner_fenv = inner_fenv.push_loc()
        elif binder_push == "type":
            qual_bound, size_bound, heapable = binder_args
            inner_fenv = inner_fenv.push_type(qual_bound, size_bound, heapable)

        inner_params_base = [shift_type(t, inner_shift) for t in arrow.params]
        inner_results = [shift_type(t, inner_shift) for t in arrow.results]
        label_args = inner_params_base if loop else inner_results
        inner_result_env = _shift_local_env(result_env, inner_shift)
        inner_start_env = _shift_local_env(local_env, inner_shift)

        label_env = inner_start_env if loop else inner_result_env
        inner_fenv = inner_fenv.push_label(label_args, label_env)
        inner_fenv = inner_fenv.set_linear_head(UNR)
        # Record the enclosing frame's linearity one level out (index 1).
        new_linear = list(inner_fenv.linear)
        if len(new_linear) >= 2:
            new_linear[1] = frame_qual
        else:
            new_linear = [new_linear[0] if new_linear else UNR, frame_qual]
        inner_fenv = inner_fenv._with(linear=tuple(new_linear))

        for body, extra in zip(bodies, extra_stack_types):
            # ``extra`` types are supplied by the caller already expressed in
            # the *inner* scope (an opened existential body refers to the new
            # binder as index 0), so they are not shifted again here.
            final_env = self.check_body(
                inner_fenv,
                inner_start_env,
                body,
                [*inner_params_base, *extra],
                inner_results,
            )
            # The body must realize exactly the declared local effects, unless
            # it ended in dead code (in which case check_body already skipped
            # the stack check and the locals are unconstrained).
            self._check_local_envs_compatible(inner_fenv, final_env, inner_result_env)

        state.local_env = result_env
        self._push(state, *arrow.results)

    def _check_local_envs_compatible(
        self, fenv: FunctionEnv, actual: LocalEnv, expected: LocalEnv
    ) -> None:
        if actual is expected:
            return
        if len(actual) != len(expected):
            raise LocalTypeError(
                f"block changes the number of locals ({len(actual)} vs {len(expected)})"
            )
        for index, (actual_slot, expected_slot) in enumerate(zip(actual, expected)):
            if types_equal(actual_slot.type, expected_slot.type):
                continue
            # A slot holding a linear value that the effect annotation does not
            # mention is a linearity leak; a mismatch on unrestricted slots is
            # tolerated only if both sides are unrestricted (the value can be
            # dropped / defaulted), matching the paper's use of local effects
            # to *prescribe* every linear change.
            actual_unr = fenv.qual_ctx.leq(actual_slot.type.qual, UNR)
            expected_unr = fenv.qual_ctx.leq(expected_slot.type.qual, UNR)
            if actual_unr and expected_unr:
                continue
            raise LocalTypeError(
                f"local slot {index} ends the block at {actual_slot.type} but the local-effect"
                f" annotation declares {expected_slot.type}"
            )

    # -- branches -------------------------------------------------------------

    def _check_branch(self, fenv: FunctionEnv, state: TypingState, depth: int, *, conditional: bool) -> None:
        label = fenv.label(depth)
        if state.dead:
            return
        # The branch arguments must be on top of the stack.
        args = list(label.arg_types)
        if len(state.stack) < len(args):
            raise StackTypeError(
                f"branch to depth {depth} needs {len(args)} argument(s), stack has {len(state.stack)}"
            )
        top = state.stack[len(state.stack) - len(args):] if args else []
        if args and not type_lists_equal(top, args):
            raise StackTypeError(
                f"branch to depth {depth} expects {[str(t) for t in args]} on the stack, "
                f"found {[str(t) for t in top]}"
            )
        # Everything below the branch arguments is dropped by the jump, as is
        # every enclosing frame region tracked by the linear environment.
        dropped = state.stack[: len(state.stack) - len(args)]
        for ty in dropped:
            if not fenv.qual_ctx.leq(ty.qual, UNR):
                raise LinearityError(
                    f"branch to depth {depth} would drop a linear value of type {ty}"
                )
        for qual in fenv.linear_join_up_to(depth)[1:]:
            if not fenv.qual_ctx.leq(qual, UNR):
                raise LinearityError(
                    f"branch to depth {depth} would jump over linear values on an enclosing stack"
                )
        # Every jump to a label must agree on the types of locals.
        self._check_local_envs_compatible(fenv, state.local_env, label.local_env)
        if not conditional:
            state.dead = True

    # -- instruction dispatch --------------------------------------------------

    def check_instr(self, fenv: FunctionEnv, state: TypingState, instr: Instr) -> None:
        """Type-check one instruction, updating ``state`` in place."""

        if self.observer is not None:
            self.observer(instr, tuple(state.stack), state.local_env)
        instr_cls = type(instr)
        key = (type(self), instr_cls)
        method = _DISPATCH.get(key)
        if method is None:
            method = getattr(type(self), f"_check_{instr_cls.__name__}", None)
            if method is None:
                if isinstance(instr, (UnitV, NumV, ProdV, RefV, PtrV, CapV, OwnV, FoldV, MempackV, CoderefV)):
                    method = type(self)._check_inline_value
                else:
                    raise RichWasmTypeError(f"no typing rule for instruction {instr!r}")
            _DISPATCH[key] = method
        method(self, fenv, state, instr)

    # Values may appear directly in instruction sequences (Fig. 2: e ::= v | ...).
    def _check_inline_value(self, fenv: FunctionEnv, state: TypingState, value: Value) -> None:
        from .value_typing import synthesize_value_type

        ty = synthesize_value_type(self.store_typing, value)
        self._push(state, ty)

    # -- numeric -------------------------------------------------------------

    def _check_NumConst(self, fenv: FunctionEnv, state: TypingState, instr: NumConst) -> None:
        self._push(state, _num_unr(instr.numtype))

    def _check_NumUnop(self, fenv: FunctionEnv, state: TypingState, instr: NumUnop) -> None:
        self._pop_num(fenv, state, instr.numtype, f"{instr.numtype}.{instr.op.value} operand")
        self._push(state, _num_unr(instr.numtype))

    def _check_NumBinop(self, fenv: FunctionEnv, state: TypingState, instr: NumBinop) -> None:
        self._pop_num(fenv, state, instr.numtype, f"{instr.numtype}.{instr.op.value} rhs")
        self._pop_num(fenv, state, instr.numtype, f"{instr.numtype}.{instr.op.value} lhs")
        self._push(state, _num_unr(instr.numtype))

    def _check_NumTestop(self, fenv: FunctionEnv, state: TypingState, instr: NumTestop) -> None:
        self._pop_num(fenv, state, instr.numtype, "testop operand")
        self._push(state, _num_unr(NumType.I32))

    def _check_NumRelop(self, fenv: FunctionEnv, state: TypingState, instr: NumRelop) -> None:
        self._pop_num(fenv, state, instr.numtype, "relop rhs")
        self._pop_num(fenv, state, instr.numtype, "relop lhs")
        self._push(state, _num_unr(NumType.I32))

    def _check_NumCvtop(self, fenv: FunctionEnv, state: TypingState, instr: NumCvtop) -> None:
        self._pop_num(fenv, state, instr.source, "conversion operand")
        self._push(state, _num_unr(instr.target))

    # -- parametric / control --------------------------------------------------

    def _check_Unreachable(self, fenv: FunctionEnv, state: TypingState, instr: Unreachable) -> None:
        state.dead = True

    def _check_Nop(self, fenv: FunctionEnv, state: TypingState, instr: Nop) -> None:
        return

    def _check_Drop(self, fenv: FunctionEnv, state: TypingState, instr: Drop) -> None:
        ty = self._pop(fenv, state, "drop operand")
        if not state.dead:
            self._require_unrestricted(fenv, ty, "drop")

    def _check_Select(self, fenv: FunctionEnv, state: TypingState, instr: Select) -> None:
        self._pop_num(fenv, state, NumType.I32, "select condition")
        second = self._pop(fenv, state, "select operand")
        first = self._pop(fenv, state, "select operand")
        if not state.dead:
            if not types_equal(first, second):
                raise StackTypeError(f"select operands have different types: {first} vs {second}")
            self._require_unrestricted(fenv, first, "select between")
        self._push(state, first)

    def _check_Block(self, fenv: FunctionEnv, state: TypingState, instr: Block) -> None:
        self._check_nested_block(fenv, state, instr.arrow, instr.effects, [instr.body])

    def _check_Loop(self, fenv: FunctionEnv, state: TypingState, instr: Loop) -> None:
        self._check_nested_block(fenv, state, instr.arrow, (), [instr.body], loop=True)

    def _check_If(self, fenv: FunctionEnv, state: TypingState, instr: If) -> None:
        self._pop_num(fenv, state, NumType.I32, "if condition")
        self._check_nested_block(
            fenv,
            state,
            instr.arrow,
            instr.effects,
            [instr.then_body, instr.else_body],
            extra_stack_types=((), ()),
        )

    def _check_Br(self, fenv: FunctionEnv, state: TypingState, instr: Br) -> None:
        self._check_branch(fenv, state, instr.depth, conditional=False)

    def _check_BrIf(self, fenv: FunctionEnv, state: TypingState, instr: BrIf) -> None:
        self._pop_num(fenv, state, NumType.I32, "br_if condition")
        self._check_branch(fenv, state, instr.depth, conditional=True)

    def _check_BrTable(self, fenv: FunctionEnv, state: TypingState, instr: BrTable) -> None:
        self._pop_num(fenv, state, NumType.I32, "br_table index")
        for depth in (*instr.depths, instr.default):
            self._check_branch(fenv, state, depth, conditional=True)
        state.dead = True

    def _check_Return(self, fenv: FunctionEnv, state: TypingState, instr: Return) -> None:
        if fenv.return_types is None:
            raise RichWasmTypeError("return outside of a function body")
        if state.dead:
            return
        results = list(fenv.return_types)
        if len(state.stack) < len(results):
            raise StackTypeError(
                f"return needs {len(results)} value(s), stack has {len(state.stack)}"
            )
        top = state.stack[len(state.stack) - len(results):] if results else []
        if results and not type_lists_equal(top, results):
            raise StackTypeError(
                f"return expects {[str(t) for t in results]}, found {[str(t) for t in top]}"
            )
        for ty in state.stack[: len(state.stack) - len(results)]:
            if not fenv.qual_ctx.leq(ty.qual, UNR):
                raise LinearityError(f"return would drop a linear value of type {ty}")
        for qual in fenv.linear[1:]:
            if not fenv.qual_ctx.leq(qual, UNR):
                raise LinearityError("return would jump over linear values on an enclosing stack")
        state.dead = True

    # -- locals & globals ------------------------------------------------------

    def _check_GetLocal(self, fenv: FunctionEnv, state: TypingState, instr: GetLocal) -> None:
        slot = state.local_env.get(instr.index)
        ty = slot.type
        if fenv.qual_ctx.leq(ty.qual, UNR):
            # Unrestricted slot: the value is copied, slot keeps its type.
            self._push(state, ty)
        else:
            # Linear slot: the value is moved out, the slot becomes unit.
            self._push(state, ty)
            state.local_env = state.local_env.set_type(instr.index, _unit_unr())

    def _check_SetLocal(self, fenv: FunctionEnv, state: TypingState, instr: SetLocal) -> None:
        ty = self._pop(fenv, state, "set_local operand")
        if state.dead:
            return
        slot = state.local_env.get(instr.index)
        if not fenv.qual_ctx.leq(slot.type.qual, UNR):
            raise LinearityError(
                f"set_local {instr.index} would overwrite a linear value of type {slot.type}"
            )
        new_size = size_of_type(ty, fenv.type_ctx)
        if not fenv.size_ctx.leq(new_size, slot.size):
            raise SizeError(
                f"value of type {ty} (size {new_size}) does not fit local slot {instr.index}"
                f" of size {slot.size}"
            )
        state.local_env = state.local_env.set_type(instr.index, ty)

    def _check_TeeLocal(self, fenv: FunctionEnv, state: TypingState, instr: TeeLocal) -> None:
        ty = self._pop(fenv, state, "tee_local operand")
        if not state.dead:
            self._require_unrestricted(fenv, ty, "duplicate (tee_local)")
            slot = state.local_env.get(instr.index)
            if not fenv.qual_ctx.leq(slot.type.qual, UNR):
                raise LinearityError(
                    f"tee_local {instr.index} would overwrite a linear value of type {slot.type}"
                )
            new_size = size_of_type(ty, fenv.type_ctx)
            if not fenv.size_ctx.leq(new_size, slot.size):
                raise SizeError(
                    f"value of type {ty} does not fit local slot {instr.index} of size {slot.size}"
                )
            state.local_env = state.local_env.set_type(instr.index, ty)
        self._push(state, ty)

    def _check_GetGlobal(self, fenv: FunctionEnv, state: TypingState, instr: GetGlobal) -> None:
        global_type = self.module_env.global_(instr.index)
        self._push(state, Type(global_type.pretype, UNR))

    def _check_SetGlobal(self, fenv: FunctionEnv, state: TypingState, instr: SetGlobal) -> None:
        global_type = self.module_env.global_(instr.index)
        if not global_type.mutable:
            raise RichWasmTypeError(f"set_global {instr.index}: global is immutable")
        self._pop_expect(fenv, state, Type(global_type.pretype, UNR), "set_global operand")

    def _check_Qualify(self, fenv: FunctionEnv, state: TypingState, instr: Qualify) -> None:
        check_qual_valid(fenv, instr.qual, "qualify")
        ty = self._pop(fenv, state, "qualify operand")
        if not state.dead:
            if not fenv.qual_ctx.leq(ty.qual, instr.qual):
                raise QualifierError(
                    f"qualify cannot weaken {ty.qual} to {instr.qual} (only strengthening is allowed)"
                )
        self._push(state, Type(ty.pretype, instr.qual))

    # -- functions -------------------------------------------------------------

    def _check_CodeRefI(self, fenv: FunctionEnv, state: TypingState, instr: CodeRefI) -> None:
        funtype = self.module_env.table_entry(instr.table_index)
        self._push(state, Type(CodeRefT(funtype), UNR))

    def _check_Inst(self, fenv: FunctionEnv, state: TypingState, instr: Inst) -> None:
        ty = self._pop(fenv, state, "inst operand")
        if state.dead:
            self._push(state, ty)
            return
        if not isinstance(ty.pretype, CodeRefT):
            raise StackTypeError(f"inst expects a coderef on the stack, found {ty}")
        funtype = ty.pretype.funtype
        self._check_indices(fenv, funtype, instr.indices)
        arrow = instantiate_funtype(funtype, instr.indices)
        self._push(state, Type(CodeRefT(FunType((), arrow)), ty.qual))

    def _check_Call(self, fenv: FunctionEnv, state: TypingState, instr: Call) -> None:
        funtype = self.module_env.func(instr.func_index)
        self._check_indices(fenv, funtype, instr.indices)
        arrow = instantiate_funtype(funtype, instr.indices)
        self._pop_expect_many(fenv, state, arrow.params, f"call {instr.func_index} argument")
        self._push(state, *arrow.results)

    def _check_CallIndirect(self, fenv: FunctionEnv, state: TypingState, instr: CallIndirect) -> None:
        ty = self._pop(fenv, state, "call_indirect target")
        if state.dead:
            return
        if not isinstance(ty.pretype, CodeRefT):
            raise StackTypeError(f"call_indirect expects a coderef on the stack, found {ty}")
        funtype = ty.pretype.funtype
        if funtype.quants:
            raise RichWasmTypeError(
                "call_indirect target still has uninstantiated quantifiers; use inst first"
            )
        self._pop_expect_many(fenv, state, funtype.arrow.params, "call_indirect argument")
        self._push(state, *funtype.arrow.results)

    def _check_indices(self, fenv: FunctionEnv, funtype: FunType, indices: Sequence[Index]) -> None:
        """Check concrete instantiations against the quantifier bounds."""

        if len(indices) != len(funtype.quants):
            raise RichWasmTypeError(
                f"instantiation supplies {len(indices)} indices for {len(funtype.quants)} quantifiers"
            )
        # Build up a substitution mapping earlier binders to their indices so
        # later bounds can be checked concretely.  Quantifiers are bound
        # left-to-right; index 0 refers to the *innermost* (rightmost) binder,
        # so earlier binders have higher indices within later bounds.  We
        # check each bound after substituting every index (which is sound
        # because substitution of unrelated namespaces commutes).
        subst = Subst()
        loc_i = size_i = qual_i = type_i = 0
        for quant, index in zip(reversed(funtype.quants), reversed(list(indices))):
            if isinstance(quant, LocQuant):
                if not isinstance(index, LocIndex):
                    raise RichWasmTypeError(f"expected a location index for {quant}")
                subst.locs[loc_i] = index.loc
                loc_i += 1
            elif isinstance(quant, SizeQuant):
                if not isinstance(index, SizeIndex):
                    raise RichWasmTypeError(f"expected a size index for {quant}")
                subst.sizes[size_i] = index.size
                size_i += 1
            elif isinstance(quant, QualQuant):
                if not isinstance(index, QualIndex):
                    raise RichWasmTypeError(f"expected a qualifier index for {quant}")
                subst.quals[qual_i] = index.qual
                qual_i += 1
            elif isinstance(quant, TypeQuant):
                if not isinstance(index, PretypeIndex):
                    raise RichWasmTypeError(f"expected a pretype index for {quant}")
                subst.types[type_i] = index.pretype
                type_i += 1
        from ..syntax.sizes import substitute_size
        from ..syntax.qualifiers import substitute_qual

        for quant, index in zip(funtype.quants, indices):
            if isinstance(quant, SizeQuant) and isinstance(index, SizeIndex):
                for lower in quant.lower:
                    fenv.size_ctx.require_leq(
                        substitute_size(lower, subst.sizes), index.size, "size quantifier lower bound"
                    )
                for upper in quant.upper:
                    fenv.size_ctx.require_leq(
                        index.size, substitute_size(upper, subst.sizes), "size quantifier upper bound"
                    )
            elif isinstance(quant, QualQuant) and isinstance(index, QualIndex):
                for lower in quant.lower:
                    fenv.qual_ctx.require_leq(
                        substitute_qual(lower, subst.quals), index.qual, "qualifier quantifier lower bound"
                    )
                for upper in quant.upper:
                    fenv.qual_ctx.require_leq(
                        index.qual, substitute_qual(upper, subst.quals), "qualifier quantifier upper bound"
                    )
            elif isinstance(quant, TypeQuant) and isinstance(index, PretypeIndex):
                pre = subst_pretype(index.pretype, subst)
                size = size_of_pretype(pre, fenv.type_ctx)
                bound = substitute_size(quant.size_bound, subst.sizes)
                if not fenv.size_ctx.leq(size, bound):
                    raise SizeError(
                        f"pretype instantiation {pre} has size {size}, exceeding the bound {bound}"
                    )
                if not quant.heapable:
                    continue
                if not type_no_caps(fenv, Type(pre, UNR)):
                    raise CapabilityError(
                        f"pretype instantiation {pre} may contain capabilities but the quantifier"
                        " requires a capability-free type"
                    )

    # -- recursive & existential types ------------------------------------------

    def _check_RecFold(self, fenv: FunctionEnv, state: TypingState, instr: RecFold) -> None:
        if not isinstance(instr.pretype, RecT):
            raise RichWasmTypeError(f"rec.fold annotation must be a recursive pretype, got {instr.pretype}")
        ty = self._pop(fenv, state, "rec.fold operand")
        if state.dead:
            self._push(state, Type(instr.pretype, UNR))
            return
        expected_unfolded = unfold_rec(instr.pretype, ty.qual)
        if not pretypes_equal(ty.pretype, expected_unfolded.pretype):
            raise StackTypeError(
                f"rec.fold expects the unfolding {expected_unfolded.pretype} on the stack, found {ty.pretype}"
            )
        if not fenv.qual_ctx.leq(instr.pretype.qual_bound, ty.qual):
            raise QualifierError(
                f"recursive type bound {instr.pretype.qual_bound} not satisfied at qualifier {ty.qual}"
            )
        self._push(state, Type(instr.pretype, ty.qual))

    def _check_RecUnfold(self, fenv: FunctionEnv, state: TypingState, instr: RecUnfold) -> None:
        ty = self._pop(fenv, state, "rec.unfold operand")
        if state.dead:
            self._push(state, ty)
            return
        if not isinstance(ty.pretype, RecT):
            raise StackTypeError(f"rec.unfold expects a recursive type, found {ty}")
        unfolded = unfold_rec(ty.pretype, ty.qual)
        self._push(state, unfolded.with_qual(ty.qual))

    def _check_MemPack(self, fenv: FunctionEnv, state: TypingState, instr: MemPack) -> None:
        ty = self._pop(fenv, state, "mem.pack operand")
        if state.dead:
            self._push(state, ty)
            return
        abstracted = _abstract_location(ty, instr.loc)
        self._push(state, Type(ExLocT(abstracted), ty.qual))

    def _check_MemUnpack(self, fenv: FunctionEnv, state: TypingState, instr: MemUnpack) -> None:
        packed = self._pop(fenv, state, "mem.unpack operand")
        if state.dead:
            self._push(state, *instr.arrow.results)
            return
        if not isinstance(packed.pretype, ExLocT):
            raise StackTypeError(f"mem.unpack expects an existential location package, found {packed}")
        body_type = packed.pretype.body.with_qual(packed.pretype.body.qual)
        self._check_nested_block(
            fenv,
            state,
            instr.arrow,
            instr.effects,
            [instr.body],
            extra_stack_types=[[body_type]],
            binder_push="loc",
        )

    # -- tuples ------------------------------------------------------------------

    def _check_SeqGroup(self, fenv: FunctionEnv, state: TypingState, instr: SeqGroup) -> None:
        check_qual_valid(fenv, instr.qual, "seq.group")
        components = self._pop_many(fenv, state, instr.count, "seq.group operand")
        if not state.dead:
            for component in components:
                if not fenv.qual_ctx.leq(component.qual, instr.qual):
                    raise QualifierError(
                        f"tuple at {instr.qual} cannot contain a component at {component.qual}"
                    )
        self._push(state, Type(ProdT(tuple(components)), instr.qual))

    def _check_SeqUngroup(self, fenv: FunctionEnv, state: TypingState, instr: SeqUngroup) -> None:
        ty = self._pop(fenv, state, "seq.ungroup operand")
        if state.dead:
            return
        if not isinstance(ty.pretype, ProdT):
            raise StackTypeError(f"seq.ungroup expects a tuple, found {ty}")
        self._push(state, *ty.pretype.components)

    # -- capabilities, pointers, references ---------------------------------------

    def _check_CapSplit(self, fenv: FunctionEnv, state: TypingState, instr: CapSplit) -> None:
        ty = self._pop(fenv, state, "cap.split operand")
        if state.dead:
            return
        if not isinstance(ty.pretype, CapT) or ty.pretype.privilege is not Privilege.RW:
            raise StackTypeError(f"cap.split expects a read-write capability, found {ty}")
        self._push(
            state,
            Type(CapT(Privilege.R, ty.pretype.loc, ty.pretype.heaptype), ty.qual),
            Type(OwnT(ty.pretype.loc), ty.qual),
        )

    def _check_CapJoin(self, fenv: FunctionEnv, state: TypingState, instr: CapJoin) -> None:
        own_ty = self._pop(fenv, state, "cap.join own token")
        cap_ty = self._pop(fenv, state, "cap.join capability")
        if state.dead:
            return
        if not isinstance(own_ty.pretype, OwnT):
            raise StackTypeError(f"cap.join expects an ownership token on top, found {own_ty}")
        if not isinstance(cap_ty.pretype, CapT) or cap_ty.pretype.privilege is not Privilege.R:
            raise StackTypeError(f"cap.join expects a read-only capability, found {cap_ty}")
        if cap_ty.pretype.loc != own_ty.pretype.loc:
            raise RichWasmTypeError(
                f"cap.join: capability for {cap_ty.pretype.loc} but ownership of {own_ty.pretype.loc}"
            )
        self._push(state, Type(CapT(Privilege.RW, cap_ty.pretype.loc, cap_ty.pretype.heaptype), cap_ty.qual))

    def _check_RefDemote(self, fenv: FunctionEnv, state: TypingState, instr: RefDemote) -> None:
        ty = self._pop(fenv, state, "ref.demote operand")
        if state.dead:
            return
        if not isinstance(ty.pretype, RefT):
            raise StackTypeError(f"ref.demote expects a reference, found {ty}")
        self._push(state, Type(RefT(Privilege.R, ty.pretype.loc, ty.pretype.heaptype), ty.qual))

    def _check_RefSplit(self, fenv: FunctionEnv, state: TypingState, instr: RefSplit) -> None:
        ty = self._pop(fenv, state, "ref.split operand")
        if state.dead:
            return
        if not isinstance(ty.pretype, RefT):
            raise StackTypeError(f"ref.split expects a reference, found {ty}")
        self._push(
            state,
            Type(CapT(ty.pretype.privilege, ty.pretype.loc, ty.pretype.heaptype), ty.qual),
            Type(PtrT(ty.pretype.loc), UNR),
        )

    def _check_RefJoin(self, fenv: FunctionEnv, state: TypingState, instr: RefJoin) -> None:
        ptr_ty = self._pop(fenv, state, "ref.join pointer")
        cap_ty = self._pop(fenv, state, "ref.join capability")
        if state.dead:
            return
        if not isinstance(ptr_ty.pretype, PtrT):
            raise StackTypeError(f"ref.join expects a pointer on top, found {ptr_ty}")
        if not isinstance(cap_ty.pretype, CapT):
            raise StackTypeError(f"ref.join expects a capability below the pointer, found {cap_ty}")
        if cap_ty.pretype.loc != ptr_ty.pretype.loc:
            raise RichWasmTypeError(
                f"ref.join: capability for {cap_ty.pretype.loc} but pointer to {ptr_ty.pretype.loc}"
            )
        self._push(
            state,
            Type(RefT(cap_ty.pretype.privilege, cap_ty.pretype.loc, cap_ty.pretype.heaptype), cap_ty.qual),
        )

    # -- structs -------------------------------------------------------------------

    def _require_storable(self, fenv: FunctionEnv, ty: Type, qual: Qual, what: str) -> None:
        """Apply the heap-storage (``no_caps``) restriction to a stored type.

        Under the strict rule capabilities may never be stored on the heap;
        under the relaxed rule (§5) they may be stored in the linear memory,
        i.e. whenever the allocation qualifier is linear.
        """

        if self.allow_caps_in_linear_memory and fenv.qual_ctx.leq(LIN, qual):
            return
        require_type_no_caps(fenv, ty, what)

    def _check_StructMalloc(self, fenv: FunctionEnv, state: TypingState, instr: StructMalloc) -> None:
        check_qual_valid(fenv, instr.qual, "struct.malloc")
        field_types = self._pop_many(fenv, state, len(instr.sizes), "struct.malloc field")
        if not state.dead:
            for field_type, field_size in zip(field_types, instr.sizes):
                actual = size_of_type(field_type, fenv.type_ctx)
                if not fenv.size_ctx.leq(actual, field_size):
                    raise SizeError(
                        f"struct field of type {field_type} (size {actual}) does not fit the"
                        f" declared slot size {field_size}"
                    )
                self._require_storable(fenv, field_type, instr.qual, "struct.malloc field")
        heaptype = StructHT(tuple(zip(field_types, instr.sizes)))
        self._push(state, _existential_ref(heaptype, instr.qual))

    def _check_StructFree(self, fenv: FunctionEnv, state: TypingState, instr: StructFree) -> None:
        ty = self._pop(fenv, state, "struct.free operand")
        if state.dead:
            return
        pre = ty.pretype
        if not isinstance(pre, RefT) or not isinstance(pre.heaptype, StructHT):
            raise StackTypeError(f"struct.free expects a struct reference, found {ty}")
        if pre.privilege is not Privilege.RW:
            raise RichWasmTypeError("struct.free requires a read-write reference")
        if not fenv.qual_ctx.leq(LIN, ty.qual):
            raise LinearityError("struct.free requires a linear reference (unrestricted memory is GC'd)")
        for field_type in pre.heaptype.field_types:
            if not fenv.qual_ctx.leq(field_type.qual, UNR):
                raise LinearityError(
                    f"struct.free would discard a linear field of type {field_type};"
                    " move it out with struct.swap first"
                )

    def _struct_ref(self, fenv: FunctionEnv, state: TypingState, what: str) -> tuple[Type, RefT, StructHT]:
        ty = self._pop(fenv, state, what)
        pre = ty.pretype
        if not isinstance(pre, RefT) or not isinstance(pre.heaptype, StructHT):
            raise StackTypeError(f"{what}: expected a struct reference, found {ty}")
        return ty, pre, pre.heaptype

    def _check_StructGet(self, fenv: FunctionEnv, state: TypingState, instr: StructGet) -> None:
        if state.dead:
            return
        ty, pre, struct = self._struct_ref(fenv, state, "struct.get")
        if instr.index >= len(struct.fields):
            raise RichWasmTypeError(f"struct.get {instr.index}: struct has {len(struct.fields)} fields")
        field_type = struct.field_types[instr.index]
        if not fenv.qual_ctx.leq(field_type.qual, UNR):
            raise LinearityError(
                f"struct.get {instr.index} would duplicate a linear field of type {field_type};"
                " use struct.swap instead"
            )
        self._push(state, ty, field_type)

    def _check_StructSet(self, fenv: FunctionEnv, state: TypingState, instr: StructSet) -> None:
        new_value = self._pop(fenv, state, "struct.set value")
        if state.dead:
            return
        ty, pre, struct = self._struct_ref(fenv, state, "struct.set")
        if instr.index >= len(struct.fields):
            raise RichWasmTypeError(f"struct.set {instr.index}: struct has {len(struct.fields)} fields")
        if pre.privilege is not Privilege.RW:
            raise RichWasmTypeError("struct.set requires a read-write reference")
        old_type, slot_size = struct.fields[instr.index]
        if not fenv.qual_ctx.leq(old_type.qual, UNR):
            raise LinearityError(
                f"struct.set {instr.index} would overwrite a linear field of type {old_type};"
                " use struct.swap instead"
            )
        new_size = size_of_type(new_value, fenv.type_ctx)
        if not fenv.size_ctx.leq(new_size, slot_size):
            raise SizeError(
                f"struct.set value of type {new_value} (size {new_size}) does not fit slot of size {slot_size}"
            )
        self._require_storable(fenv, new_value, ty.qual, "struct.set value")
        if not fenv.qual_ctx.leq(LIN, ty.qual) and not types_equal(new_value, old_type):
            raise RichWasmTypeError(
                "strong update through an unrestricted (garbage-collected) reference:"
                f" field {instr.index} has type {old_type}, cannot store {new_value}"
            )
        new_fields = list(struct.fields)
        new_fields[instr.index] = (new_value, slot_size)
        self._push(state, Type(RefT(pre.privilege, pre.loc, StructHT(tuple(new_fields))), ty.qual))

    def _check_StructSwap(self, fenv: FunctionEnv, state: TypingState, instr: StructSwap) -> None:
        new_value = self._pop(fenv, state, "struct.swap value")
        if state.dead:
            return
        ty, pre, struct = self._struct_ref(fenv, state, "struct.swap")
        if instr.index >= len(struct.fields):
            raise RichWasmTypeError(f"struct.swap {instr.index}: struct has {len(struct.fields)} fields")
        if pre.privilege is not Privilege.RW:
            raise RichWasmTypeError("struct.swap requires a read-write reference")
        old_type, slot_size = struct.fields[instr.index]
        new_size = size_of_type(new_value, fenv.type_ctx)
        if not fenv.size_ctx.leq(new_size, slot_size):
            raise SizeError(
                f"struct.swap value of type {new_value} (size {new_size}) does not fit slot of size {slot_size}"
            )
        self._require_storable(fenv, new_value, ty.qual, "struct.swap value")
        if not fenv.qual_ctx.leq(LIN, ty.qual) and not types_equal(new_value, old_type):
            raise RichWasmTypeError(
                "strong update through an unrestricted (garbage-collected) reference:"
                f" field {instr.index} has type {old_type}, cannot store {new_value}"
            )
        new_fields = list(struct.fields)
        new_fields[instr.index] = (new_value, slot_size)
        self._push(
            state,
            Type(RefT(pre.privilege, pre.loc, StructHT(tuple(new_fields))), ty.qual),
            old_type,
        )

    # -- variants ----------------------------------------------------------------

    def _check_VariantMalloc(self, fenv: FunctionEnv, state: TypingState, instr: VariantMalloc) -> None:
        check_qual_valid(fenv, instr.qual, "variant.malloc")
        if instr.tag >= len(instr.cases):
            raise RichWasmTypeError(
                f"variant.malloc tag {instr.tag} out of range for {len(instr.cases)} cases"
            )
        payload = self._pop_expect(fenv, state, instr.cases[instr.tag], "variant.malloc payload")
        if not state.dead:
            for case in instr.cases:
                check_type_valid(fenv, case, "variant.malloc case")
            self._require_storable(fenv, payload, instr.qual, "variant.malloc payload")
        heaptype = VariantHT(tuple(instr.cases))
        self._push(state, _existential_ref(heaptype, instr.qual))

    def _check_VariantCase(self, fenv: FunctionEnv, state: TypingState, instr: VariantCase) -> None:
        if not isinstance(instr.heaptype, VariantHT):
            raise RichWasmTypeError("variant.case annotation must be a variant heap type")
        params = list(instr.arrow.params)
        self._pop_expect_many(fenv, state, params, "variant.case argument")
        ref_ty = self._pop(fenv, state, "variant.case scrutinee")
        if state.dead:
            self._push(state, *instr.arrow.results)
            return
        pre = ref_ty.pretype
        if not isinstance(pre, RefT) or not heaptypes_equal(pre.heaptype, instr.heaptype):
            raise StackTypeError(
                f"variant.case expects a reference to {instr.heaptype}, found {ref_ty}"
            )
        cases = instr.heaptype.cases
        if len(instr.branches) != len(cases):
            raise RichWasmTypeError(
                f"variant.case has {len(instr.branches)} branches for {len(cases)} cases"
            )
        linear_flavour = fenv.qual_ctx.leq(LIN, instr.qual)
        if linear_flavour:
            # The reference is consumed and the memory freed.
            if not fenv.qual_ctx.leq(LIN, ref_ty.qual):
                raise LinearityError(
                    "linear variant.case requires a linear reference (it frees the memory)"
                )
            if pre.privilege is not Privilege.RW:
                raise RichWasmTypeError("linear variant.case requires a read-write reference")
            extra_frame: list[Qual] = []
        else:
            # The reference is returned; every case payload must be copyable.
            for case in cases:
                if not fenv.qual_ctx.leq(case.qual, UNR):
                    raise LinearityError(
                        f"unrestricted variant.case would duplicate a linear payload of type {case}"
                    )
            extra_frame = [ref_ty.qual]

        # Re-push the parameters: the shared block helper pops them again.
        self._push(state, *params)
        self._check_nested_block(
            fenv,
            state,
            instr.arrow,
            instr.effects,
            list(instr.branches),
            extra_stack_types=[[case] for case in cases],
            extra_frame_quals=extra_frame,
        )
        if not linear_flavour:
            # Result stack shape: (ref ...)^qv τ2* — the reference sits below
            # the block results.
            results = [state.stack.pop() for _ in instr.arrow.results][::-1] if not state.dead else []
            self._push(state, ref_ty, *results)

    # -- arrays --------------------------------------------------------------------

    def _check_ArrayMalloc(self, fenv: FunctionEnv, state: TypingState, instr: ArrayMalloc) -> None:
        check_qual_valid(fenv, instr.qual, "array.malloc")
        self._pop_num(fenv, state, NumType.UI32, "array.malloc length")
        element = self._pop(fenv, state, "array.malloc initial element")
        if not state.dead:
            if not fenv.qual_ctx.leq(element.qual, UNR):
                raise LinearityError(
                    "array.malloc duplicates its initial element across all slots;"
                    f" the element type {element} must be unrestricted"
                )
            self._require_storable(fenv, element, instr.qual, "array.malloc element")
        heaptype = ArrayHT(element)
        self._push(state, _existential_ref(heaptype, instr.qual))

    def _array_ref(self, fenv: FunctionEnv, state: TypingState, what: str) -> tuple[Type, RefT, ArrayHT]:
        ty = self._pop(fenv, state, what)
        pre = ty.pretype
        if not isinstance(pre, RefT) or not isinstance(pre.heaptype, ArrayHT):
            raise StackTypeError(f"{what}: expected an array reference, found {ty}")
        return ty, pre, pre.heaptype

    def _check_ArrayGet(self, fenv: FunctionEnv, state: TypingState, instr: ArrayGet) -> None:
        self._pop_num(fenv, state, NumType.I32, "array.get index")
        if state.dead:
            return
        ty, pre, array = self._array_ref(fenv, state, "array.get")
        if not fenv.qual_ctx.leq(array.element.qual, UNR):
            raise LinearityError("array.get would duplicate a linear element")
        self._push(state, ty, array.element)

    def _check_ArraySet(self, fenv: FunctionEnv, state: TypingState, instr: ArraySet) -> None:
        value = self._pop(fenv, state, "array.set value")
        self._pop_num(fenv, state, NumType.I32, "array.set index")
        if state.dead:
            return
        ty, pre, array = self._array_ref(fenv, state, "array.set")
        if pre.privilege is not Privilege.RW:
            raise RichWasmTypeError("array.set requires a read-write reference")
        if not types_equal(value, array.element):
            raise StackTypeError(
                f"array.set value has type {value}, array elements have type {array.element}"
            )
        if not fenv.qual_ctx.leq(array.element.qual, UNR):
            raise LinearityError("array.set would silently drop the previous (linear) element")
        self._push(state, ty)

    def _check_ArrayFree(self, fenv: FunctionEnv, state: TypingState, instr: ArrayFree) -> None:
        if state.dead:
            return
        ty, pre, array = self._array_ref(fenv, state, "array.free")
        if pre.privilege is not Privilege.RW:
            raise RichWasmTypeError("array.free requires a read-write reference")
        if not fenv.qual_ctx.leq(LIN, ty.qual):
            raise LinearityError("array.free requires a linear reference")
        if not fenv.qual_ctx.leq(array.element.qual, UNR):
            raise LinearityError("array.free would discard linear elements")

    # -- existential packages --------------------------------------------------------

    def _check_ExistPack(self, fenv: FunctionEnv, state: TypingState, instr: ExistPack) -> None:
        check_qual_valid(fenv, instr.qual, "exist.pack")
        if not isinstance(instr.heaptype, ExHT):
            raise RichWasmTypeError("exist.pack annotation must be an existential heap type")
        ht = instr.heaptype
        expected_body = subst_type(ht.body, Subst(types={0: instr.pretype}))
        value = self._pop_expect(fenv, state, expected_body, "exist.pack payload")
        if not state.dead:
            witness_size = size_of_pretype(instr.pretype, fenv.type_ctx)
            if not fenv.size_ctx.leq(witness_size, ht.size_bound):
                raise SizeError(
                    f"existential witness {instr.pretype} has size {witness_size},"
                    f" exceeding the bound {ht.size_bound}"
                )
            if not fenv.qual_ctx.leq(ht.qual_bound, expected_body.qual):
                raise QualifierError(
                    f"existential body qualifier {expected_body.qual} does not satisfy bound {ht.qual_bound}"
                )
            self._require_storable(fenv, value, instr.qual, "exist.pack payload")
        self._push(state, _existential_ref(ht, instr.qual))

    def _check_ExistUnpack(self, fenv: FunctionEnv, state: TypingState, instr: ExistUnpack) -> None:
        if not isinstance(instr.heaptype, ExHT):
            raise RichWasmTypeError("exist.unpack annotation must be an existential heap type")
        ht = instr.heaptype
        params = list(instr.arrow.params)
        self._pop_expect_many(fenv, state, params, "exist.unpack argument")
        ref_ty = self._pop(fenv, state, "exist.unpack scrutinee")
        if state.dead:
            self._push(state, *instr.arrow.results)
            return
        pre = ref_ty.pretype
        if not isinstance(pre, RefT) or not heaptypes_equal(pre.heaptype, ht):
            raise StackTypeError(f"exist.unpack expects a reference to {ht}, found {ref_ty}")
        linear_flavour = fenv.qual_ctx.leq(LIN, instr.qual)
        if linear_flavour:
            if not fenv.qual_ctx.leq(LIN, ref_ty.qual):
                raise LinearityError("linear exist.unpack requires a linear reference")
            if pre.privilege is not Privilege.RW:
                raise RichWasmTypeError("linear exist.unpack requires a read-write reference")
            extra_frame: list[Qual] = []
        else:
            if not fenv.qual_ctx.leq(ht.body.qual, UNR):
                raise LinearityError(
                    "unrestricted exist.unpack would duplicate a linear package payload"
                )
            extra_frame = [ref_ty.qual]

        self._push(state, *params)
        self._check_nested_block(
            fenv,
            state,
            instr.arrow,
            instr.effects,
            [instr.body],
            extra_stack_types=[[ht.body]],
            extra_frame_quals=extra_frame,
            binder_push="type",
            binder_args=(ht.qual_bound, ht.size_bound, True),
        )
        if not linear_flavour:
            results = [state.stack.pop() for _ in instr.arrow.results][::-1] if not state.dead else []
            self._push(state, ref_ty, *results)


# ---------------------------------------------------------------------------
# Allocation result types
# ---------------------------------------------------------------------------


_EXISTENTIAL_REF_MEMO: dict = {}


def _existential_ref(heaptype: HeapType, qual: Qual) -> Type:
    """``∃ρ. (ref rw ρ ψ)^q`` — the result type of every malloc instruction.

    The heap type comes from the outer scope, so its free location variables
    are shifted past the new existential binder.  Memoized for interned heap
    types: every malloc of a given shape synthesizes the same result type.
    """

    from ..syntax.types import shift_heaptype

    interned = "_hc" in heaptype.__dict__
    if interned:
        key = (heaptype, qual)
        cached = _EXISTENTIAL_REF_MEMO.get(key)
        if cached is not None:
            return cached
    shifted = shift_heaptype(heaptype, _SHIFT_LOCS1)
    result = Type(ExLocT(Type(RefT(Privilege.RW, LocVar(0), shifted), qual)), qual)
    if interned:
        _EXISTENTIAL_REF_MEMO[key] = result
    return result


# ---------------------------------------------------------------------------
# Location abstraction (mem.pack)
# ---------------------------------------------------------------------------


def _abstract_location(ty: Type, loc) -> Type:
    """Replace every occurrence of ``loc`` in ``ty`` with location variable 0.

    All other free location variables are shifted up by one so they keep
    referring to their original binders once the new existential binder is
    wrapped around the result.
    """

    shifted = shift_type(ty, Shift(locs=1))
    return _replace_loc(shifted, _shift_concrete(loc), LocVar(0))


def _shift_concrete(loc):
    if isinstance(loc, LocVar):
        return LocVar(loc.index + 1)
    return loc


def _replace_loc(ty: Type, target, replacement) -> Type:
    from ..syntax.types import (
        ArrayHT as _ArrayHT,
        CapT as _CapT,
        ExHT as _ExHT,
        ExLocT as _ExLocT,
        OwnT as _OwnT,
        ProdT as _ProdT,
        PtrT as _PtrT,
        RecT as _RecT,
        RefT as _RefT,
        StructHT as _StructHT,
        VariantHT as _VariantHT,
    )

    def go_loc(loc, depth: int):
        shifted_target = target
        shifted_replacement = replacement
        if isinstance(shifted_target, LocVar):
            shifted_target = LocVar(shifted_target.index + depth)
        if isinstance(shifted_replacement, LocVar):
            shifted_replacement = LocVar(shifted_replacement.index + depth)
        return shifted_replacement if loc == shifted_target else loc

    def go_type(t: Type, depth: int) -> Type:
        return Type(go_pre(t.pretype, depth), t.qual)

    def go_pre(p, depth: int):
        if isinstance(p, _ProdT):
            return _ProdT(tuple(go_type(c, depth) for c in p.components))
        if isinstance(p, _RefT):
            return _RefT(p.privilege, go_loc(p.loc, depth), go_ht(p.heaptype, depth))
        if isinstance(p, _CapT):
            return _CapT(p.privilege, go_loc(p.loc, depth), go_ht(p.heaptype, depth))
        if isinstance(p, _PtrT):
            return _PtrT(go_loc(p.loc, depth))
        if isinstance(p, _OwnT):
            return _OwnT(go_loc(p.loc, depth))
        if isinstance(p, _RecT):
            return _RecT(p.qual_bound, go_type(p.body, depth))
        if isinstance(p, _ExLocT):
            return _ExLocT(go_type(p.body, depth + 1))
        return p

    def go_ht(ht, depth: int):
        if isinstance(ht, _VariantHT):
            return _VariantHT(tuple(go_type(c, depth) for c in ht.cases))
        if isinstance(ht, _StructHT):
            return _StructHT(tuple((go_type(t, depth), s) for t, s in ht.fields))
        if isinstance(ht, _ArrayHT):
            return _ArrayHT(go_type(ht.element, depth))
        if isinstance(ht, _ExHT):
            return _ExHT(ht.qual_bound, ht.size_bound, go_type(ht.body, depth))
        return ht

    return go_type(ty, 0)
