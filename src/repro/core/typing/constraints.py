"""Constraint contexts and entailment for qualifiers and sizes.

Function types quantify over qualifiers and sizes subject to bound
constraints (paper §2.1, "Function types and polymorphism"):

* ``q* ⪯ δ ⪯ q*`` — a qualifier variable with lower and upper bounds;
* ``sz* ≤ σ ≤ sz*`` — a size variable with lower and upper bounds.

The checker must decide entailments such as ``q ⪯ q'`` and ``sz ≤ sz'`` in
the presence of these variables.  Qualifier entailment is a reachability
query through the bound graph.  Size entailment normalizes both sides to
``constant + multiset of variables``, cancels common variables and then
closes the残り remaining variables with their constant bounds (lower bounds
default to 0 because sizes are natural numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..syntax import intern as _intern
from ..syntax.qualifiers import LIN, UNR, Qual, QualConst, QualVar, qual_const_leq
from ..syntax.sizes import (
    Size,
    SizeConst,
    SizePlus,
    SizeVar,
    size_leaves,
)
from .errors import QualifierError, SizeError

# ---------------------------------------------------------------------------
# Qualifier constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QualBounds:
    """Bounds recorded for one qualifier variable."""

    lower: tuple[Qual, ...] = ()
    upper: tuple[Qual, ...] = ()


def _MEMO_ENABLED() -> bool:
    """Entailment memoization rides the interning switch: the benchmark
    baseline mode (:func:`repro.core.syntax.interning_disabled`) measures the
    pre-refactor checker, memo-free."""

    return _intern._ENABLED


def _qual_base_leq(lhs: Qual, rhs: Qual) -> bool:
    """The variable-free core of ``⪯`` applied to one reachable pair."""

    if lhs == rhs:
        return True
    if isinstance(lhs, QualConst) and isinstance(rhs, QualConst):
        return qual_const_leq(lhs, rhs)
    if lhs is UNR or rhs is LIN:
        return True
    return False


@dataclass
class QualContext:
    """The qualifier component of a function environment.

    ``bounds[0]`` is the innermost (most recently bound) qualifier variable.

    Entailment queries are memoized per context (``push`` builds a *new*
    context, so the caches can never go stale through the public API; callers
    must not mutate ``bounds`` in place).
    """

    bounds: list[QualBounds] = field(default_factory=list)
    #: Memoized ``leq`` verdicts and reachability closures for this context.
    #: ``init=False`` so neither positional construction nor
    #: ``dataclasses.replace(ctx, bounds=...)`` can inject or carry over a
    #: memo that does not match ``bounds``.
    _memo: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _up: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _down: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.bounds)

    def push(self, lower: Sequence[Qual] = (), upper: Sequence[Qual] = ()) -> "QualContext":
        """Return a new context with an extra innermost variable."""

        shifted = [_shift_bounds(b, 1) for b in self.bounds]
        new = QualBounds(tuple(_shift_qual_seq(lower, 1)), tuple(_shift_qual_seq(upper, 1)))
        return QualContext([new, *shifted])

    def lookup(self, index: int) -> QualBounds:
        if index < 0 or index >= len(self.bounds):
            raise QualifierError(f"unbound qualifier variable δ{index}")
        return self.bounds[index]

    def valid(self, qual: Qual) -> bool:
        """Is ``qual`` well-scoped in this context?"""

        if isinstance(qual, QualConst):
            return True
        return 0 <= qual.index < len(self.bounds)

    # -- entailment ---------------------------------------------------------

    def leq(self, lhs: Qual, rhs: Qual) -> bool:
        """Decide ``lhs ⪯ rhs`` under the recorded bounds.

        ``lhs ⪯ rhs`` holds iff some qualifier reachable *upward* from
        ``lhs`` (through upper bounds) is concretely below some qualifier
        reachable *downward* from ``rhs`` (through lower bounds).  The two
        reachability closures are computed once per qualifier per context
        (breadth-first over the bound graph, linear in its size) and every
        verdict is memoized, replacing the per-query visited-set recursion
        that re-walked dense bound graphs exponentially often.
        """

        if lhs == rhs:
            return True
        if isinstance(lhs, QualConst) and isinstance(rhs, QualConst):
            return qual_const_leq(lhs, rhs)
        if lhs is UNR or rhs is LIN:
            return True
        if not _MEMO_ENABLED():
            return self._leq_recursive(lhs, rhs, frozenset())
        key = (lhs, rhs)
        verdict = self._memo.get(key)
        if verdict is None:
            verdict = any(
                _qual_base_leq(up, down)
                for up in self._closure(lhs, self._up, upward=True)
                for down in self._closure(rhs, self._down, upward=False)
            )
            self._memo[key] = verdict
        return verdict

    def _closure(self, qual: Qual, cache: dict, *, upward: bool) -> frozenset:
        """All qualifiers reachable from ``qual`` through its upper (or
        lower) bounds, ``qual`` included."""

        cached = cache.get(qual)
        if cached is not None:
            return cached
        seen = {qual}
        stack = [qual]
        while stack:
            current = stack.pop()
            if isinstance(current, QualVar):
                if current.index >= len(self.bounds):
                    raise QualifierError(f"unbound qualifier variable {current}")
                bounds = self.bounds[current.index]
                for neighbour in bounds.upper if upward else bounds.lower:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
        cached = frozenset(seen)
        cache[qual] = cached
        return cached

    def _leq_recursive(self, lhs: Qual, rhs: Qual, visited: frozenset) -> bool:
        """The original visited-set recursion (memo-free baseline/oracle)."""

        if lhs == rhs:
            return True
        if isinstance(lhs, QualConst) and isinstance(rhs, QualConst):
            return qual_const_leq(lhs, rhs)
        if isinstance(lhs, QualConst) and lhs is UNR:
            return True
        if isinstance(rhs, QualConst) and rhs is LIN:
            return True
        key = (lhs, rhs)
        if key in visited:
            return False
        visited = visited | {key}
        # Try to go up from lhs through its upper bounds.
        if isinstance(lhs, QualVar):
            if lhs.index >= len(self.bounds):
                raise QualifierError(f"unbound qualifier variable {lhs}")
            for upper in self.bounds[lhs.index].upper:
                if self._leq_recursive(upper, rhs, visited):
                    return True
        # Or come down to rhs through its lower bounds.
        if isinstance(rhs, QualVar):
            if rhs.index >= len(self.bounds):
                raise QualifierError(f"unbound qualifier variable {rhs}")
            for lower in self.bounds[rhs.index].lower:
                if self._leq_recursive(lhs, lower, visited):
                    return True
        return False

    def require_leq(self, lhs: Qual, rhs: Qual, context: str = "") -> None:
        if not self.leq(lhs, rhs):
            suffix = f" ({context})" if context else ""
            raise QualifierError(f"cannot establish {lhs} ⪯ {rhs}{suffix}")

    def is_unrestricted(self, qual: Qual) -> bool:
        """Can ``qual`` be proven unrestricted (``qual ⪯ unr``)?"""

        return self.leq(qual, UNR)

    def is_linear(self, qual: Qual) -> bool:
        """Can ``qual`` be proven linear (``lin ⪯ qual``)?"""

        return self.leq(LIN, qual)

    def join(self, quals: Sequence[Qual]) -> Qual:
        """A qualifier that is an upper bound of all of ``quals``.

        Used when the checker must synthesise a qualifier (e.g. for the head
        of the linear environment).  Falls back to ``lin`` when any member
        cannot be proven unrestricted.
        """

        result: Qual = UNR
        for qual in quals:
            if self.leq(qual, result):
                continue
            if self.leq(result, qual):
                result = qual
            else:
                return LIN
        return result


def _shift_qual_seq(quals: Sequence[Qual], amount: int) -> list[Qual]:
    out: list[Qual] = []
    for qual in quals:
        if isinstance(qual, QualVar):
            out.append(QualVar(qual.index + amount))
        else:
            out.append(qual)
    return out


def _shift_bounds(bounds: QualBounds, amount: int) -> QualBounds:
    return QualBounds(
        tuple(_shift_qual_seq(bounds.lower, amount)),
        tuple(_shift_qual_seq(bounds.upper, amount)),
    )


# ---------------------------------------------------------------------------
# Size constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SizeBounds:
    """Bounds recorded for one size variable."""

    lower: tuple[Size, ...] = ()
    upper: tuple[Size, ...] = ()


@dataclass
class SizeContext:
    """The size component of a function environment (index 0 is innermost).

    ``leq`` verdicts are memoized per context (``push`` builds a new context,
    so the cache can never go stale through the public API); interned sizes
    make the memo keys O(1) to hash.
    """

    bounds: list[SizeBounds] = field(default_factory=list)
    _memo: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.bounds)

    def push(self, lower: Sequence[Size] = (), upper: Sequence[Size] = ()) -> "SizeContext":
        shifted = [_shift_size_bounds(b, 1) for b in self.bounds]
        new = SizeBounds(
            tuple(_shift_size_seq(lower, 1, shift_from=0)),
            tuple(_shift_size_seq(upper, 1, shift_from=0)),
        )
        return SizeContext([new, *shifted])

    def lookup(self, index: int) -> SizeBounds:
        if index < 0 or index >= len(self.bounds):
            raise SizeError(f"unbound size variable σ{index}")
        return self.bounds[index]

    def valid(self, size: Size) -> bool:
        """Is ``size`` well-scoped in this context?"""

        for leaf in size_leaves(size):
            if isinstance(leaf, SizeVar) and leaf.index >= len(self.bounds):
                return False
        return True

    # -- bound resolution ---------------------------------------------------

    def const_upper_bound(self, size: Size, _depth: int = 0) -> Optional[int]:
        """The smallest constant provably >= ``size``, or ``None``."""

        if _depth > 64:
            return None
        if isinstance(size, SizeConst):
            return size.value
        if isinstance(size, SizePlus):
            left = self.const_upper_bound(size.left, _depth + 1)
            right = self.const_upper_bound(size.right, _depth + 1)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(size, SizeVar):
            if size.index >= len(self.bounds):
                raise SizeError(f"unbound size variable {size}")
            best: Optional[int] = None
            for upper in self.bounds[size.index].upper:
                value = self.const_upper_bound(upper, _depth + 1)
                if value is not None and (best is None or value < best):
                    best = value
            return best
        raise SizeError(f"not a size: {size!r}")

    def const_lower_bound(self, size: Size, _depth: int = 0) -> int:
        """The largest constant provably <= ``size`` (sizes are naturals, so 0 works)."""

        if _depth > 64:
            return 0
        if isinstance(size, SizeConst):
            return size.value
        if isinstance(size, SizePlus):
            return self.const_lower_bound(size.left, _depth + 1) + self.const_lower_bound(
                size.right, _depth + 1
            )
        if isinstance(size, SizeVar):
            if size.index >= len(self.bounds):
                raise SizeError(f"unbound size variable {size}")
            best = 0
            for lower in self.bounds[size.index].lower:
                value = self.const_lower_bound(lower, _depth + 1)
                if value > best:
                    best = value
            return best
        raise SizeError(f"not a size: {size!r}")

    # -- entailment ---------------------------------------------------------

    def leq(self, lhs: Size, rhs: Size) -> bool:
        """Decide ``lhs ≤ rhs`` under the recorded bounds (memoized)."""

        if not _MEMO_ENABLED():
            return self._leq_uncached(lhs, rhs)
        key = (lhs, rhs)
        verdict = self._memo.get(key)
        if verdict is None:
            verdict = self._leq_uncached(lhs, rhs)
            self._memo[key] = verdict
        return verdict

    def _leq_uncached(self, lhs: Size, rhs: Size) -> bool:
        lhs_const, lhs_vars = _size_normal_form(lhs)
        rhs_const, rhs_vars = _size_normal_form(rhs)
        # Cancel variables common to both sides.
        for index in list(lhs_vars):
            while lhs_vars.get(index, 0) > 0 and rhs_vars.get(index, 0) > 0:
                lhs_vars[index] -= 1
                rhs_vars[index] -= 1
        lhs_total = lhs_const
        for index, count in lhs_vars.items():
            if count <= 0:
                continue
            upper = self.const_upper_bound(SizeVar(index))
            if upper is None:
                return False
            lhs_total += upper * count
        rhs_total = rhs_const
        for index, count in rhs_vars.items():
            if count <= 0:
                continue
            rhs_total += self.const_lower_bound(SizeVar(index)) * count
        return lhs_total <= rhs_total

    def require_leq(self, lhs: Size, rhs: Size, context: str = "") -> None:
        if not self.leq(lhs, rhs):
            suffix = f" ({context})" if context else ""
            raise SizeError(f"cannot establish {lhs} ≤ {rhs}{suffix}")


def _size_normal_form(size: Size) -> tuple[int, dict[int, int]]:
    const_total = 0
    var_counts: dict[int, int] = {}
    for leaf in size_leaves(size):
        if isinstance(leaf, SizeConst):
            const_total += leaf.value
        elif isinstance(leaf, SizeVar):
            var_counts[leaf.index] = var_counts.get(leaf.index, 0) + 1
        else:  # pragma: no cover - size_leaves never yields SizePlus
            raise SizeError(f"unexpected size leaf {leaf!r}")
    return const_total, var_counts


def _shift_size_seq(sizes: Sequence[Size], amount: int, shift_from: int) -> list[Size]:
    from ..syntax.sizes import shift_size

    return [shift_size(size, amount, shift_from) for size in sizes]


def _shift_size_bounds(bounds: SizeBounds, amount: int) -> SizeBounds:
    return SizeBounds(
        tuple(_shift_size_seq(bounds.lower, amount, 0)),
        tuple(_shift_size_seq(bounds.upper, amount, 0)),
    )


# ---------------------------------------------------------------------------
# Pretype variable constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeVarBounds:
    """Bounds recorded for one pretype variable ``q ⪯ α (c?) ≲ sz``."""

    qual_bound: Qual
    size_bound: Size
    heapable: bool = True


@dataclass
class TypeVarContext:
    """The pretype-variable component of a function environment."""

    bounds: list[TypeVarBounds] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.bounds)

    def push(self, qual_bound: Qual, size_bound: Size, heapable: bool = True) -> "TypeVarContext":
        return TypeVarContext([TypeVarBounds(qual_bound, size_bound, heapable), *self.bounds])

    def lookup(self, index: int) -> TypeVarBounds:
        if index < 0 or index >= len(self.bounds):
            raise QualifierError(f"unbound pretype variable α{index}")
        return self.bounds[index]

    def valid(self, index: int) -> bool:
        return 0 <= index < len(self.bounds)


@dataclass
class LocContext:
    """The location-variable component: just how many are in scope."""

    count: int = 0

    def push(self) -> "LocContext":
        return LocContext(self.count + 1)

    def valid(self, index: int) -> bool:
        return 0 <= index < self.count
