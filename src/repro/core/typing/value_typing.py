"""Value and heap-value typing (paper Fig. 6).

``S; F ⊢ v : τ`` — a value has a type under a store typing and function
environment.  The algorithmic formulation here goes the other way round:
:func:`check_value` verifies a value *against* an expected type, threading a
:class:`~repro.core.typing.env.LinearUse` accumulator that models the
disjoint splitting of the linear store typing across sub-derivations.

:func:`synthesize_value_type` infers a canonical type for a closed runtime
value, which the configuration-typing judgement and the empirical safety
harness use when no expected type is available.
"""

from __future__ import annotations

from typing import Optional

from ..syntax.locations import ConcreteLoc, MemKind
from ..syntax.qualifiers import LIN, UNR, QualConst
from ..syntax.types import (
    ArrayHT,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    HeapType,
    NumT,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    RecT,
    RefT,
    StructHT,
    Subst,
    Type,
    UnitT,
    VarT,
    VariantHT,
    instantiate_funtype,
    subst_type,
    unfold_rec,
)
from ..syntax.values import (
    ArrayHV,
    CapV,
    CoderefV,
    FoldV,
    HeapValue,
    MempackV,
    NumV,
    OwnV,
    PackHV,
    ProdV,
    PtrV,
    RefV,
    StructHV,
    UnitV,
    Value,
    VariantHV,
)
from .env import FunctionEnv, LinearUse, StoreTyping
from .equality import types_equal
from .errors import QualifierError, RichWasmTypeError, StoreTypeError


def check_value(
    store_typing: StoreTyping,
    env: FunctionEnv,
    value: Value,
    expected: Type,
    linear_use: Optional[LinearUse] = None,
) -> None:
    """Check ``S; F ⊢ v : τ`` (raises on failure)."""

    linear_use = linear_use if linear_use is not None else LinearUse()
    pre = expected.pretype
    qual = expected.qual

    if isinstance(value, UnitV):
        if not isinstance(pre, UnitT):
            raise RichWasmTypeError(f"unit value cannot have type {expected}")
        return
    if isinstance(value, NumV):
        if not isinstance(pre, NumT) or pre.numtype != value.numtype:
            raise RichWasmTypeError(f"numeric value {value} cannot have type {expected}")
        return
    if isinstance(value, ProdV):
        if not isinstance(pre, ProdT) or len(pre.components) != len(value.components):
            raise RichWasmTypeError(f"tuple value {value} cannot have type {expected}")
        for component_value, component_type in zip(value.components, pre.components):
            # The tuple qualifier must bound each component qualifier.
            if not env.qual_ctx.leq(component_type.qual, qual):
                raise QualifierError(
                    f"tuple at {qual} cannot contain component at {component_type.qual}"
                )
            check_value(store_typing, env, component_value, component_type, linear_use)
        return
    if isinstance(value, RefV):
        if not isinstance(pre, RefT):
            raise RichWasmTypeError(f"reference value cannot have type {expected}")
        _check_loc_value(store_typing, env, value.loc, pre.loc, pre.heaptype, qual, linear_use)
        return
    if isinstance(value, PtrV):
        if not isinstance(pre, PtrT):
            raise RichWasmTypeError(f"pointer value cannot have type {expected}")
        return
    if isinstance(value, CapV):
        if not isinstance(pre, CapT):
            raise RichWasmTypeError(f"capability value cannot have type {expected}")
        if isinstance(pre.loc, ConcreteLoc):
            _check_loc_value(store_typing, env, pre.loc, pre.loc, pre.heaptype, qual, linear_use)
        return
    if isinstance(value, OwnV):
        if not isinstance(pre, OwnT):
            raise RichWasmTypeError(f"ownership token cannot have type {expected}")
        return
    if isinstance(value, FoldV):
        if not isinstance(pre, RecT):
            raise RichWasmTypeError(f"fold value cannot have type {expected}")
        if not env.qual_ctx.leq(pre.qual_bound, qual):
            raise QualifierError(
                f"recursive type with bound {pre.qual_bound} folded at qualifier {qual}"
            )
        unfolded = unfold_rec(pre, qual)
        check_value(store_typing, env, value.value, unfolded.with_qual(qual), linear_use)
        return
    if isinstance(value, MempackV):
        if not isinstance(pre, ExLocT):
            raise RichWasmTypeError(f"mempack value cannot have type {expected}")
        opened = subst_type(pre.body, Subst(locs={0: value.loc}))
        check_value(store_typing, env, value.value, opened, linear_use)
        return
    if isinstance(value, CoderefV):
        if not isinstance(pre, CodeRefT):
            raise RichWasmTypeError(f"coderef value cannot have type {expected}")
        module_env = store_typing.instance(value.inst_index)
        table_type = module_env.table_entry(value.table_index)
        if value.indices:
            arrow = instantiate_funtype(table_type, value.indices)
            from .equality import arrows_equal

            if not arrows_equal(arrow, pre.funtype.arrow) or pre.funtype.quants:
                raise RichWasmTypeError(
                    f"coderef instantiation does not match expected type {expected}"
                )
        else:
            from .equality import funtypes_equal

            if not funtypes_equal(table_type, pre.funtype):
                raise RichWasmTypeError(
                    f"coderef to table entry of type {table_type} used at {pre.funtype}"
                )
        return
    raise RichWasmTypeError(f"not a value: {value!r}")


def _check_loc_value(
    store_typing: StoreTyping,
    env: FunctionEnv,
    value_loc,
    type_loc,
    heaptype: HeapType,
    qual,
    linear_use: LinearUse,
) -> None:
    """Shared logic for typing references / capabilities to a location."""

    if value_loc != type_loc:
        raise RichWasmTypeError(f"reference to {value_loc} used at type mentioning {type_loc}")
    if not isinstance(value_loc, ConcreteLoc):
        # A reference at an abstract location: nothing further to check
        # statically (the existential introduction rule handles scoping).
        return
    if value_loc.mem is MemKind.LIN:
        # Linear references consume their location from the linear store
        # typing and must be linear themselves.
        if not store_typing.has(value_loc):
            raise StoreTypeError(f"linear location {value_loc} is not in the store typing")
        linear_use.claim(value_loc)
        if not env.qual_ctx.leq(LIN, qual):
            raise QualifierError(
                f"reference to linear location {value_loc} must be linear, got {qual}"
            )
    else:
        if not store_typing.has(value_loc):
            raise StoreTypeError(f"unrestricted location {value_loc} is not in the store typing")
        if not env.qual_ctx.leq(qual, UNR):
            raise QualifierError(
                f"reference to unrestricted location {value_loc} must be unrestricted, got {qual}"
            )


# ---------------------------------------------------------------------------
# Heap value typing
# ---------------------------------------------------------------------------


def check_heap_value(
    store_typing: StoreTyping,
    env: FunctionEnv,
    heap_value: HeapValue,
    expected: HeapType,
    linear_use: Optional[LinearUse] = None,
) -> None:
    """Check ``S; F ⊢ hv : ψ`` (raises on failure)."""

    linear_use = linear_use if linear_use is not None else LinearUse()
    if isinstance(heap_value, VariantHV):
        if not isinstance(expected, VariantHT):
            raise RichWasmTypeError(f"variant heap value cannot have heap type {expected}")
        if heap_value.tag < 0 or heap_value.tag >= len(expected.cases):
            raise RichWasmTypeError(
                f"variant tag {heap_value.tag} out of range for {len(expected.cases)} cases"
            )
        check_value(store_typing, env, heap_value.value, expected.cases[heap_value.tag], linear_use)
        return
    if isinstance(heap_value, StructHV):
        if not isinstance(expected, StructHT):
            raise RichWasmTypeError(f"struct heap value cannot have heap type {expected}")
        if len(heap_value.fields) != len(expected.fields):
            raise RichWasmTypeError(
                f"struct has {len(heap_value.fields)} fields, type expects {len(expected.fields)}"
            )
        for field_value, (field_type, _field_size) in zip(heap_value.fields, expected.fields):
            check_value(store_typing, env, field_value, field_type, linear_use)
        return
    if isinstance(heap_value, ArrayHV):
        if not isinstance(expected, ArrayHT):
            raise RichWasmTypeError(f"array heap value cannot have heap type {expected}")
        if heap_value.length != len(heap_value.elements):
            raise RichWasmTypeError(
                f"array length {heap_value.length} does not match element count"
                f" {len(heap_value.elements)}"
            )
        for element in heap_value.elements:
            check_value(store_typing, env, element, expected.element, linear_use)
        return
    if isinstance(heap_value, PackHV):
        if not isinstance(expected, ExHT):
            raise RichWasmTypeError(f"pack heap value cannot have heap type {expected}")
        opened = subst_type(expected.body, Subst(types={0: heap_value.witness}))
        check_value(store_typing, env, heap_value.value, opened, linear_use)
        return
    raise RichWasmTypeError(f"not a heap value: {heap_value!r}")


# ---------------------------------------------------------------------------
# Type synthesis for closed runtime values
# ---------------------------------------------------------------------------


def synthesize_value_type(store_typing: StoreTyping, value: Value) -> Type:
    """Infer a canonical type for a closed runtime value.

    References into the linear memory synthesize linear read-write reference
    types; references into the unrestricted memory synthesize unrestricted
    ones.  Capabilities and folds cannot be synthesized without annotations
    and raise.
    """

    if isinstance(value, UnitV):
        return Type(UnitT(), UNR)
    if isinstance(value, NumV):
        return Type(NumT(value.numtype), UNR)
    if isinstance(value, ProdV):
        components = tuple(synthesize_value_type(store_typing, v) for v in value.components)
        qual: QualConst = UNR
        if any(c.qual == LIN for c in components):
            qual = LIN
        return Type(ProdT(components), qual)
    if isinstance(value, RefV):
        if not isinstance(value.loc, ConcreteLoc):
            raise RichWasmTypeError("cannot synthesize a type for a reference to an abstract location")
        entry = store_typing.lookup(value.loc)
        from ..syntax.types import Privilege

        if value.loc.mem is MemKind.LIN:
            return Type(RefT(Privilege.RW, value.loc, entry.heaptype), LIN)
        return Type(RefT(Privilege.RW, value.loc, entry.heaptype), UNR)
    if isinstance(value, PtrV):
        return Type(PtrT(value.loc), UNR)
    if isinstance(value, MempackV):
        raise RichWasmTypeError("cannot synthesize a type for a mempack value without annotation")
    if isinstance(value, CoderefV):
        module_env = store_typing.instance(value.inst_index)
        table_type = module_env.table_entry(value.table_index)
        return Type(CodeRefT(table_type), UNR)
    raise RichWasmTypeError(f"cannot synthesize a type for {value!r}")
