"""The RichWasm intermediate language: syntax, type system, and semantics."""

from . import semantics, syntax, typing  # noqa: F401

__all__ = ["syntax", "typing", "semantics"]
