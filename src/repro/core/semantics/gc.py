"""Garbage collection of the unrestricted memory (paper §3, "Garbage collection").

The reduction relation may at any point collect unrestricted locations that
are no longer reachable from the configuration's roots: the locations
appearing in the instructions being evaluated, the local values, and the
module instances.  Additionally, when a reference to *linear* memory is
stored in garbage-collected memory, the collector owns that linear memory:
if the unrestricted cell holding the only reference is collected, the linear
cell is freed too (the lowering to Wasm realizes this with finalizers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..syntax.locations import ConcreteLoc, MemKind
from ..syntax.values import HeapValue, Value, heap_value_locations, value_locations
from .store import Store


@dataclass
class GcStats:
    """Statistics from one collection cycle."""

    roots: int = 0
    reachable_unrestricted: int = 0
    collected_unrestricted: int = 0
    finalized_linear: int = 0


def collect_roots(values: Iterable[Value]) -> set[ConcreteLoc]:
    """All concrete locations mentioned by a set of root values."""

    roots: set[ConcreteLoc] = set()
    for value in values:
        roots |= value_locations(value)
    return roots


def reachable_locations(store: Store, roots: Iterable[ConcreteLoc]) -> set[ConcreteLoc]:
    """Transitively reachable locations, traversing both memories."""

    seen: set[ConcreteLoc] = set()
    worklist = [loc for loc in roots]
    while worklist:
        loc = worklist.pop()
        if loc in seen:
            continue
        seen.add(loc)
        space = store.memory(loc.mem)
        if not space.contains(loc):
            # A dangling root (e.g. an already-freed linear location) has no
            # outgoing edges; type safety rules these out for well-typed
            # programs but the collector stays defensive.
            continue
        cell = space.lookup(loc)
        for successor in heap_value_locations(cell.value):
            if successor not in seen:
                worklist.append(successor)
    return seen


def run_gc(store: Store, root_values: Iterable[Value]) -> GcStats:
    """Collect unreachable unrestricted cells (and finalize owned linear cells).

    ``root_values`` must include every value reachable from the current
    configuration: operand stacks, local variables and instance globals.
    """

    stats = GcStats()
    roots = collect_roots(root_values)
    for instance in store.instances:
        roots |= collect_roots(instance.globals)
    stats.roots = len(roots)

    reachable = reachable_locations(store, roots)
    stats.reachable_unrestricted = sum(1 for loc in reachable if loc.mem is MemKind.UNR)

    # Identify unreachable unrestricted cells.
    dead_unrestricted = [
        loc for loc in store.unrestricted.locations() if loc not in reachable
    ]

    # Linear cells owned by dead unrestricted cells get finalized, unless they
    # are still reachable through some live path.
    owned_linear: set[ConcreteLoc] = set()
    for loc in dead_unrestricted:
        cell = store.unrestricted.lookup(loc)
        for successor in heap_value_locations(cell.value):
            if successor.mem is MemKind.LIN and successor not in reachable:
                owned_linear.add(successor)

    for loc in dead_unrestricted:
        store.unrestricted.free(loc)
        stats.collected_unrestricted += 1
    for loc in owned_linear:
        if store.linear.contains(loc):
            store.linear.free(loc)
            stats.finalized_linear += 1
    return stats


@dataclass
class GcPolicy:
    """When the interpreter triggers a collection.

    ``allocation_threshold`` — run a collection every N unrestricted
    allocations (``0`` disables automatic collection; an explicit call to
    :func:`run_gc` is always possible since the reduction rule may fire at
    any time).
    """

    allocation_threshold: int = 256
    collections: int = 0
    _since_last: int = field(default=0, repr=False)

    def should_collect(self) -> bool:
        if self.allocation_threshold <= 0:
            return False
        return self._since_last >= self.allocation_threshold

    def note_allocation(self) -> None:
        self._since_last += 1

    def note_collection(self) -> None:
        self.collections += 1
        self._since_last = 0
