"""Numeric operator semantics shared by the RichWasm and Wasm interpreters.

Integers are represented as Python ints, normalized to their unsigned
bit-pattern (the usual WebAssembly convention); floats are Python floats.
The helpers here implement wrapping arithmetic, signed/unsigned views,
shifts, rotates, comparisons and conversions for 32- and 64-bit widths.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Union

from ..typing.errors import RichWasmError


class NumericTrap(RichWasmError):
    """Raised for numeric traps (division by zero, invalid conversion)."""


MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def mask(width: int) -> int:
    return MASK32 if width == 32 else MASK64


def wrap(value: int, width: int) -> int:
    """Normalize an integer to its unsigned ``width``-bit representation."""

    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned bit-pattern as a two's-complement signed value."""

    value = wrap(value, width)
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def to_unsigned(value: int, width: int) -> int:
    """Interpret any integer as an unsigned ``width``-bit value."""

    return wrap(value, width)


# ---------------------------------------------------------------------------
# Integer operators
# ---------------------------------------------------------------------------


def int_add(a: int, b: int, width: int) -> int:
    return wrap(a + b, width)


def int_sub(a: int, b: int, width: int) -> int:
    return wrap(a - b, width)


def int_mul(a: int, b: int, width: int) -> int:
    return wrap(a * b, width)


def int_div_u(a: int, b: int, width: int) -> int:
    if wrap(b, width) == 0:
        raise NumericTrap("integer division by zero")
    return wrap(wrap(a, width) // wrap(b, width), width)


def int_div_s(a: int, b: int, width: int) -> int:
    sa, sb = to_signed(a, width), to_signed(b, width)
    if sb == 0:
        raise NumericTrap("integer division by zero")
    quotient = int(sa / sb)  # truncate toward zero
    if quotient == 1 << (width - 1):
        raise NumericTrap("integer overflow in signed division")
    return wrap(quotient, width)


def int_rem_u(a: int, b: int, width: int) -> int:
    if wrap(b, width) == 0:
        raise NumericTrap("integer remainder by zero")
    return wrap(wrap(a, width) % wrap(b, width), width)


def int_rem_s(a: int, b: int, width: int) -> int:
    sa, sb = to_signed(a, width), to_signed(b, width)
    if sb == 0:
        raise NumericTrap("integer remainder by zero")
    remainder = sa - sb * int(sa / sb)
    return wrap(remainder, width)


def int_and(a: int, b: int, width: int) -> int:
    return wrap(a & b, width)


def int_or(a: int, b: int, width: int) -> int:
    return wrap(a | b, width)


def int_xor(a: int, b: int, width: int) -> int:
    return wrap(a ^ b, width)


def int_shl(a: int, b: int, width: int) -> int:
    return wrap(a << (b % width), width)


def int_shr_u(a: int, b: int, width: int) -> int:
    return wrap(a, width) >> (b % width)


def int_shr_s(a: int, b: int, width: int) -> int:
    return wrap(to_signed(a, width) >> (b % width), width)


def int_rotl(a: int, b: int, width: int) -> int:
    b = b % width
    a = wrap(a, width)
    return wrap((a << b) | (a >> (width - b)), width)


def int_rotr(a: int, b: int, width: int) -> int:
    b = b % width
    a = wrap(a, width)
    return wrap((a >> b) | (a << (width - b)), width)


def int_clz(a: int, width: int) -> int:
    a = wrap(a, width)
    if a == 0:
        return width
    return width - a.bit_length()


def int_ctz(a: int, width: int) -> int:
    a = wrap(a, width)
    if a == 0:
        return width
    return (a & -a).bit_length() - 1


def int_popcnt(a: int, width: int) -> int:
    return bin(wrap(a, width)).count("1")


def int_eqz(a: int, width: int) -> int:
    return 1 if wrap(a, width) == 0 else 0


def bool_to_i32(value: bool) -> int:
    return 1 if value else 0


def int_relop(op: str, a: int, b: int, width: int, signed: bool) -> int:
    if signed:
        a, b = to_signed(a, width), to_signed(b, width)
    else:
        a, b = to_unsigned(a, width), to_unsigned(b, width)
    comparisons: dict[str, Callable[[int, int], bool]] = {
        "eq": lambda x, y: x == y,
        "ne": lambda x, y: x != y,
        "lt": lambda x, y: x < y,
        "gt": lambda x, y: x > y,
        "le": lambda x, y: x <= y,
        "ge": lambda x, y: x >= y,
    }
    return bool_to_i32(comparisons[op](a, b))


# ---------------------------------------------------------------------------
# Float operators
# ---------------------------------------------------------------------------


def float_canon(value: float, width: int) -> float:
    """Round a Python float to f32 precision when needed."""

    if width == 32:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    return value


def float_binop(op: str, a: float, b: float, width: int) -> float:
    operations: dict[str, Callable[[float, float], float]] = {
        "add": lambda x, y: x + y,
        "sub": lambda x, y: x - y,
        "mul": lambda x, y: x * y,
        "div": _float_div,
        "min": min,
        "max": max,
        "copysign": math.copysign,
    }
    return float_canon(operations[op](a, b), width)


def _float_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (b >= 0 and not math.copysign(1, b) < 0) else -math.inf
    return a / b


def float_unop(op: str, a: float, width: int) -> float:
    operations: dict[str, Callable[[float], float]] = {
        "abs": abs,
        "neg": lambda x: -x,
        "sqrt": lambda x: math.sqrt(x) if x >= 0 else math.nan,
        "ceil": math.ceil,
        "floor": math.floor,
        "trunc": math.trunc,
        "nearest": lambda x: float(round(x)),
    }
    return float_canon(operations[op](a), width)


def float_relop(op: str, a: float, b: float) -> int:
    comparisons: dict[str, Callable[[float, float], bool]] = {
        "eq": lambda x, y: x == y,
        "ne": lambda x, y: x != y,
        "lt": lambda x, y: x < y,
        "gt": lambda x, y: x > y,
        "le": lambda x, y: x <= y,
        "ge": lambda x, y: x >= y,
    }
    if math.isnan(a) or math.isnan(b):
        return bool_to_i32(op == "ne")
    return bool_to_i32(comparisons[op](a, b))


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------


def trunc_float_to_int(value: float, width: int, signed: bool) -> int:
    if math.isnan(value) or math.isinf(value):
        raise NumericTrap("invalid conversion of NaN/inf to integer")
    truncated = math.trunc(value)
    if signed:
        low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        low, high = 0, (1 << width) - 1
    if truncated < low or truncated > high:
        raise NumericTrap("integer overflow in float-to-int conversion")
    return wrap(int(truncated), width)


def convert_int_to_float(value: int, width: int, signed: bool, target_width: int) -> float:
    source = to_signed(value, width) if signed else to_unsigned(value, width)
    return float_canon(float(source), target_width)


def reinterpret_float_to_int(value: float, width: int) -> int:
    fmt = "<f" if width == 32 else "<d"
    ifmt = "<I" if width == 32 else "<Q"
    return struct.unpack(ifmt, struct.pack(fmt, value))[0]


def reinterpret_int_to_float(value: int, width: int) -> float:
    fmt = "<f" if width == 32 else "<d"
    ifmt = "<I" if width == 32 else "<Q"
    return struct.unpack(fmt, struct.pack(ifmt, wrap(value, width)))[0]
