"""The RichWasm runtime store (paper Fig. 4, "Runtime objects").

The store holds the list of module instances and the global memory.  The
memory has two components: the **linear** memory (manually managed, freed by
``free`` instructions) and the **unrestricted** memory (garbage collected).
Both are maps from locations (natural numbers) to structured heap values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..syntax.locations import ConcreteLoc, MemKind, lin_loc, unr_loc
from ..syntax.modules import Function, FunctionDecl, Module
from ..syntax.values import HeapValue, Value
from ..typing.errors import RichWasmError


class MemoryFault(RichWasmError):
    """Access to a freed or never-allocated location (a runtime trap cause)."""


@dataclass
class MemoryCell:
    """One allocated cell: its heap value and the slot size it was given."""

    value: HeapValue
    size: int


@dataclass
class MemorySpace:
    """One of the two flat memories: a map from addresses to cells."""

    kind: MemKind
    cells: dict[int, MemoryCell] = field(default_factory=dict)
    next_address: int = 0
    allocation_count: int = 0
    free_count: int = 0

    def allocate(self, value: HeapValue, size: int) -> ConcreteLoc:
        address = self.next_address
        self.next_address += 1
        self.cells[address] = MemoryCell(value, size)
        self.allocation_count += 1
        return ConcreteLoc(address, self.kind)

    def lookup(self, loc: ConcreteLoc) -> MemoryCell:
        self._check(loc)
        if loc.address not in self.cells:
            raise MemoryFault(f"access to unallocated or freed location {loc}")
        return self.cells[loc.address]

    def update(self, loc: ConcreteLoc, value: HeapValue) -> None:
        cell = self.lookup(loc)
        cell.value = value

    def free(self, loc: ConcreteLoc) -> None:
        self._check(loc)
        if loc.address not in self.cells:
            raise MemoryFault(f"double free of location {loc}")
        del self.cells[loc.address]
        self.free_count += 1

    def contains(self, loc: ConcreteLoc) -> bool:
        return loc.mem is self.kind and loc.address in self.cells

    def _check(self, loc: ConcreteLoc) -> None:
        if loc.mem is not self.kind:
            raise MemoryFault(f"location {loc} does not belong to the {self.kind} memory")

    def __len__(self) -> int:
        return len(self.cells)

    def locations(self) -> Iterator[ConcreteLoc]:
        for address in self.cells:
            yield ConcreteLoc(address, self.kind)


@dataclass
class Closure:
    """A closure: a function together with the instance that defines it."""

    inst_index: int
    function: Function


@dataclass
class ModuleInstance:
    """A runtime module instance: resolved functions, global values, table."""

    module: Module
    funcs: list[Closure] = field(default_factory=list)
    globals: list[Value] = field(default_factory=list)
    table: list[Closure] = field(default_factory=list)
    exports: dict[str, int] = field(default_factory=dict)
    global_exports: dict[str, int] = field(default_factory=dict)


@dataclass
class Store:
    """The runtime store: module instances plus the two memories."""

    instances: list[ModuleInstance] = field(default_factory=list)
    linear: MemorySpace = field(default_factory=lambda: MemorySpace(MemKind.LIN))
    unrestricted: MemorySpace = field(default_factory=lambda: MemorySpace(MemKind.UNR))

    def memory(self, kind: MemKind) -> MemorySpace:
        return self.linear if kind is MemKind.LIN else self.unrestricted

    def allocate(self, kind: MemKind, value: HeapValue, size: int) -> ConcreteLoc:
        return self.memory(kind).allocate(value, size)

    def lookup(self, loc: ConcreteLoc) -> MemoryCell:
        return self.memory(loc.mem).lookup(loc)

    def update(self, loc: ConcreteLoc, value: HeapValue) -> None:
        self.memory(loc.mem).update(loc, value)

    def free(self, loc: ConcreteLoc) -> None:
        self.memory(loc.mem).free(loc)

    def instance(self, index: int) -> ModuleInstance:
        if index < 0 or index >= len(self.instances):
            raise RichWasmError(f"module instance index {index} out of range")
        return self.instances[index]

    def stats(self) -> dict[str, int]:
        """Allocation statistics used by benchmarks."""

        return {
            "linear_live": len(self.linear),
            "linear_allocated": self.linear.allocation_count,
            "linear_freed": self.linear.free_count,
            "unrestricted_live": len(self.unrestricted),
            "unrestricted_allocated": self.unrestricted.allocation_count,
            "unrestricted_freed": self.unrestricted.free_count,
        }
