"""The RichWasm dynamic semantics (paper Fig. 4 and §3).

The interpreter executes RichWasm instruction sequences over the two-memory
store.  It follows the paper's reduction relation rule-for-rule: every heap
instruction family reduces through an (implicit) ``malloc``/``free``
administrative step, ``variant.case`` / ``exist.unpack`` with a linear
qualifier free the scrutinised cell, locals holding linear values are
strongly updated to ``unit`` when read, and the garbage-collection rule may
fire between any two steps (here: driven by :class:`~repro.core.semantics.gc.GcPolicy`).

Block structure is executed with Python-level control signals standing in for
the paper's ``label``/``local`` administrative instructions; a configurable
``on_step`` hook observes every reduction step, which the empirical
type-safety harness uses to re-check store invariants after each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..syntax.instructions import (
    ArrayFree,
    ArrayGet,
    ArrayMalloc,
    ArraySet,
    Block,
    Br,
    BrIf,
    BrTable,
    Call,
    CallIndirect,
    CapJoin,
    CapSplit,
    CodeRefI,
    Drop,
    ExistPack,
    ExistUnpack,
    FloatBinop,
    FloatRelop,
    FloatUnop,
    GetGlobal,
    GetLocal,
    If,
    Inst,
    Instr,
    IntBinop,
    IntRelop,
    IntUnop,
    Loop,
    MemPack,
    MemUnpack,
    Nop,
    NumBinop,
    NumConst,
    NumCvtop,
    NumRelop,
    NumTestop,
    NumUnop,
    Qualify,
    RecFold,
    RecUnfold,
    RefDemote,
    RefJoin,
    RefSplit,
    Return,
    Select,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    StructFree,
    StructGet,
    StructMalloc,
    StructSet,
    StructSwap,
    TeeLocal,
    Unreachable,
    VariantCase,
    VariantMalloc,
    CvtOp,
)
from ..syntax.locations import ConcreteLoc, LocVar, MemKind
from ..syntax.qualifiers import LIN, Qual, QualConst, QualVar
from ..syntax.sizes import Size, eval_size
from ..syntax.types import (
    Index,
    LocIndex,
    LocQuant,
    NumType,
    PretypeIndex,
    QualIndex,
    QualQuant,
    SizeIndex,
    SizeQuant,
    TypeQuant,
)
from ..syntax.modules import Function, ImportedFunction, Module
from ..syntax.values import (
    ArrayHV,
    CapV,
    CoderefV,
    FoldV,
    MempackV,
    NumV,
    OwnV,
    PackHV,
    ProdV,
    PtrV,
    RefV,
    StructHV,
    UnitV,
    Value,
    VariantHV,
)
from ..typing.errors import RichWasmError
from . import numerics
from .gc import GcPolicy, run_gc
from .store import Closure, MemoryFault, ModuleInstance, Store


class Trap(RichWasmError):
    """A runtime trap (unreachable, out-of-bounds access, division by zero)."""


class FuelExhausted(RichWasmError):
    """The step budget given to the interpreter ran out."""


class _BranchSignal(Exception):
    """Internal signal implementing ``br``: unwind ``depth`` labels."""

    def __init__(self, depth: int, values: list[Value]):
        super().__init__(depth)
        self.depth = depth
        self.values = values


class _ReturnSignal(Exception):
    """Internal signal implementing ``return``."""

    def __init__(self, values: list[Value]):
        super().__init__()
        self.values = values


@dataclass
class Frame:
    """One function activation: locals, the defining instance and the
    concrete instantiation of the function's polymorphic indices."""

    inst_index: int
    locals: list[Value]
    local_sizes: list[int]
    size_env: dict[int, int] = field(default_factory=dict)
    qual_env: dict[int, QualConst] = field(default_factory=dict)
    loc_bindings: list[ConcreteLoc] = field(default_factory=list)

    def resolve_qual(self, qual: Qual) -> QualConst:
        if isinstance(qual, QualVar):
            return self.qual_env.get(qual.index, QualConst.UNR)
        return qual

    def resolve_size(self, size: Size) -> int:
        return eval_size(size, self.size_env)

    def resolve_loc(self, loc) -> ConcreteLoc:
        if isinstance(loc, LocVar):
            if loc.index >= len(self.loc_bindings):
                raise Trap(f"unbound location variable {loc} at runtime")
            return self.loc_bindings[loc.index]
        return loc


@dataclass
class ExecutionResult:
    """The outcome of invoking an exported function."""

    values: list[Value]
    steps: int
    gc_collections: int


def value_size(value: Value) -> int:
    """The runtime representation size of a value (paper's ``size(v)``)."""

    if isinstance(value, (UnitV, CapV, OwnV)):
        return 0
    if isinstance(value, NumV):
        return value.numtype.bit_width
    if isinstance(value, ProdV):
        return sum(value_size(component) for component in value.components)
    if isinstance(value, (RefV, PtrV)):
        return 32
    if isinstance(value, CoderefV):
        return 64
    if isinstance(value, (FoldV, MempackV)):
        return value_size(value.value)
    raise Trap(f"cannot size value {value!r}")


class Interpreter:
    """Executes RichWasm modules against a two-memory store."""

    def __init__(
        self,
        store: Optional[Store] = None,
        *,
        gc_policy: Optional[GcPolicy] = None,
        max_steps: Optional[int] = None,
        on_step: Optional[Callable[[Instr, Store], None]] = None,
    ) -> None:
        self.store = store if store is not None else Store()
        self.gc_policy = gc_policy if gc_policy is not None else GcPolicy()
        self.max_steps = max_steps
        self.on_step = on_step
        self.steps = 0
        self._live_stacks: list[list[Value]] = []
        self._live_frames: list[Frame] = []

    # -- instantiation --------------------------------------------------------

    def instantiate(
        self,
        module: Module,
        imports: Optional[dict[str, "ModuleInstance"]] = None,
    ) -> int:
        """Create a module instance, resolving imports by module/export name.

        Returns the new instance's index in the store.
        """

        imports = imports or {}
        instance = ModuleInstance(module=module)
        inst_index = len(self.store.instances)
        self.store.instances.append(instance)

        for func in module.functions:
            if isinstance(func, ImportedFunction):
                source = imports.get(func.import_ref.module)
                if source is None:
                    raise RichWasmError(
                        f"unresolved import module {func.import_ref.module!r}"
                    )
                export_index = source.exports.get(func.import_ref.name)
                if export_index is None:
                    raise RichWasmError(
                        f"module {func.import_ref.module!r} does not export"
                        f" {func.import_ref.name!r}"
                    )
                instance.funcs.append(source.funcs[export_index])
            else:
                instance.funcs.append(Closure(inst_index, func))

        for index, func in enumerate(module.functions):
            for export in func.exports:
                instance.exports[export] = index

        for table_entry in module.table.entries:
            instance.table.append(instance.funcs[table_entry])

        for global_index, global_decl in enumerate(module.globals):
            if getattr(global_decl, "is_import", False):
                source = imports.get(global_decl.import_ref.module)
                if source is None:
                    raise RichWasmError(
                        f"unresolved import module {global_decl.import_ref.module!r}"
                    )
                export_index = source.global_exports.get(global_decl.import_ref.name)
                if export_index is None:
                    raise RichWasmError(
                        f"module {global_decl.import_ref.module!r} does not export global"
                        f" {global_decl.import_ref.name!r}"
                    )
                instance.globals.append(source.globals[export_index])
            else:
                frame = Frame(inst_index, [], [])
                stack: list[Value] = []
                self.exec_seq(list(global_decl.init), stack, frame)
                instance.globals.append(stack[-1] if stack else UnitV())
            for export in global_decl.exports:
                instance.global_exports[export] = global_index
        return inst_index

    # -- invocation -----------------------------------------------------------

    def invoke_export(self, inst_index: int, name: str, args: Sequence[Value] = (),
                      indices: Sequence[Index] = ()) -> ExecutionResult:
        """Invoke an exported function by name."""

        instance = self.store.instance(inst_index)
        if name not in instance.exports:
            raise RichWasmError(f"instance {inst_index} has no export {name!r}")
        closure = instance.funcs[instance.exports[name]]
        start_collections = self.gc_policy.collections
        values = self.call_closure(closure, list(args), list(indices))
        return ExecutionResult(
            values=values,
            steps=self.steps,
            gc_collections=self.gc_policy.collections - start_collections,
        )

    def call_closure(self, closure: Closure, args: list[Value], indices: list[Index]) -> list[Value]:
        function = closure.function
        if isinstance(function, ImportedFunction):  # pragma: no cover - resolved at instantiation
            raise RichWasmError("cannot call an unresolved imported function")

        frame = Frame(closure.inst_index, [], [])
        self._bind_indices(frame, function, indices)

        # Parameters become the first locals; declared locals start as unit.
        frame.locals = list(args)
        frame.local_sizes = [value_size(v) for v in args]
        for size in function.locals_sizes:
            frame.locals.append(UnitV())
            frame.local_sizes.append(frame.resolve_size(size))

        stack: list[Value] = []
        self._live_frames.append(frame)
        try:
            try:
                self.exec_seq(list(function.body), stack, frame)
                result_count = len(function.funtype.arrow.results)
                results = stack[len(stack) - result_count:] if result_count else []
            except _ReturnSignal as signal:
                results = signal.values
        finally:
            self._live_frames.pop()
        return list(results)

    def _bind_indices(self, frame: Frame, function: Function, indices: Sequence[Index]) -> None:
        quants = function.funtype.quants
        if len(indices) != len(quants):
            raise RichWasmError(
                f"call provides {len(indices)} indices for {len(quants)} quantifiers"
            )
        # de Bruijn index 0 refers to the innermost (last) quantifier.
        size_i = qual_i = 0
        loc_bindings: list[ConcreteLoc] = []
        for quant, index in zip(reversed(quants), reversed(list(indices))):
            if isinstance(quant, SizeQuant) and isinstance(index, SizeIndex):
                frame.size_env[size_i] = eval_size(index.size, frame.size_env)
                size_i += 1
            elif isinstance(quant, QualQuant) and isinstance(index, QualIndex):
                qual = index.qual
                frame.qual_env[qual_i] = qual if isinstance(qual, QualConst) else QualConst.UNR
                qual_i += 1
            elif isinstance(quant, LocQuant) and isinstance(index, LocIndex):
                loc = index.loc
                if isinstance(loc, ConcreteLoc):
                    loc_bindings.append(loc)
                else:
                    loc_bindings.append(ConcreteLoc(0, MemKind.UNR))
            elif isinstance(quant, TypeQuant) and isinstance(index, PretypeIndex):
                continue
            else:
                raise RichWasmError(f"index {index!r} does not match quantifier {quant!r}")
        frame.loc_bindings = loc_bindings + frame.loc_bindings

    # -- execution ------------------------------------------------------------

    def exec_seq(self, instrs: Sequence[Instr], stack: list[Value], frame: Frame) -> None:
        """Execute a sequence of instructions against ``stack`` in ``frame``."""

        self._live_stacks.append(stack)
        try:
            for instr in instrs:
                self._step(instr, stack, frame)
        finally:
            self._live_stacks.pop()

    def _step(self, instr: Instr, stack: list[Value], frame: Frame) -> None:
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise FuelExhausted(f"exceeded the step budget of {self.max_steps}")
        handler = getattr(self, f"_exec_{type(instr).__name__}", None)
        if handler is None:
            # Values may appear directly in instruction sequences (Fig. 2:
            # e ::= v | ...); executing a value pushes it onto the stack.
            from ..syntax.values import is_value

            if is_value(instr):
                stack.append(instr)  # type: ignore[arg-type]
                if self.on_step is not None:
                    self.on_step(instr, self.store)
                return
            raise RichWasmError(f"no execution rule for instruction {instr!r}")
        handler(instr, stack, frame)
        if self.on_step is not None:
            self.on_step(instr, self.store)

    # -- helpers ---------------------------------------------------------------

    def _pop(self, stack: list[Value], what: str = "operand") -> Value:
        if not stack:
            raise Trap(f"operand stack underflow while looking for {what}")
        return stack.pop()

    def _pop_num(self, stack: list[Value], what: str = "number") -> NumV:
        value = self._pop(stack, what)
        if not isinstance(value, NumV):
            raise Trap(f"expected a numeric value for {what}, found {value}")
        return value

    def _pop_ref(self, stack: list[Value], what: str = "reference") -> RefV:
        value = self._pop(stack, what)
        if not isinstance(value, RefV):
            raise Trap(f"expected a reference for {what}, found {value}")
        return value

    def _maybe_collect(self, stack: list[Value], frame: Frame) -> None:
        if not self.gc_policy.should_collect():
            return
        roots: list[Value] = []
        for live_stack in self._live_stacks:
            roots.extend(live_stack)
        roots.extend(stack)
        for live_frame in self._live_frames:
            roots.extend(live_frame.locals)
        roots.extend(frame.locals)
        run_gc(self.store, roots)
        self.gc_policy.note_collection()

    def collect_now(self, extra_roots: Sequence[Value] = ()) -> None:
        """Explicitly run the garbage-collection rule."""

        roots: list[Value] = list(extra_roots)
        for live_stack in self._live_stacks:
            roots.extend(live_stack)
        for live_frame in self._live_frames:
            roots.extend(live_frame.locals)
        run_gc(self.store, roots)
        self.gc_policy.note_collection()

    def _allocate(self, qual: QualConst, heap_value, size: int, stack: list[Value], frame: Frame) -> None:
        kind = MemKind.LIN if qual is QualConst.LIN else MemKind.UNR
        loc = self.store.allocate(kind, heap_value, size)
        if kind is MemKind.UNR:
            self.gc_policy.note_allocation()
            self._maybe_collect(stack, frame)
        stack.append(MempackV(loc, RefV(loc)))

    # -- numeric instructions ---------------------------------------------------

    def _exec_NumConst(self, instr: NumConst, stack: list[Value], frame: Frame) -> None:
        value = instr.value
        if instr.numtype.is_integer:
            value = numerics.wrap(int(value), instr.numtype.bit_width)
        else:
            value = numerics.float_canon(float(value), instr.numtype.bit_width)
        stack.append(NumV(instr.numtype, value))

    def _exec_NumUnop(self, instr: NumUnop, stack: list[Value], frame: Frame) -> None:
        operand = self._pop_num(stack, "unop operand")
        width = instr.numtype.bit_width
        try:
            if instr.numtype.is_integer:
                op = instr.op
                if op is IntUnop.CLZ:
                    result = numerics.int_clz(int(operand.value), width)
                elif op is IntUnop.CTZ:
                    result = numerics.int_ctz(int(operand.value), width)
                else:
                    result = numerics.int_popcnt(int(operand.value), width)
                stack.append(NumV(instr.numtype, result))
            else:
                result = numerics.float_unop(instr.op.value, float(operand.value), width)
                stack.append(NumV(instr.numtype, result))
        except numerics.NumericTrap as exc:
            raise Trap(str(exc)) from exc

    def _exec_NumBinop(self, instr: NumBinop, stack: list[Value], frame: Frame) -> None:
        rhs = self._pop_num(stack, "binop rhs")
        lhs = self._pop_num(stack, "binop lhs")
        width = instr.numtype.bit_width
        try:
            if instr.numtype.is_integer:
                result = self._int_binop(instr.op, int(lhs.value), int(rhs.value), width)
            else:
                result = numerics.float_binop(instr.op.value, float(lhs.value), float(rhs.value), width)
            stack.append(NumV(instr.numtype, result))
        except numerics.NumericTrap as exc:
            raise Trap(str(exc)) from exc

    @staticmethod
    def _int_binop(op: IntBinop, a: int, b: int, width: int) -> int:
        table = {
            IntBinop.ADD: numerics.int_add,
            IntBinop.SUB: numerics.int_sub,
            IntBinop.MUL: numerics.int_mul,
            IntBinop.DIV_S: numerics.int_div_s,
            IntBinop.DIV_U: numerics.int_div_u,
            IntBinop.REM_S: numerics.int_rem_s,
            IntBinop.REM_U: numerics.int_rem_u,
            IntBinop.AND: numerics.int_and,
            IntBinop.OR: numerics.int_or,
            IntBinop.XOR: numerics.int_xor,
            IntBinop.SHL: numerics.int_shl,
            IntBinop.SHR_S: numerics.int_shr_s,
            IntBinop.SHR_U: numerics.int_shr_u,
            IntBinop.ROTL: numerics.int_rotl,
            IntBinop.ROTR: numerics.int_rotr,
        }
        return table[op](a, b, width)

    def _exec_NumTestop(self, instr: NumTestop, stack: list[Value], frame: Frame) -> None:
        operand = self._pop_num(stack, "testop operand")
        result = numerics.int_eqz(int(operand.value), instr.numtype.bit_width)
        stack.append(NumV(NumType.I32, result))

    def _exec_NumRelop(self, instr: NumRelop, stack: list[Value], frame: Frame) -> None:
        rhs = self._pop_num(stack, "relop rhs")
        lhs = self._pop_num(stack, "relop lhs")
        width = instr.numtype.bit_width
        if instr.numtype.is_integer:
            op_name = instr.op.value
            signed = op_name.endswith("_s") or op_name in ("eq", "ne") and instr.numtype.is_signed
            base = op_name.split("_")[0]
            result = numerics.int_relop(base, int(lhs.value), int(rhs.value), width, op_name.endswith("_s"))
        else:
            result = numerics.float_relop(instr.op.value, float(lhs.value), float(rhs.value))
        stack.append(NumV(NumType.I32, result))

    def _exec_NumCvtop(self, instr: NumCvtop, stack: list[Value], frame: Frame) -> None:
        operand = self._pop_num(stack, "conversion operand")
        source, target = instr.source, instr.target
        try:
            if instr.op is CvtOp.REINTERPRET:
                if source.is_float and target.is_integer:
                    result = numerics.reinterpret_float_to_int(float(operand.value), source.bit_width)
                elif source.is_integer and target.is_float:
                    result = numerics.reinterpret_int_to_float(int(operand.value), target.bit_width)
                else:
                    result = operand.value
            elif instr.op is CvtOp.WRAP:
                result = numerics.wrap(int(operand.value), target.bit_width)
            elif instr.op in (CvtOp.EXTEND_S, CvtOp.EXTEND_U):
                signed = instr.op is CvtOp.EXTEND_S
                value = numerics.to_signed(int(operand.value), source.bit_width) if signed else int(operand.value)
                result = numerics.wrap(value, target.bit_width)
            else:  # CONVERT
                if source.is_float and target.is_integer:
                    result = numerics.trunc_float_to_int(
                        float(operand.value), target.bit_width, target.is_signed
                    )
                elif source.is_integer and target.is_float:
                    result = numerics.convert_int_to_float(
                        int(operand.value), source.bit_width, source.is_signed, target.bit_width
                    )
                elif source.is_float and target.is_float:
                    result = numerics.float_canon(float(operand.value), target.bit_width)
                else:
                    result = numerics.wrap(int(operand.value), target.bit_width)
        except numerics.NumericTrap as exc:
            raise Trap(str(exc)) from exc
        stack.append(NumV(target, result))

    # -- parametric & control -----------------------------------------------------

    def _exec_Unreachable(self, instr: Unreachable, stack: list[Value], frame: Frame) -> None:
        raise Trap("unreachable executed")

    def _exec_Nop(self, instr: Nop, stack: list[Value], frame: Frame) -> None:
        return

    def _exec_Drop(self, instr: Drop, stack: list[Value], frame: Frame) -> None:
        self._pop(stack, "drop operand")

    def _exec_Select(self, instr: Select, stack: list[Value], frame: Frame) -> None:
        condition = self._pop_num(stack, "select condition")
        second = self._pop(stack, "select operand")
        first = self._pop(stack, "select operand")
        stack.append(first if int(condition.value) != 0 else second)

    def _run_label(
        self,
        body: Sequence[Instr],
        params: list[Value],
        stack: list[Value],
        frame: Frame,
        *,
        result_count: int,
        loop_body: Optional[Sequence[Instr]] = None,
    ) -> None:
        """Execute a labelled block; ``loop_body`` enables loop semantics."""

        inner: list[Value] = list(params)
        while True:
            try:
                self.exec_seq(list(body), inner, frame)
                results = inner[len(inner) - result_count:] if result_count else []
                stack.extend(results)
                return
            except _BranchSignal as signal:
                if signal.depth > 0:
                    raise _BranchSignal(signal.depth - 1, signal.values)
                if loop_body is None:
                    stack.extend(signal.values)
                    return
                # A branch to a loop label restarts the loop with the branch
                # values as the new parameters.
                inner = list(signal.values)
                body = loop_body

    def _exec_Block(self, instr: Block, stack: list[Value], frame: Frame) -> None:
        params = self._pop_params(stack, len(instr.arrow.params))
        self._run_label(instr.body, params, stack, frame, result_count=len(instr.arrow.results))

    def _exec_Loop(self, instr: Loop, stack: list[Value], frame: Frame) -> None:
        params = self._pop_params(stack, len(instr.arrow.params))
        self._run_label(
            instr.body,
            params,
            stack,
            frame,
            result_count=len(instr.arrow.results),
            loop_body=instr.body,
        )

    def _exec_If(self, instr: If, stack: list[Value], frame: Frame) -> None:
        condition = self._pop_num(stack, "if condition")
        params = self._pop_params(stack, len(instr.arrow.params))
        body = instr.then_body if int(condition.value) != 0 else instr.else_body
        self._run_label(body, params, stack, frame, result_count=len(instr.arrow.results))

    def _pop_params(self, stack: list[Value], count: int) -> list[Value]:
        params = [self._pop(stack, "block parameter") for _ in range(count)]
        params.reverse()
        return params

    def _exec_Br(self, instr: Br, stack: list[Value], frame: Frame) -> None:
        raise _BranchSignal(instr.depth, list(stack))

    def _exec_BrIf(self, instr: BrIf, stack: list[Value], frame: Frame) -> None:
        condition = self._pop_num(stack, "br_if condition")
        if int(condition.value) != 0:
            raise _BranchSignal(instr.depth, list(stack))

    def _exec_BrTable(self, instr: BrTable, stack: list[Value], frame: Frame) -> None:
        index = self._pop_num(stack, "br_table index")
        i = int(index.value)
        depth = instr.depths[i] if 0 <= i < len(instr.depths) else instr.default
        raise _BranchSignal(depth, list(stack))

    def _exec_Return(self, instr: Return, stack: list[Value], frame: Frame) -> None:
        raise _ReturnSignal(list(stack))

    # -- locals & globals ----------------------------------------------------------

    def _exec_GetLocal(self, instr: GetLocal, stack: list[Value], frame: Frame) -> None:
        if instr.index >= len(frame.locals):
            raise Trap(f"local index {instr.index} out of range")
        value = frame.locals[instr.index]
        stack.append(value)
        if frame.resolve_qual(instr.qual) is QualConst.LIN:
            # Reading a linear local moves the value out: the slot is strongly
            # updated to unit so the linear value cannot be duplicated.
            frame.locals[instr.index] = UnitV()

    def _exec_SetLocal(self, instr: SetLocal, stack: list[Value], frame: Frame) -> None:
        if instr.index >= len(frame.locals):
            raise Trap(f"local index {instr.index} out of range")
        frame.locals[instr.index] = self._pop(stack, "set_local operand")

    def _exec_TeeLocal(self, instr: TeeLocal, stack: list[Value], frame: Frame) -> None:
        if instr.index >= len(frame.locals):
            raise Trap(f"local index {instr.index} out of range")
        value = self._pop(stack, "tee_local operand")
        frame.locals[instr.index] = value
        stack.append(value)

    def _exec_GetGlobal(self, instr: GetGlobal, stack: list[Value], frame: Frame) -> None:
        instance = self.store.instance(frame.inst_index)
        stack.append(instance.globals[instr.index])

    def _exec_SetGlobal(self, instr: SetGlobal, stack: list[Value], frame: Frame) -> None:
        instance = self.store.instance(frame.inst_index)
        instance.globals[instr.index] = self._pop(stack, "set_global operand")

    def _exec_Qualify(self, instr: Qualify, stack: list[Value], frame: Frame) -> None:
        return  # type-level only

    # -- functions -------------------------------------------------------------------

    def _exec_CodeRefI(self, instr: CodeRefI, stack: list[Value], frame: Frame) -> None:
        stack.append(CoderefV(frame.inst_index, instr.table_index))

    def _exec_Inst(self, instr: Inst, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "inst operand")
        if not isinstance(value, CoderefV):
            raise Trap(f"inst expects a coderef, found {value}")
        stack.append(CoderefV(value.inst_index, value.table_index, value.indices + tuple(instr.indices)))

    def _exec_Call(self, instr: Call, stack: list[Value], frame: Frame) -> None:
        instance = self.store.instance(frame.inst_index)
        if instr.func_index >= len(instance.funcs):
            raise Trap(f"call to unknown function index {instr.func_index}")
        closure = instance.funcs[instr.func_index]
        resolved_indices = [self._resolve_index(idx, frame) for idx in instr.indices]
        args = self._pop_params(stack, len(closure.function.funtype.arrow.params))
        results = self.call_closure(closure, args, resolved_indices)
        stack.extend(results)

    def _exec_CallIndirect(self, instr: CallIndirect, stack: list[Value], frame: Frame) -> None:
        target = self._pop(stack, "call_indirect target")
        if not isinstance(target, CoderefV):
            raise Trap(f"call_indirect expects a coderef, found {target}")
        instance = self.store.instance(target.inst_index)
        if target.table_index >= len(instance.table):
            raise Trap(f"call_indirect to unknown table index {target.table_index}")
        closure = instance.table[target.table_index]
        resolved_indices = [self._resolve_index(idx, frame) for idx in target.indices]
        args = self._pop_params(stack, len(closure.function.funtype.arrow.params))
        results = self.call_closure(closure, args, resolved_indices)
        stack.extend(results)

    def _resolve_index(self, index: Index, frame: Frame) -> Index:
        if isinstance(index, SizeIndex):
            from ..syntax.sizes import SizeConst

            return SizeIndex(SizeConst(frame.resolve_size(index.size)))
        if isinstance(index, QualIndex):
            return QualIndex(frame.resolve_qual(index.qual))
        if isinstance(index, LocIndex) and isinstance(index.loc, LocVar):
            return LocIndex(frame.resolve_loc(index.loc))
        return index

    # -- recursive & existential types ------------------------------------------------

    def _exec_RecFold(self, instr: RecFold, stack: list[Value], frame: Frame) -> None:
        stack.append(FoldV(self._pop(stack, "rec.fold operand")))

    def _exec_RecUnfold(self, instr: RecUnfold, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "rec.unfold operand")
        if not isinstance(value, FoldV):
            raise Trap(f"rec.unfold expects a folded value, found {value}")
        stack.append(value.value)

    def _exec_MemPack(self, instr: MemPack, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "mem.pack operand")
        loc = frame.resolve_loc(instr.loc)
        stack.append(MempackV(loc, value))

    def _exec_MemUnpack(self, instr: MemUnpack, stack: list[Value], frame: Frame) -> None:
        packed = self._pop(stack, "mem.unpack operand")
        if not isinstance(packed, MempackV):
            raise Trap(f"mem.unpack expects an existential location package, found {packed}")
        params = self._pop_params(stack, len(instr.arrow.params))
        frame.loc_bindings.insert(0, packed.loc if isinstance(packed.loc, ConcreteLoc) else ConcreteLoc(0, MemKind.UNR))
        try:
            self._run_label(
                instr.body,
                [*params, packed.value],
                stack,
                frame,
                result_count=len(instr.arrow.results),
            )
        finally:
            frame.loc_bindings.pop(0)

    # -- tuples -------------------------------------------------------------------------

    def _exec_SeqGroup(self, instr: SeqGroup, stack: list[Value], frame: Frame) -> None:
        components = self._pop_params(stack, instr.count)
        stack.append(ProdV(tuple(components)))

    def _exec_SeqUngroup(self, instr: SeqUngroup, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "seq.ungroup operand")
        if not isinstance(value, ProdV):
            raise Trap(f"seq.ungroup expects a tuple, found {value}")
        stack.extend(value.components)

    # -- capabilities / references ---------------------------------------------------------

    def _exec_CapSplit(self, instr: CapSplit, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "cap.split operand")
        if not isinstance(value, CapV):
            raise Trap(f"cap.split expects a capability, found {value}")
        stack.append(CapV())
        stack.append(OwnV())

    def _exec_CapJoin(self, instr: CapJoin, stack: list[Value], frame: Frame) -> None:
        own = self._pop(stack, "cap.join own token")
        cap = self._pop(stack, "cap.join capability")
        if not isinstance(own, OwnV) or not isinstance(cap, CapV):
            raise Trap("cap.join expects a capability and an ownership token")
        stack.append(CapV())

    def _exec_RefDemote(self, instr: RefDemote, stack: list[Value], frame: Frame) -> None:
        value = self._pop_ref(stack, "ref.demote operand")
        stack.append(value)

    def _exec_RefSplit(self, instr: RefSplit, stack: list[Value], frame: Frame) -> None:
        value = self._pop_ref(stack, "ref.split operand")
        stack.append(CapV())
        stack.append(PtrV(value.loc))

    def _exec_RefJoin(self, instr: RefJoin, stack: list[Value], frame: Frame) -> None:
        pointer = self._pop(stack, "ref.join pointer")
        cap = self._pop(stack, "ref.join capability")
        if not isinstance(pointer, PtrV) or not isinstance(cap, CapV):
            raise Trap("ref.join expects a capability and a pointer")
        stack.append(RefV(pointer.loc))

    # -- structs -----------------------------------------------------------------------------

    def _exec_StructMalloc(self, instr: StructMalloc, stack: list[Value], frame: Frame) -> None:
        fields = self._pop_params(stack, len(instr.sizes))
        total = sum(frame.resolve_size(size) for size in instr.sizes)
        self._allocate(frame.resolve_qual(instr.qual), StructHV(tuple(fields)), total, stack, frame)

    def _exec_StructFree(self, instr: StructFree, stack: list[Value], frame: Frame) -> None:
        ref = self._pop_ref(stack, "struct.free operand")
        loc = frame.resolve_loc(ref.loc)
        try:
            self.store.free(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc

    def _struct_at(self, ref: RefV, frame: Frame) -> tuple[ConcreteLoc, StructHV]:
        loc = frame.resolve_loc(ref.loc)
        try:
            cell = self.store.lookup(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc
        if not isinstance(cell.value, StructHV):
            raise Trap(f"location {loc} does not hold a struct")
        return loc, cell.value

    def _exec_StructGet(self, instr: StructGet, stack: list[Value], frame: Frame) -> None:
        ref = self._pop_ref(stack, "struct.get operand")
        loc, struct = self._struct_at(ref, frame)
        if instr.index >= len(struct.fields):
            raise Trap(f"struct.get index {instr.index} out of range")
        stack.append(ref)
        stack.append(struct.fields[instr.index])

    def _exec_StructSet(self, instr: StructSet, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "struct.set value")
        ref = self._pop_ref(stack, "struct.set operand")
        loc, struct = self._struct_at(ref, frame)
        if instr.index >= len(struct.fields):
            raise Trap(f"struct.set index {instr.index} out of range")
        fields = list(struct.fields)
        fields[instr.index] = value
        self.store.update(loc, StructHV(tuple(fields)))
        stack.append(ref)

    def _exec_StructSwap(self, instr: StructSwap, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "struct.swap value")
        ref = self._pop_ref(stack, "struct.swap operand")
        loc, struct = self._struct_at(ref, frame)
        if instr.index >= len(struct.fields):
            raise Trap(f"struct.swap index {instr.index} out of range")
        old = struct.fields[instr.index]
        fields = list(struct.fields)
        fields[instr.index] = value
        self.store.update(loc, StructHV(tuple(fields)))
        stack.append(ref)
        stack.append(old)

    # -- variants -------------------------------------------------------------------------------

    def _exec_VariantMalloc(self, instr: VariantMalloc, stack: list[Value], frame: Frame) -> None:
        payload = self._pop(stack, "variant.malloc payload")
        size = 32 + value_size(payload)
        self._allocate(frame.resolve_qual(instr.qual), VariantHV(instr.tag, payload), size, stack, frame)

    def _exec_VariantCase(self, instr: VariantCase, stack: list[Value], frame: Frame) -> None:
        params = self._pop_params(stack, len(instr.arrow.params))
        ref = self._pop_ref(stack, "variant.case scrutinee")
        loc = frame.resolve_loc(ref.loc)
        try:
            cell = self.store.lookup(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc
        if not isinstance(cell.value, VariantHV):
            raise Trap(f"location {loc} does not hold a variant")
        variant = cell.value
        if variant.tag >= len(instr.branches):
            raise Trap(f"variant tag {variant.tag} has no branch")
        linear_flavour = frame.resolve_qual(instr.qual) is QualConst.LIN
        if linear_flavour:
            # The linear flavour consumes the reference and frees the cell
            # (the paper first overwrites it with an empty array, then frees).
            self.store.update(loc, ArrayHV(0, ()))
            self.store.free(loc)
        results: list[Value] = []
        self._run_label(
            instr.branches[variant.tag],
            [*params, variant.value],
            results,
            frame,
            result_count=len(instr.arrow.results),
        )
        if not linear_flavour:
            stack.append(ref)
        stack.extend(results)

    # -- arrays ---------------------------------------------------------------------------------

    def _exec_ArrayMalloc(self, instr: ArrayMalloc, stack: list[Value], frame: Frame) -> None:
        length_value = self._pop_num(stack, "array.malloc length")
        init = self._pop(stack, "array.malloc initial element")
        length = int(length_value.value)
        if length < 0:
            raise Trap("array.malloc with negative length")
        elements = tuple(init for _ in range(length))
        size = length * value_size(init)
        self._allocate(frame.resolve_qual(instr.qual), ArrayHV(length, elements), size, stack, frame)

    def _array_at(self, ref: RefV, frame: Frame) -> tuple[ConcreteLoc, ArrayHV]:
        loc = frame.resolve_loc(ref.loc)
        try:
            cell = self.store.lookup(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc
        if not isinstance(cell.value, ArrayHV):
            raise Trap(f"location {loc} does not hold an array")
        return loc, cell.value

    def _exec_ArrayGet(self, instr: ArrayGet, stack: list[Value], frame: Frame) -> None:
        index = self._pop_num(stack, "array.get index")
        ref = self._pop_ref(stack, "array.get operand")
        loc, array = self._array_at(ref, frame)
        i = numerics.to_signed(int(index.value), 32)
        if i < 0 or i >= array.length:
            raise Trap(f"array.get index {i} out of bounds for length {array.length}")
        stack.append(ref)
        stack.append(array.elements[i])

    def _exec_ArraySet(self, instr: ArraySet, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "array.set value")
        index = self._pop_num(stack, "array.set index")
        ref = self._pop_ref(stack, "array.set operand")
        loc, array = self._array_at(ref, frame)
        i = numerics.to_signed(int(index.value), 32)
        if i < 0 or i >= array.length:
            raise Trap(f"array.set index {i} out of bounds for length {array.length}")
        elements = list(array.elements)
        elements[i] = value
        self.store.update(loc, ArrayHV(array.length, tuple(elements)))
        stack.append(ref)

    def _exec_ArrayFree(self, instr: ArrayFree, stack: list[Value], frame: Frame) -> None:
        ref = self._pop_ref(stack, "array.free operand")
        loc = frame.resolve_loc(ref.loc)
        try:
            self.store.free(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc

    # -- existential packages ----------------------------------------------------------------------

    def _exec_ExistPack(self, instr: ExistPack, stack: list[Value], frame: Frame) -> None:
        value = self._pop(stack, "exist.pack payload")
        size = 64 + value_size(value)
        self._allocate(
            frame.resolve_qual(instr.qual),
            PackHV(instr.pretype, value, instr.heaptype),
            size,
            stack,
            frame,
        )

    def _exec_ExistUnpack(self, instr: ExistUnpack, stack: list[Value], frame: Frame) -> None:
        params = self._pop_params(stack, len(instr.arrow.params))
        ref = self._pop_ref(stack, "exist.unpack scrutinee")
        loc = frame.resolve_loc(ref.loc)
        try:
            cell = self.store.lookup(loc)
        except MemoryFault as exc:
            raise Trap(str(exc)) from exc
        if not isinstance(cell.value, PackHV):
            raise Trap(f"location {loc} does not hold an existential package")
        package = cell.value
        linear_flavour = frame.resolve_qual(instr.qual) is QualConst.LIN
        if linear_flavour:
            self.store.update(loc, ArrayHV(0, ()))
            self.store.free(loc)
        results: list[Value] = []
        self._run_label(
            instr.body,
            [*params, package.value],
            results,
            frame,
            result_count=len(instr.arrow.results),
        )
        if not linear_flavour:
            stack.append(ref)
        stack.extend(results)
