"""RichWasm dynamic semantics (paper Fig. 4 and §3).

* :class:`Store` / :class:`MemorySpace` — the two-memory runtime store.
* :class:`Interpreter` — executes RichWasm modules (the reduction relation).
* :func:`run_gc` / :class:`GcPolicy` — the garbage-collection rule for the
  unrestricted memory, including finalization of linear cells it owns.
"""

from .gc import GcPolicy, GcStats, collect_roots, reachable_locations, run_gc
from .numerics import NumericTrap
from .reduction import ExecutionResult, Frame, FuelExhausted, Interpreter, Trap, value_size
from .store import Closure, MemoryCell, MemoryFault, MemorySpace, ModuleInstance, Store

__all__ = [name for name in dir() if not name.startswith("_")]
