"""Size expressions of the RichWasm type system.

RichWasm tracks the size (in bits, as in the paper's examples where an ``i32``
occupies 32 and an ``i64`` occupies 64) of every memory slot, struct field and
local variable so that *strong updates* can be checked to fit in the slot that
was originally allocated (paper §1, §2.1).

A size is one of

* a concrete natural number ``i``,
* a size variable ``σ`` bound by size quantification in a function type, or
* a sum ``sz + sz``.

Constraint contexts (:class:`repro.core.typing.constraints.SizeContext`) give
lower and upper bounds for size variables, which entailment uses to discharge
comparisons such as ``σ1 + σ2 ≤ σ3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from . import intern
from .intern import CLOSED, HashConsMeta, free_levels


@dataclass(frozen=True)
class SizeConst(metaclass=HashConsMeta):
    """A concrete size (a natural number of bits)."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"size must be non-negative, got {self.value}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)


@dataclass(frozen=True)
class SizeVar(metaclass=HashConsMeta):
    """A size variable ``σ`` (de Bruijn index into the size context)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"size variable index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"σ{self.index}"


@dataclass(frozen=True)
class SizePlus(metaclass=HashConsMeta):
    """The sum of two sizes."""

    left: "Size"
    right: "Size"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} + {self.right})"


Size = Union[SizeConst, SizeVar, SizePlus]


def _canonical_size(size: "Size") -> "Size":
    """The normal form ``const + σi + σj + ...`` with variables sorted.

    Interned canonical forms make size equality up to normalization an
    identity check: ``32 + σ`` and ``σ + 32`` share one canonical object.
    """

    const_total = 0
    var_indices: list[int] = []
    for leaf in size_leaves(size):
        if isinstance(leaf, SizeConst):
            const_total += leaf.value
        else:
            var_indices.append(leaf.index)
    result: Size = SizeConst(const_total)
    for index in sorted(var_indices):
        result = size_plus(result, SizeVar(index))
    return result


intern.register(SizeConst, levels=lambda n: CLOSED, canon=lambda n: n)
intern.register(SizeVar, levels=lambda n: (0, n.index + 1, 0, 0), canon=lambda n: n)
intern.register(SizePlus, canon=_canonical_size)


def size_const(value: int) -> SizeConst:
    """Construct a concrete size."""

    return SizeConst(value)


def size_plus(left: Size, right: Size) -> Size:
    """Construct a sum of sizes, folding concrete operands eagerly."""

    if isinstance(left, SizeConst) and isinstance(right, SizeConst):
        return SizeConst(left.value + right.value)
    if isinstance(left, SizeConst) and left.value == 0:
        return right
    if isinstance(right, SizeConst) and right.value == 0:
        return left
    return SizePlus(left, right)


def size_sum(sizes: list[Size] | tuple[Size, ...]) -> Size:
    """Sum a sequence of sizes (empty sum is 0)."""

    total: Size = SizeConst(0)
    for size in sizes:
        total = size_plus(total, size)
    return total


def size_free_vars(size: Size) -> set[int]:
    """The set of size-variable indices occurring in ``size``."""

    if isinstance(size, SizeVar):
        return {size.index}
    if isinstance(size, SizePlus):
        return size_free_vars(size.left) | size_free_vars(size.right)
    return set()


def size_is_closed(size: Size) -> bool:
    """True when ``size`` mentions no size variables."""

    return not size_free_vars(size)


def eval_size(size: Size, env: Optional[dict[int, int]] = None) -> int:
    """Evaluate a size to a concrete number of bits.

    ``env`` maps size-variable indices to concrete values.  Raises
    :class:`ValueError` for unbound variables.
    """

    if isinstance(size, SizeConst):
        return size.value
    if isinstance(size, SizeVar):
        if env is not None and size.index in env:
            return env[size.index]
        raise ValueError(f"cannot evaluate open size expression: unbound {size}")
    if isinstance(size, SizePlus):
        return eval_size(size.left, env) + eval_size(size.right, env)
    raise TypeError(f"not a size: {size!r}")


def size_leaves(size: Size) -> Iterator[Size]:
    """Iterate over the non-sum leaves of a size expression."""

    if isinstance(size, SizePlus):
        yield from size_leaves(size.left)
        yield from size_leaves(size.right)
    else:
        yield size


def normalize_size(size: Size) -> Size:
    """Normalize a size expression to ``const + var0 + var1 + ...`` form.

    The constant parts are folded together; variable leaves are kept in
    occurrence order.  Two sizes with the same normal form are semantically
    equal under every assignment of the variables.
    """

    const_total = 0
    vars_in_order: list[Size] = []
    for leaf in size_leaves(size):
        if isinstance(leaf, SizeConst):
            const_total += leaf.value
        else:
            vars_in_order.append(leaf)
    result: Size = SizeConst(const_total)
    for var in vars_in_order:
        result = SizePlus(result, var) if not (
            isinstance(result, SizeConst) and result.value == 0 and not vars_in_order
        ) else var
    # Rebuild carefully: start from the constant, then add variables.
    result = SizeConst(const_total)
    for var in vars_in_order:
        result = size_plus(result, var)
    return result


def size_structurally_equal(lhs: Size, rhs: Size) -> bool:
    """Equality up to normalization (constant folding, zero elimination)."""

    if lhs is rhs:
        return True
    if intern.interning_enabled() and "_hc" in lhs.__dict__ and "_hc" in rhs.__dict__:
        # Interned sizes: equal up to normalization ⇔ same canonical object.
        return intern.canonical(lhs) is intern.canonical(rhs)
    lhs_n = normalize_size(lhs)
    rhs_n = normalize_size(rhs)
    return _normal_form_key(lhs_n) == _normal_form_key(rhs_n)


def _normal_form_key(size: Size) -> tuple[int, tuple[int, ...]]:
    const_total = 0
    var_counts: dict[int, int] = {}
    for leaf in size_leaves(size):
        if isinstance(leaf, SizeConst):
            const_total += leaf.value
        elif isinstance(leaf, SizeVar):
            var_counts[leaf.index] = var_counts.get(leaf.index, 0) + 1
    flattened: list[int] = []
    for index in sorted(var_counts):
        flattened.extend([index] * var_counts[index])
    return const_total, tuple(flattened)


def shift_size(size: Size, amount: int, cutoff: int = 0) -> Size:
    """Shift size-variable indices >= ``cutoff`` by ``amount``."""

    if amount == 0 or ("_hc" in size.__dict__ and free_levels(size)[1] <= cutoff):
        # No free size variable at or above the cutoff: nothing to shift.
        return size
    if isinstance(size, SizeVar):
        if size.index >= cutoff:
            return SizeVar(size.index + amount)
        return size
    if isinstance(size, SizePlus):
        return SizePlus(
            shift_size(size.left, amount, cutoff),
            shift_size(size.right, amount, cutoff),
        )
    return size


def substitute_size(size: Size, replacements: dict[int, Size]) -> Size:
    """Substitute size variables according to ``replacements``."""

    if not replacements:
        return size
    if "_hc" in size.__dict__:
        level = free_levels(size)[1]
        if level == 0 or all(index >= level for index in replacements):
            return size
    if isinstance(size, SizeVar):
        return replacements.get(size.index, size)
    if isinstance(size, SizePlus):
        return size_plus(
            substitute_size(size.left, replacements),
            substitute_size(size.right, replacements),
        )
    return size


# Sizes of the numeric pretypes, in bits, shared by sizing and lowering.
SIZE_I32 = SizeConst(32)
SIZE_I64 = SizeConst(64)
SIZE_F32 = SizeConst(32)
SIZE_F64 = SizeConst(64)
SIZE_PTR = SizeConst(32)
SIZE_UNIT = SizeConst(0)
SIZE_TAG = SizeConst(32)
