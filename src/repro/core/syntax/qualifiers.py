"""Qualifiers of the RichWasm type system.

A RichWasm *type* is a pretype annotated with a qualifier (paper Fig. 2).
Concrete qualifiers are ``unr`` (unrestricted: the value may be freely
duplicated and dropped) and ``lin`` (linear: the value must be used exactly
once).  Qualifiers may also be *variables* bound by qualifier quantification
in function types; constraint contexts record lower/upper bounds for each
variable (paper §2.1, "Function types and polymorphism").

The concrete ordering is ``unr ⪯ lin``.  Entailment in the presence of
variables is resolved by :class:`repro.core.typing.constraints.QualContext`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from . import intern
from .intern import HashConsMeta


class QualConst(enum.Enum):
    """The two concrete qualifiers."""

    UNR = "unr"
    LIN = "lin"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_linear(self) -> bool:
        return self is QualConst.LIN

    @property
    def is_unrestricted(self) -> bool:
        return self is QualConst.UNR


#: Convenient aliases used pervasively by the typing and compiler code.
UNR = QualConst.UNR
LIN = QualConst.LIN


@dataclass(frozen=True)
class QualVar(metaclass=HashConsMeta):
    """A qualifier variable ``δ`` bound by a function-type quantifier.

    Variables are identified by a de Bruijn-style index into the qualifier
    component of the enclosing function environment (index 0 is the most
    recently bound variable).
    """

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"qualifier variable index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"δ{self.index}"


intern.register(QualVar, levels=lambda n: (0, 0, n.index + 1, 0), canon=lambda n: n)

#: A qualifier is either a concrete constant or a bound variable.
Qual = Union[QualConst, QualVar]


def qual_const_leq(lhs: QualConst, rhs: QualConst) -> bool:
    """Concrete qualifier ordering ``unr ⪯ lin``.

    ``lhs ⪯ rhs`` holds iff ``lhs`` is unrestricted or both are linear.
    """

    return lhs is QualConst.UNR or rhs is QualConst.LIN


def qual_const_join(lhs: QualConst, rhs: QualConst) -> QualConst:
    """Least upper bound of two concrete qualifiers."""

    if lhs is QualConst.LIN or rhs is QualConst.LIN:
        return QualConst.LIN
    return QualConst.UNR


def qual_const_meet(lhs: QualConst, rhs: QualConst) -> QualConst:
    """Greatest lower bound of two concrete qualifiers."""

    if lhs is QualConst.UNR or rhs is QualConst.UNR:
        return QualConst.UNR
    return QualConst.LIN


def is_qual(value: object) -> bool:
    """Return True if ``value`` is a qualifier (constant or variable)."""

    return isinstance(value, (QualConst, QualVar))


def shift_qual(qual: Qual, amount: int, cutoff: int = 0) -> Qual:
    """Shift qualifier variable indices >= ``cutoff`` by ``amount``.

    Used when moving a qualifier under additional quantifier binders.
    """

    if isinstance(qual, QualVar) and qual.index >= cutoff:
        return QualVar(qual.index + amount)
    return qual


def substitute_qual(qual: Qual, replacements: dict[int, Qual]) -> Qual:
    """Substitute qualifier variables according to ``replacements``.

    Variables whose index is not in ``replacements`` are left untouched.
    """

    if isinstance(qual, QualVar) and qual.index in replacements:
        return replacements[qual.index]
    return qual


def format_qual(qual: Qual) -> str:
    """Human-readable rendering used by the pretty printer."""

    if isinstance(qual, QualConst):
        return qual.value
    return str(qual)
