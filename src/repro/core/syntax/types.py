"""RichWasm pretypes, types, heap types, and function types (paper Fig. 2).

A *type* ``τ`` is a pretype ``p`` annotated with a qualifier ``q``.  Pretypes
include the numeric types, unit, tuples, references/pointers/capabilities,
recursive and existential (over locations) types, code references and
ownership tokens.  *Heap types* ``ψ`` describe the structured data stored in
memory: variants, structs (with per-field slot sizes), arrays, and existential
packages abstracting over a pretype.  *Function types* ``χ`` are arrow types
``τ1* → τ2*`` closed under quantification over locations, sizes, qualifiers
and pretypes, each with optional bound constraints.

All of these are mutually recursive so they live in one module; the public
names are re-exported from :mod:`repro.core.syntax`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from . import intern
from .intern import CLOSED, HashConsMeta, drop_binder, free_levels, levels_of_value
from .locations import Loc, LocVar, shift_loc, substitute_loc
from .qualifiers import LIN, UNR, Qual, QualConst, QualVar, shift_qual, substitute_qual
from .sizes import (
    SIZE_F32,
    SIZE_F64,
    SIZE_I32,
    SIZE_I64,
    SIZE_PTR,
    SIZE_UNIT,
    Size,
    SizeConst,
    shift_size,
    size_plus,
    substitute_size,
)

# ---------------------------------------------------------------------------
# Numeric pretypes
# ---------------------------------------------------------------------------


class NumType(enum.Enum):
    """Numeric pretypes ``np`` (paper Fig. 2)."""

    UI32 = "ui32"
    UI64 = "ui64"
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_integer(self) -> bool:
        return self in (NumType.UI32, NumType.UI64, NumType.I32, NumType.I64)

    @property
    def is_float(self) -> bool:
        return self in (NumType.F32, NumType.F64)

    @property
    def is_signed(self) -> bool:
        return self in (NumType.I32, NumType.I64)

    @property
    def bit_width(self) -> int:
        if self in (NumType.UI32, NumType.I32, NumType.F32):
            return 32
        return 64

    @property
    def size(self) -> SizeConst:
        return SIZE_I32 if self.bit_width == 32 else SIZE_I64


# ---------------------------------------------------------------------------
# Memory access privilege
# ---------------------------------------------------------------------------


class Privilege(enum.Enum):
    """Memory privilege ``π``: read-write or read-only (paper Fig. 2)."""

    RW = "rw"
    R = "r"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def can_write(self) -> bool:
        return self is Privilege.RW


RW = Privilege.RW
R = Privilege.R


# ---------------------------------------------------------------------------
# Pretypes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitT(metaclass=HashConsMeta):
    """The unit pretype."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "unit"


@dataclass(frozen=True)
class NumT(metaclass=HashConsMeta):
    """A numeric pretype."""

    numtype: NumType

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.numtype)


@dataclass(frozen=True)
class ProdT(metaclass=HashConsMeta):
    """A tuple pretype ``(τ*)``."""

    components: tuple["Type", ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = " ".join(str(c) for c in self.components)
        return f"(prod {inner})"


@dataclass(frozen=True)
class RefT(metaclass=HashConsMeta):
    """A reference ``ref π ℓ ψ``: a capability paired with a pointer."""

    privilege: Privilege
    loc: Loc
    heaptype: "HeapType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ref {self.privilege} {self.loc} {self.heaptype})"


@dataclass(frozen=True)
class PtrT(metaclass=HashConsMeta):
    """A bare pointer ``ptr ℓ`` (no ownership, no access rights)."""

    loc: Loc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ptr {self.loc})"


@dataclass(frozen=True)
class CapT(metaclass=HashConsMeta):
    """A capability ``cap π ℓ ψ``: ownership of / access rights to ``ℓ``."""

    privilege: Privilege
    loc: Loc
    heaptype: "HeapType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(cap {self.privilege} {self.loc} {self.heaptype})"


@dataclass(frozen=True)
class OwnT(metaclass=HashConsMeta):
    """An ownership token ``own ℓ`` (write ownership of a location)."""

    loc: Loc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(own {self.loc})"


@dataclass(frozen=True)
class RecT(metaclass=HashConsMeta):
    """An isorecursive pretype ``rec q ⪯ α. τ``.

    The bound ``q`` constrains the qualifiers of positions the recursive type
    may be unfolded into (paper §2.1).  The recursive variable is de Bruijn
    index 0 of the *pretype* variable context inside ``body``.
    """

    qual_bound: Qual
    body: "Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(rec {self.qual_bound} . {self.body})"


@dataclass(frozen=True)
class ExLocT(metaclass=HashConsMeta):
    """An existential over a location ``∃ρ. τ``.

    The location variable is de Bruijn index 0 of the location context inside
    ``body``.
    """

    body: "Type"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(exloc {self.body})"


@dataclass(frozen=True)
class CodeRefT(metaclass=HashConsMeta):
    """A code reference ``coderef χ``: a pointer into a function table."""

    funtype: "FunType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(coderef {self.funtype})"


@dataclass(frozen=True)
class VarT(metaclass=HashConsMeta):
    """A pretype variable ``α`` (de Bruijn index into the type context)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"type variable index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"α{self.index}"


Pretype = Union[
    UnitT,
    NumT,
    ProdT,
    RefT,
    PtrT,
    CapT,
    OwnT,
    RecT,
    ExLocT,
    CodeRefT,
    VarT,
]


# ---------------------------------------------------------------------------
# Types (qualified pretypes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type(metaclass=HashConsMeta):
    """A type ``τ = p^q``: a pretype annotated with a qualifier."""

    pretype: Pretype
    qual: Qual

    def __str__(self) -> str:  # pragma: no cover - trivial
        from .qualifiers import format_qual

        return f"{self.pretype}^{format_qual(self.qual)}"

    def with_qual(self, qual: Qual) -> "Type":
        """The same pretype under a different qualifier."""

        return Type(self.pretype, qual)


# ---------------------------------------------------------------------------
# Heap types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantHT(metaclass=HashConsMeta):
    """A variant heap type ``(variant τ*)``: a tagged union of cases."""

    cases: tuple[Type, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = " ".join(str(c) for c in self.cases)
        return f"(variant {inner})"


@dataclass(frozen=True)
class StructHT(metaclass=HashConsMeta):
    """A struct heap type ``(struct (τ, sz)*)``.

    Each field records both its type and the size of the slot it was
    allocated in; the latter is what makes strong updates checkable.
    """

    fields: tuple[tuple[Type, Size], ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = " ".join(f"({t} {s})" for t, s in self.fields)
        return f"(struct {inner})"

    @property
    def field_types(self) -> tuple[Type, ...]:
        return tuple(t for t, _ in self.fields)

    @property
    def field_sizes(self) -> tuple[Size, ...]:
        return tuple(s for _, s in self.fields)


@dataclass(frozen=True)
class ArrayHT(metaclass=HashConsMeta):
    """An array heap type ``(array τ)``: variable-length, homogeneous."""

    element: Type

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(array {self.element})"


@dataclass(frozen=True)
class ExHT(metaclass=HashConsMeta):
    """An existential heap type ``(∃ q ⪯ α ≲ sz. τ)``.

    Abstracts a pretype ``α`` with a qualifier lower bound ``q`` and a size
    upper bound ``sz`` inside ``body`` (pretype variable de Bruijn index 0).
    """

    qual_bound: Qual
    size_bound: Size
    body: Type

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(exists {self.qual_bound} {self.size_bound} . {self.body})"


HeapType = Union[VariantHT, StructHT, ArrayHT, ExHT]


# ---------------------------------------------------------------------------
# Quantifiers and function types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocQuant(metaclass=HashConsMeta):
    """Quantification over a memory location ``ρ``."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "(loc)"


@dataclass(frozen=True)
class SizeQuant(metaclass=HashConsMeta):
    """Quantification over a size ``sz* ≤ σ ≤ sz*``."""

    lower: tuple[Size, ...] = ()
    upper: tuple[Size, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(size {list(map(str, self.lower))} {list(map(str, self.upper))})"


@dataclass(frozen=True)
class QualQuant(metaclass=HashConsMeta):
    """Quantification over a qualifier ``q* ⪯ δ ⪯ q*``."""

    lower: tuple[Qual, ...] = ()
    upper: tuple[Qual, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(qual {list(map(str, self.lower))} {list(map(str, self.upper))})"


@dataclass(frozen=True)
class TypeQuant(metaclass=HashConsMeta):
    """Quantification over a pretype ``q ⪯ α (c?) ≲ sz``.

    ``qual_bound`` is the lower bound on the qualifiers of positions ``α``
    may be used at, ``size_bound`` an upper bound for the size of any
    instantiation, and ``heapable`` records whether the instantiation may be
    stored on the heap (i.e. whether it is guaranteed capability-free).
    """

    qual_bound: Qual
    size_bound: Size
    heapable: bool = True

    def __str__(self) -> str:  # pragma: no cover - trivial
        cap = "nocap" if self.heapable else "cap"
        return f"(type {self.qual_bound} {self.size_bound} {cap})"


Quant = Union[LocQuant, SizeQuant, QualQuant, TypeQuant]


@dataclass(frozen=True)
class ArrowType(metaclass=HashConsMeta):
    """A monomorphic arrow type ``τ1* → τ2*``."""

    params: tuple[Type, ...]
    results: tuple[Type, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        params = " ".join(str(t) for t in self.params)
        results = " ".join(str(t) for t in self.results)
        return f"[{params}] -> [{results}]"


@dataclass(frozen=True)
class FunType(metaclass=HashConsMeta):
    """A (possibly polymorphic) function type ``∀κ*. τ1* → τ2*``."""

    quants: tuple[Quant, ...]
    arrow: ArrowType

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.quants:
            return str(self.arrow)
        quants = " ".join(str(q) for q in self.quants)
        return f"(forall {quants} . {self.arrow})"

    @property
    def params(self) -> tuple[Type, ...]:
        return self.arrow.params

    @property
    def results(self) -> tuple[Type, ...]:
        return self.arrow.results


# ---------------------------------------------------------------------------
# Interning registration (hash-consing; see repro.core.syntax.intern)
# ---------------------------------------------------------------------------
#
# Every constructor above routes through the structural intern table, so
# structurally equal type trees are one object carrying cached hash /
# free-variable / canonical-form / digest summaries.  Classes owning de
# Bruijn variables or binders register an explicit free-level rule; the rest
# use the generic max-over-fields rule.


def _rec_levels(node: "RecT") -> tuple:
    return intern._max4(
        levels_of_value(node.qual_bound),
        drop_binder(free_levels(node.body), types=1),
    )


def _exloc_levels(node: "ExLocT") -> tuple:
    return drop_binder(free_levels(node.body), locs=1)


def _exht_levels(node: "ExHT") -> tuple:
    return intern._max4(
        intern._max4(levels_of_value(node.qual_bound), levels_of_value(node.size_bound)),
        drop_binder(free_levels(node.body), types=1),
    )


def _funtype_levels(node: "FunType") -> tuple:
    # Quantifiers bind left to right: each quantifier's bounds live in the
    # scope of the *previous* binders, the arrow under all of them.
    out = CLOSED
    locs = sizes = quals = types = 0
    for quant in node.quants:
        if isinstance(quant, LocQuant):
            locs += 1
        elif isinstance(quant, SizeQuant):
            out = intern._max4(
                out,
                drop_binder(
                    free_levels(quant), locs=locs, sizes=sizes, quals=quals, types=types
                ),
            )
            sizes += 1
        elif isinstance(quant, QualQuant):
            out = intern._max4(
                out,
                drop_binder(
                    free_levels(quant), locs=locs, sizes=sizes, quals=quals, types=types
                ),
            )
            quals += 1
        elif isinstance(quant, TypeQuant):
            out = intern._max4(
                out,
                drop_binder(
                    free_levels(quant), locs=locs, sizes=sizes, quals=quals, types=types
                ),
            )
            types += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a quantifier: {quant!r}")
    return intern._max4(
        out,
        drop_binder(
            free_levels(node.arrow), locs=locs, sizes=sizes, quals=quals, types=types
        ),
    )


intern.register(UnitT, levels=lambda n: CLOSED, canon=lambda n: n)
intern.register(NumT, levels=lambda n: CLOSED, canon=lambda n: n)
intern.register(VarT, levels=lambda n: (0, 0, 0, n.index + 1))
intern.register(ProdT)
intern.register(RefT)
intern.register(PtrT)
intern.register(CapT)
intern.register(OwnT)
intern.register(RecT, levels=_rec_levels)
intern.register(ExLocT, levels=_exloc_levels)
intern.register(CodeRefT)
intern.register(Type)
intern.register(VariantHT)
intern.register(StructHT)
intern.register(ArrayHT)
intern.register(ExHT, levels=_exht_levels)
intern.register(LocQuant, levels=lambda n: CLOSED, canon=lambda n: n)
intern.register(SizeQuant)
intern.register(QualQuant)
intern.register(TypeQuant)
intern.register(ArrowType)
intern.register(FunType, levels=_funtype_levels)


# ---------------------------------------------------------------------------
# Index instantiations (the ``z*`` / ``κ*`` arguments of call / inst)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocIndex:
    """A concrete location supplied for a location quantifier."""

    loc: Loc


@dataclass(frozen=True)
class SizeIndex:
    """A size supplied for a size quantifier."""

    size: Size


@dataclass(frozen=True)
class QualIndex:
    """A qualifier supplied for a qualifier quantifier."""

    qual: Qual


@dataclass(frozen=True)
class PretypeIndex:
    """A pretype supplied for a pretype quantifier."""

    pretype: Pretype


Index = Union[LocIndex, SizeIndex, QualIndex, PretypeIndex]


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def unit(qual: Qual = UNR) -> Type:
    """The unit type at the given qualifier (default unrestricted)."""

    return Type(UnitT(), qual)


def num(numtype: NumType, qual: Qual = UNR) -> Type:
    """A numeric type at the given qualifier."""

    return Type(NumT(numtype), qual)


def i32(qual: Qual = UNR) -> Type:
    return num(NumType.I32, qual)


def i64(qual: Qual = UNR) -> Type:
    return num(NumType.I64, qual)


def f32(qual: Qual = UNR) -> Type:
    return num(NumType.F32, qual)


def f64(qual: Qual = UNR) -> Type:
    return num(NumType.F64, qual)


def prod(components: Sequence[Type], qual: Qual = UNR) -> Type:
    """A tuple type."""

    return Type(ProdT(tuple(components)), qual)


def ref(privilege: Privilege, loc: Loc, heaptype: HeapType, qual: Qual) -> Type:
    return Type(RefT(privilege, loc, heaptype), qual)


def cap(privilege: Privilege, loc: Loc, heaptype: HeapType, qual: Qual = LIN) -> Type:
    return Type(CapT(privilege, loc, heaptype), qual)


def ptr(loc: Loc, qual: Qual = UNR) -> Type:
    return Type(PtrT(loc), qual)


def own(loc: Loc, qual: Qual = LIN) -> Type:
    return Type(OwnT(loc), qual)


def exloc(body: Type, qual: Qual) -> Type:
    return Type(ExLocT(body), qual)


def rec(qual_bound: Qual, body: Type, qual: Qual) -> Type:
    return Type(RecT(qual_bound, body), qual)


def var(index: int, qual: Qual) -> Type:
    return Type(VarT(index), qual)


def coderef(funtype: FunType, qual: Qual = UNR) -> Type:
    return Type(CodeRefT(funtype), qual)


def arrow(params: Sequence[Type], results: Sequence[Type]) -> ArrowType:
    return ArrowType(tuple(params), tuple(results))


def funtype(
    params: Sequence[Type],
    results: Sequence[Type],
    quants: Sequence[Quant] = (),
) -> FunType:
    return FunType(tuple(quants), arrow(params, results))


def struct_ht(fields: Sequence[tuple[Type, Size]]) -> StructHT:
    return StructHT(tuple((t, s) for t, s in fields))


def variant_ht(cases: Sequence[Type]) -> VariantHT:
    return VariantHT(tuple(cases))


def array_ht(element: Type) -> ArrayHT:
    return ArrayHT(element)


def ex_ht(qual_bound: Qual, size_bound: Size, body: Type) -> ExHT:
    return ExHT(qual_bound, size_bound, body)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def pretype_children(pretype: Pretype) -> Iterator[Type]:
    """Iterate over the immediate type children of a pretype."""

    if isinstance(pretype, ProdT):
        yield from pretype.components
    elif isinstance(pretype, (RefT, CapT)):
        yield from heaptype_children(pretype.heaptype)
    elif isinstance(pretype, RecT):
        yield pretype.body
    elif isinstance(pretype, ExLocT):
        yield pretype.body
    elif isinstance(pretype, CodeRefT):
        yield from pretype.funtype.arrow.params
        yield from pretype.funtype.arrow.results


def heaptype_children(heaptype: HeapType) -> Iterator[Type]:
    """Iterate over the immediate type children of a heap type."""

    if isinstance(heaptype, VariantHT):
        yield from heaptype.cases
    elif isinstance(heaptype, StructHT):
        yield from heaptype.field_types
    elif isinstance(heaptype, ArrayHT):
        yield heaptype.element
    elif isinstance(heaptype, ExHT):
        yield heaptype.body


def type_contains_cap(ty: Type) -> bool:
    """Syntactic check: does the type contain a capability or ownership token?

    The paper requires types stored in garbage-collected memory to be
    capability-free (``no_caps``), because capabilities are erased during
    lowering and the GC could not otherwise find the linear memory it owns.
    Pretype variables are handled by their ``heapable`` bound at the typing
    level (see :mod:`repro.core.typing.validity`); this helper only looks at
    the syntax.
    """

    pre = ty.pretype
    if isinstance(pre, (CapT, OwnT)):
        return True
    return any(type_contains_cap(child) for child in pretype_children(pre))


def heaptype_contains_cap(heaptype: HeapType) -> bool:
    """Syntactic ``no_caps`` check for heap types."""

    return any(type_contains_cap(child) for child in heaptype_children(heaptype))


# ---------------------------------------------------------------------------
# Shifting (de Bruijn) over the four variable namespaces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Shift:
    """How much to shift each of the four variable namespaces by."""

    locs: int = 0
    sizes: int = 0
    quals: int = 0
    types: int = 0

    def is_zero(self) -> bool:
        return self.locs == 0 and self.sizes == 0 and self.quals == 0 and self.types == 0


@dataclass(frozen=True)
class _Cutoffs:
    locs: int = 0
    sizes: int = 0
    quals: int = 0
    types: int = 0

    def bump(self, *, locs: int = 0, sizes: int = 0, quals: int = 0, types: int = 0) -> "_Cutoffs":
        return _Cutoffs(
            self.locs + locs,
            self.sizes + sizes,
            self.quals + quals,
            self.types + types,
        )


def _shift_skips(node, shift: Shift, cutoffs: Optional[_Cutoffs]) -> bool:
    """True when ``node`` (interned) has no free variable the shift moves.

    Every free variable of a shifted namespace must sit below the cutoff —
    trivially true for closed terms, the common case in the checker.
    """

    if "_hc" not in node.__dict__:
        return False
    levels = free_levels(node)
    if levels == CLOSED:
        return True
    if cutoffs is None:
        return (
            (shift.locs == 0 or levels[0] == 0)
            and (shift.sizes == 0 or levels[1] == 0)
            and (shift.quals == 0 or levels[2] == 0)
            and (shift.types == 0 or levels[3] == 0)
        )
    return (
        (shift.locs == 0 or levels[0] <= cutoffs.locs)
        and (shift.sizes == 0 or levels[1] <= cutoffs.sizes)
        and (shift.quals == 0 or levels[2] <= cutoffs.quals)
        and (shift.types == 0 or levels[3] <= cutoffs.types)
    )


def shift_type(ty: Type, shift: Shift, cutoffs: Optional[_Cutoffs] = None) -> Type:
    """Shift all free variables in a type by ``shift``."""

    if shift.is_zero() or _shift_skips(ty, shift, cutoffs):
        return ty
    cutoffs = cutoffs or _Cutoffs()
    return Type(
        _shift_pretype(ty.pretype, shift, cutoffs),
        shift_qual(ty.qual, shift.quals, cutoffs.quals),
    )


def shift_heaptype(ht: HeapType, shift: Shift, cutoffs: Optional[_Cutoffs] = None) -> HeapType:
    """Shift all free variables in a heap type by ``shift``."""

    if shift.is_zero() or _shift_skips(ht, shift, cutoffs):
        return ht
    cutoffs = cutoffs or _Cutoffs()
    if isinstance(ht, VariantHT):
        return VariantHT(tuple(shift_type(c, shift, cutoffs) for c in ht.cases))
    if isinstance(ht, StructHT):
        return StructHT(
            tuple(
                (shift_type(t, shift, cutoffs), shift_size(s, shift.sizes, cutoffs.sizes))
                for t, s in ht.fields
            )
        )
    if isinstance(ht, ArrayHT):
        return ArrayHT(shift_type(ht.element, shift, cutoffs))
    if isinstance(ht, ExHT):
        return ExHT(
            shift_qual(ht.qual_bound, shift.quals, cutoffs.quals),
            shift_size(ht.size_bound, shift.sizes, cutoffs.sizes),
            shift_type(ht.body, shift, cutoffs.bump(types=1)),
        )
    raise TypeError(f"not a heap type: {ht!r}")


def shift_funtype(ft: FunType, shift: Shift, cutoffs: Optional[_Cutoffs] = None) -> FunType:
    """Shift all free variables in a function type by ``shift``."""

    if shift.is_zero() or _shift_skips(ft, shift, cutoffs):
        return ft
    cutoffs = cutoffs or _Cutoffs()
    inner = cutoffs
    new_quants: list[Quant] = []
    for quant in ft.quants:
        if isinstance(quant, LocQuant):
            new_quants.append(quant)
            inner = inner.bump(locs=1)
        elif isinstance(quant, SizeQuant):
            new_quants.append(
                SizeQuant(
                    tuple(shift_size(s, shift.sizes, inner.sizes) for s in quant.lower),
                    tuple(shift_size(s, shift.sizes, inner.sizes) for s in quant.upper),
                )
            )
            inner = inner.bump(sizes=1)
        elif isinstance(quant, QualQuant):
            new_quants.append(
                QualQuant(
                    tuple(shift_qual(q, shift.quals, inner.quals) for q in quant.lower),
                    tuple(shift_qual(q, shift.quals, inner.quals) for q in quant.upper),
                )
            )
            inner = inner.bump(quals=1)
        elif isinstance(quant, TypeQuant):
            new_quants.append(
                TypeQuant(
                    shift_qual(quant.qual_bound, shift.quals, inner.quals),
                    shift_size(quant.size_bound, shift.sizes, inner.sizes),
                    quant.heapable,
                )
            )
            inner = inner.bump(types=1)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a quantifier: {quant!r}")
    new_arrow = ArrowType(
        tuple(shift_type(t, shift, inner) for t in ft.arrow.params),
        tuple(shift_type(t, shift, inner) for t in ft.arrow.results),
    )
    return FunType(tuple(new_quants), new_arrow)


def _shift_pretype(pre: Pretype, shift: Shift, cutoffs: _Cutoffs) -> Pretype:
    if _shift_skips(pre, shift, cutoffs):
        return pre
    if isinstance(pre, (UnitT, NumT)):
        return pre
    if isinstance(pre, VarT):
        if pre.index >= cutoffs.types:
            return VarT(pre.index + shift.types)
        return pre
    if isinstance(pre, ProdT):
        return ProdT(tuple(shift_type(c, shift, cutoffs) for c in pre.components))
    if isinstance(pre, RefT):
        return RefT(
            pre.privilege,
            shift_loc(pre.loc, shift.locs, cutoffs.locs),
            shift_heaptype(pre.heaptype, shift, cutoffs),
        )
    if isinstance(pre, CapT):
        return CapT(
            pre.privilege,
            shift_loc(pre.loc, shift.locs, cutoffs.locs),
            shift_heaptype(pre.heaptype, shift, cutoffs),
        )
    if isinstance(pre, PtrT):
        return PtrT(shift_loc(pre.loc, shift.locs, cutoffs.locs))
    if isinstance(pre, OwnT):
        return OwnT(shift_loc(pre.loc, shift.locs, cutoffs.locs))
    if isinstance(pre, RecT):
        return RecT(
            shift_qual(pre.qual_bound, shift.quals, cutoffs.quals),
            shift_type(pre.body, shift, cutoffs.bump(types=1)),
        )
    if isinstance(pre, ExLocT):
        return ExLocT(shift_type(pre.body, shift, cutoffs.bump(locs=1)))
    if isinstance(pre, CodeRefT):
        return CodeRefT(shift_funtype(pre.funtype, shift, cutoffs))
    raise TypeError(f"not a pretype: {pre!r}")


# ---------------------------------------------------------------------------
# Substitution of indices into types
# ---------------------------------------------------------------------------


@dataclass
class Subst:
    """A simultaneous substitution over the four variable namespaces.

    Each map sends a de Bruijn index to its replacement.  Substitution does
    not capture: when descending under a binder of namespace X the domain and
    free variables of the X component are shifted accordingly.
    """

    locs: dict[int, Loc] = field(default_factory=dict)
    sizes: dict[int, Size] = field(default_factory=dict)
    quals: dict[int, Qual] = field(default_factory=dict)
    types: dict[int, Pretype] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (self.locs or self.sizes or self.quals or self.types)

    def under_loc_binder(self) -> "Subst":
        return Subst(
            {k + 1: shift_loc(v, 1) for k, v in self.locs.items()},
            dict(self.sizes),
            dict(self.quals),
            dict(self.types),
        )

    def under_size_binder(self) -> "Subst":
        return Subst(
            dict(self.locs),
            {k + 1: shift_size(v, 1) for k, v in self.sizes.items()},
            dict(self.quals),
            dict(self.types),
        )

    def under_qual_binder(self) -> "Subst":
        return Subst(
            dict(self.locs),
            dict(self.sizes),
            {k + 1: shift_qual(v, 1) for k, v in self.quals.items()},
            dict(self.types),
        )

    def under_type_binder(self) -> "Subst":
        return Subst(
            dict(self.locs),
            dict(self.sizes),
            dict(self.quals),
            {k + 1: _shift_pretype(v, Shift(types=1), _Cutoffs()) for k, v in self.types.items()},
        )


def _subst_skips(node, subst: Subst) -> bool:
    """True when no free variable of ``node`` (interned) is in the domain."""

    if "_hc" not in node.__dict__:
        return False
    levels = free_levels(node)
    if levels == CLOSED:
        return True
    # Free indices per namespace are all < level; a replacement only applies
    # when some mapped index is below that level.
    return (
        (not subst.locs or all(index >= levels[0] for index in subst.locs))
        and (not subst.sizes or all(index >= levels[1] for index in subst.sizes))
        and (not subst.quals or all(index >= levels[2] for index in subst.quals))
        and (not subst.types or all(index >= levels[3] for index in subst.types))
    )


def subst_type(ty: Type, subst: Subst) -> Type:
    """Apply a substitution to a type."""

    if subst.is_empty() or _subst_skips(ty, subst):
        return ty
    new_pre = subst_pretype(ty.pretype, subst)
    new_qual = substitute_qual(ty.qual, subst.quals)
    if isinstance(new_pre, Type):  # variable replaced by a full pretype stays a pretype
        raise TypeError("substitution produced a type where a pretype was expected")
    return Type(new_pre, new_qual)


def subst_pretype(pre: Pretype, subst: Subst) -> Pretype:
    """Apply a substitution to a pretype."""

    if subst.is_empty() or _subst_skips(pre, subst):
        return pre
    if isinstance(pre, (UnitT, NumT)):
        return pre
    if isinstance(pre, VarT):
        return subst.types.get(pre.index, pre)
    if isinstance(pre, ProdT):
        return ProdT(tuple(subst_type(c, subst) for c in pre.components))
    if isinstance(pre, RefT):
        return RefT(
            pre.privilege,
            substitute_loc(pre.loc, subst.locs),
            subst_heaptype(pre.heaptype, subst),
        )
    if isinstance(pre, CapT):
        return CapT(
            pre.privilege,
            substitute_loc(pre.loc, subst.locs),
            subst_heaptype(pre.heaptype, subst),
        )
    if isinstance(pre, PtrT):
        return PtrT(substitute_loc(pre.loc, subst.locs))
    if isinstance(pre, OwnT):
        return OwnT(substitute_loc(pre.loc, subst.locs))
    if isinstance(pre, RecT):
        return RecT(
            substitute_qual(pre.qual_bound, subst.quals),
            subst_type(pre.body, subst.under_type_binder()),
        )
    if isinstance(pre, ExLocT):
        return ExLocT(subst_type(pre.body, subst.under_loc_binder()))
    if isinstance(pre, CodeRefT):
        return CodeRefT(subst_funtype(pre.funtype, subst))
    raise TypeError(f"not a pretype: {pre!r}")


def subst_heaptype(ht: HeapType, subst: Subst) -> HeapType:
    """Apply a substitution to a heap type."""

    if subst.is_empty() or _subst_skips(ht, subst):
        return ht
    if isinstance(ht, VariantHT):
        return VariantHT(tuple(subst_type(c, subst) for c in ht.cases))
    if isinstance(ht, StructHT):
        return StructHT(
            tuple((subst_type(t, subst), substitute_size(s, subst.sizes)) for t, s in ht.fields)
        )
    if isinstance(ht, ArrayHT):
        return ArrayHT(subst_type(ht.element, subst))
    if isinstance(ht, ExHT):
        return ExHT(
            substitute_qual(ht.qual_bound, subst.quals),
            substitute_size(ht.size_bound, subst.sizes),
            subst_type(ht.body, subst.under_type_binder()),
        )
    raise TypeError(f"not a heap type: {ht!r}")


def subst_funtype(ft: FunType, subst: Subst) -> FunType:
    """Apply a substitution to a function type."""

    if subst.is_empty() or _subst_skips(ft, subst):
        return ft
    inner = subst
    new_quants: list[Quant] = []
    for quant in ft.quants:
        if isinstance(quant, LocQuant):
            new_quants.append(quant)
            inner = inner.under_loc_binder()
        elif isinstance(quant, SizeQuant):
            new_quants.append(
                SizeQuant(
                    tuple(substitute_size(s, inner.sizes) for s in quant.lower),
                    tuple(substitute_size(s, inner.sizes) for s in quant.upper),
                )
            )
            inner = inner.under_size_binder()
        elif isinstance(quant, QualQuant):
            new_quants.append(
                QualQuant(
                    tuple(substitute_qual(q, inner.quals) for q in quant.lower),
                    tuple(substitute_qual(q, inner.quals) for q in quant.upper),
                )
            )
            inner = inner.under_qual_binder()
        elif isinstance(quant, TypeQuant):
            new_quants.append(
                TypeQuant(
                    substitute_qual(quant.qual_bound, inner.quals),
                    substitute_size(quant.size_bound, inner.sizes),
                    quant.heapable,
                )
            )
            inner = inner.under_type_binder()
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a quantifier: {quant!r}")
    new_arrow = ArrowType(
        tuple(subst_type(t, inner) for t in ft.arrow.params),
        tuple(subst_type(t, inner) for t in ft.arrow.results),
    )
    return FunType(tuple(new_quants), new_arrow)


def instantiate_funtype(ft: FunType, indices: Sequence[Index]) -> ArrowType:
    """Instantiate all quantifiers of a function type with concrete indices.

    ``indices`` must match the quantifier list in kind and length; the
    resulting arrow type has no remaining bound variables from ``ft``'s own
    quantifiers.
    """

    if len(indices) != len(ft.quants):
        raise ValueError(
            f"function type expects {len(ft.quants)} indices, got {len(indices)}"
        )
    subst = Subst()
    # Quantifiers are bound left-to-right, so the *last* quantifier has de
    # Bruijn index 0 inside the arrow type.  Build the substitution for the
    # arrow by walking the quantifier list in reverse.
    loc_idx = size_idx = qual_idx = type_idx = 0
    for quant, index in zip(reversed(ft.quants), reversed(list(indices))):
        if isinstance(quant, LocQuant):
            if not isinstance(index, LocIndex):
                raise TypeError(f"expected a location index for {quant}, got {index!r}")
            subst.locs[loc_idx] = index.loc
            loc_idx += 1
        elif isinstance(quant, SizeQuant):
            if not isinstance(index, SizeIndex):
                raise TypeError(f"expected a size index for {quant}, got {index!r}")
            subst.sizes[size_idx] = index.size
            size_idx += 1
        elif isinstance(quant, QualQuant):
            if not isinstance(index, QualIndex):
                raise TypeError(f"expected a qualifier index for {quant}, got {index!r}")
            subst.quals[qual_idx] = index.qual
            qual_idx += 1
        elif isinstance(quant, TypeQuant):
            if not isinstance(index, PretypeIndex):
                raise TypeError(f"expected a pretype index for {quant}, got {index!r}")
            subst.types[type_idx] = index.pretype
            type_idx += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a quantifier: {quant!r}")
    return ArrowType(
        tuple(subst_type(t, subst) for t in ft.arrow.params),
        tuple(subst_type(t, subst) for t in ft.arrow.results),
    )


def unfold_rec(rec_pre: RecT, qual: Qual) -> Type:
    """Unfold an isorecursive type one level.

    ``rec q ⪯ α. τ`` at qualifier ``q'`` unfolds to ``τ[rec q ⪯ α. τ / α]``.
    The unfolding is independent of the ambient qualifier, so it is memoized
    on the interned ``rec`` node (``rec.fold``/``rec.unfold`` re-unfold the
    same types constantly).
    """

    cached = rec_pre.__dict__.get("_hc_unfold")
    if cached is not None:
        return cached
    subst = Subst(types={0: RecT(rec_pre.qual_bound, rec_pre.body)})
    unfolded = subst_type(rec_pre.body, subst)
    if "_hc" in rec_pre.__dict__:
        rec_pre.__dict__["_hc_unfold"] = unfolded
    return unfolded


def unpack_exloc(ex_pre: ExLocT, loc: Loc) -> Type:
    """Open an existential location package with a concrete witness."""

    return subst_type(ex_pre.body, Subst(locs={0: loc}))


def pack_exloc_type(body_with_loc: Type) -> Type:
    """Helper used in tests: wrap a type in a trivially bound existential."""

    return Type(ExLocT(body_with_loc), body_with_loc.qual)
