"""RichWasm values and heap values (paper Fig. 2, "Terms").

Values are the results of computation; heap values are the structured data
stored in the two memories.  These classes are shared between the typing
rules (value typing, Fig. 6) and the dynamic semantics (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .locations import Loc
from .types import FunType, HeapType, Index, NumType, Pretype


@dataclass(frozen=True)
class UnitV:
    """The unit value ``()``."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "()"


@dataclass(frozen=True)
class NumV:
    """A numeric constant ``np.const c``."""

    numtype: NumType
    value: Union[int, float]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.numtype}.const {self.value})"


@dataclass(frozen=True)
class ProdV:
    """A tuple of values ``(v*)``."""

    components: tuple["Value", ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "(" + " ".join(str(v) for v in self.components) + ")"


@dataclass(frozen=True)
class RefV:
    """A reference value ``ref ℓ``."""

    loc: Loc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ref {self.loc})"


@dataclass(frozen=True)
class PtrV:
    """A pointer value ``ptr ℓ``."""

    loc: Loc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ptr {self.loc})"


@dataclass(frozen=True)
class CapV:
    """A capability value ``cap`` (computationally irrelevant)."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "cap"


@dataclass(frozen=True)
class OwnV:
    """An ownership token value ``own`` (computationally irrelevant)."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "own"


@dataclass(frozen=True)
class FoldV:
    """A folded recursive value ``fold v``."""

    value: "Value"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(fold {self.value})"


@dataclass(frozen=True)
class MempackV:
    """An existential location package ``mempack ℓ v``."""

    loc: Loc
    value: "Value"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(mempack {self.loc} {self.value})"


@dataclass(frozen=True)
class CoderefV:
    """A code reference value ``coderef i j z*``.

    ``inst_index`` is the module instance, ``table_index`` the entry in its
    table, and ``indices`` the concrete instantiation of the function's
    polymorphic quantifiers accumulated so far.
    """

    inst_index: int
    table_index: int
    indices: tuple[Index, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(coderef {self.inst_index} {self.table_index})"


Value = Union[
    UnitV,
    NumV,
    ProdV,
    RefV,
    PtrV,
    CapV,
    OwnV,
    FoldV,
    MempackV,
    CoderefV,
]


# ---------------------------------------------------------------------------
# Heap values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantHV:
    """A variant heap value ``(variant i v)``: case ``i`` holding ``v``."""

    tag: int
    value: Value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(variant {self.tag} {self.value})"


@dataclass(frozen=True)
class StructHV:
    """A struct heap value ``(struct v*)``."""

    fields: tuple[Value, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "(struct " + " ".join(str(v) for v in self.fields) + ")"


@dataclass(frozen=True)
class ArrayHV:
    """An array heap value ``(array i v*)`` with length ``i``."""

    length: int
    elements: tuple[Value, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(array {self.length} ...)"


@dataclass(frozen=True)
class PackHV:
    """An existential package heap value ``(pack p v ψ)``."""

    witness: Pretype
    value: Value
    heaptype: HeapType

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(pack {self.witness} {self.value} {self.heaptype})"


HeapValue = Union[VariantHV, StructHV, ArrayHV, PackHV]


EMPTY_ARRAY = ArrayHV(0, ())


def is_value(obj: object) -> bool:
    """True when ``obj`` is a RichWasm value."""

    return isinstance(
        obj,
        (UnitV, NumV, ProdV, RefV, PtrV, CapV, OwnV, FoldV, MempackV, CoderefV),
    )


def is_heap_value(obj: object) -> bool:
    """True when ``obj`` is a RichWasm heap value."""

    return isinstance(obj, (VariantHV, StructHV, ArrayHV, PackHV))


def value_locations(value: Value) -> set[Loc]:
    """All concrete locations mentioned in a value (GC roots helper)."""

    from .locations import ConcreteLoc

    found: set[Loc] = set()

    def visit(val: Value) -> None:
        if isinstance(val, (RefV, PtrV)):
            if isinstance(val.loc, ConcreteLoc):
                found.add(val.loc)
        elif isinstance(val, ProdV):
            for component in val.components:
                visit(component)
        elif isinstance(val, FoldV):
            visit(val.value)
        elif isinstance(val, MempackV):
            visit(val.value)

    visit(value)
    return found


def heap_value_locations(heap_value: HeapValue) -> set[Loc]:
    """All concrete locations mentioned in a heap value."""

    found: set[Loc] = set()
    if isinstance(heap_value, VariantHV):
        found |= value_locations(heap_value.value)
    elif isinstance(heap_value, StructHV):
        for value in heap_value.fields:
            found |= value_locations(value)
    elif isinstance(heap_value, ArrayHV):
        for value in heap_value.elements:
            found |= value_locations(value)
    elif isinstance(heap_value, PackHV):
        found |= value_locations(heap_value.value)
    return found


def heap_value_contains_cap(heap_value: HeapValue) -> bool:
    """Does a heap value syntactically contain a capability/ownership token?

    Used by the store-typing judgement which forbids bare capabilities in
    garbage-collected memory (paper §3, "Garbage collection").
    """

    def value_has_cap(value: Value) -> bool:
        if isinstance(value, (CapV, OwnV)):
            return True
        if isinstance(value, ProdV):
            return any(value_has_cap(component) for component in value.components)
        if isinstance(value, (FoldV, MempackV)):
            return value_has_cap(value.value)
        return False

    if isinstance(heap_value, VariantHV):
        return value_has_cap(heap_value.value)
    if isinstance(heap_value, StructHV):
        return any(value_has_cap(value) for value in heap_value.fields)
    if isinstance(heap_value, ArrayHV):
        return any(value_has_cap(value) for value in heap_value.elements)
    if isinstance(heap_value, PackHV):
        return value_has_cap(heap_value.value)
    return False
