"""Memory locations of the RichWasm type system and runtime.

RichWasm has two global flat memories: the **linear** memory (manually
managed; references into it must be treated linearly) and the **unrestricted**
memory (garbage collected; behaves like ML references).  Locations are natural
numbers tagged with the memory they live in, or location *variables* ``ρ``
introduced by location quantification / existential location types
(paper §2.1, "Heap types and memory model").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from . import intern
from .intern import CLOSED, HashConsMeta


class MemKind(enum.Enum):
    """Which of the two global memories a concrete location belongs to."""

    LIN = "lin"
    UNR = "unr"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_linear(self) -> bool:
        return self is MemKind.LIN

    @property
    def is_unrestricted(self) -> bool:
        return self is MemKind.UNR


LIN_MEM = MemKind.LIN
UNR_MEM = MemKind.UNR


@dataclass(frozen=True)
class ConcreteLoc(metaclass=HashConsMeta):
    """A concrete location ``i_lin`` / ``i_unr``: an address in one memory."""

    address: int
    mem: MemKind

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"location address must be >= 0, got {self.address}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.address}{self.mem.value}"


@dataclass(frozen=True)
class LocVar(metaclass=HashConsMeta):
    """A location variable ``ρ`` (de Bruijn index into the location context)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"location variable index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ρ{self.index}"


intern.register(ConcreteLoc, levels=lambda n: CLOSED, canon=lambda n: n)
intern.register(LocVar, levels=lambda n: (n.index + 1, 0, 0, 0), canon=lambda n: n)

Loc = Union[ConcreteLoc, LocVar]


def lin_loc(address: int) -> ConcreteLoc:
    """A concrete address in the linear (manually managed) memory."""

    return ConcreteLoc(address, MemKind.LIN)


def unr_loc(address: int) -> ConcreteLoc:
    """A concrete address in the unrestricted (garbage collected) memory."""

    return ConcreteLoc(address, MemKind.UNR)


def is_concrete(loc: Loc) -> bool:
    """True when ``loc`` is an address rather than a variable."""

    return isinstance(loc, ConcreteLoc)


def shift_loc(loc: Loc, amount: int, cutoff: int = 0) -> Loc:
    """Shift location-variable indices >= ``cutoff`` by ``amount``."""

    if isinstance(loc, LocVar) and loc.index >= cutoff:
        return LocVar(loc.index + amount)
    return loc


def substitute_loc(loc: Loc, replacements: dict[int, Loc]) -> Loc:
    """Substitute location variables according to ``replacements``."""

    if isinstance(loc, LocVar) and loc.index in replacements:
        return replacements[loc.index]
    return loc


def format_loc(loc: Loc) -> str:
    """Human-readable rendering used by the pretty printer."""

    return str(loc)
