"""Hash-consing (interning) for the RichWasm type syntax.

The type checker compares, shifts, substitutes and hashes the same type
trees over and over; PR 5 makes those operations cheap by *interning* every
``Type``/``Pretype``/``HeapType``/``Size``/``Qual``-variable/quantifier
node: all constructors route through one structural table, so two
structurally equal terms are **the same object**.  Each interned node lazily
carries

* a cached structural ``__hash__`` (computed once, O(children));
* a *free-variable summary* (:func:`free_levels`) — per de Bruijn namespace
  (locations, sizes, qualifiers, pretypes) the number of binders needed to
  close the term — which lets shift/substitution short-circuit on closed
  terms;
* a *canonical form* (:func:`canonical`) in which every size expression is
  normalized (constants folded, variables sorted), so type equality up to
  size normalization (``32 + σ`` ≡ ``σ + 32``) is one identity check;
* a stable *content digest* (:func:`structural_digest`) — a SHA-256 over the
  structure only (class names, field values, recursion over children), never
  over ``id()`` or ``hash()`` — the building block of the runtime cache's
  content keys, identical across processes.

How it plugs in: the syntax dataclasses take :class:`HashConsMeta` as their
metaclass and the defining module calls :func:`register` after the class
definition (supplying a free-variable rule where the generic max-over-fields
rule is wrong, i.e. for variables and binders).  The metaclass intercepts
construction: a structural hit returns the existing node, a miss builds the
node normally (``__post_init__`` validation included) and files it.  Nodes
built while interning is :func:`interning_disabled` (the benchmark baseline
mode) or arriving from another process (old pickles) are simply *not
interned*: equality and the shift/substitution fast paths detect the missing
mark and fall back to the structural algorithms, so mixed inputs stay
correct.

The table holds strong references and is never cleared: the canonical
representative of a structure must stay canonical for the lifetime of the
process (two live "interned" twins would break identity equality).  The
working set is the type vocabulary of the compiled programs, which is small
and stable in a serving process — the same unbounded-by-design trade-off as
:class:`repro.runtime.ModuleCache`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from contextlib import contextmanager
from typing import Callable, Optional

__all__ = [
    "CLOSED",
    "HashConsMeta",
    "canonical",
    "content_digest",
    "free_levels",
    "intern_table_size",
    "interning_disabled",
    "interning_enabled",
    "is_interned",
    "register",
    "structural_digest",
]

#: The four de Bruijn namespaces, in the order used by level tuples.
NAMESPACES = ("locs", "sizes", "quals", "types")

#: The free-level summary of a closed term (no free variables anywhere).
CLOSED = (0, 0, 0, 0)

_INTERN_TABLE: dict = {}
_ENABLED = True

#: Per-class free-level rules (set by :func:`register`); classes without a
#: custom rule use the generic max-over-fields rule.
_LEVELS_RULES: dict[type, Callable] = {}
#: Per-class canonicalization rules; the generic rule rebuilds the node from
#: canonicalized fields.
_CANON_RULES: dict[type, Callable] = {}
#: Every class registered for interning.
_REGISTERED: set[type] = set()


def interning_enabled() -> bool:
    """Whether constructors currently route through the intern table."""

    return _ENABLED


@contextmanager
def interning_disabled():
    """Build nodes *without* interning (the benchmark baseline mode).

    Nodes constructed inside the block carry no interning mark: equality,
    shifting, substitution and the memo layers all take their structural
    slow paths for them, faithfully reproducing the pre-interning checker.
    """

    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def is_interned(obj: object) -> bool:
    """True when ``obj`` is the canonical interned representative."""

    d = getattr(obj, "__dict__", None)
    return bool(d) and "_hc" in d


def intern_table_size() -> int:
    """Number of distinct structures currently interned (diagnostics)."""

    return len(_INTERN_TABLE)


# ---------------------------------------------------------------------------
# The metaclass: constructor interception
# ---------------------------------------------------------------------------


class HashConsMeta(type):
    """Routes ``cls(...)`` through the structural intern table."""

    def __call__(cls, *args, **kwargs):
        arity = getattr(cls, "_hc_arity", None)
        if arity is None or not _ENABLED:
            # Not registered yet (class body still being built) or interning
            # globally off: construct a plain, unmarked instance.
            return super().__call__(*args, **kwargs)
        if kwargs or len(args) != arity:
            args = _bind_fields(cls, args, kwargs)
        key = (cls, args)
        obj = _INTERN_TABLE.get(key)
        if obj is not None:
            return obj
        obj = super().__call__(*args)
        obj.__dict__["_hc"] = True
        return _INTERN_TABLE.setdefault(key, obj)


def _bind_fields(cls, args: tuple, kwargs: dict) -> tuple:
    """Normalize positional/keyword arguments to the full field tuple."""

    names = cls._hc_fields
    if len(args) > len(names):
        raise TypeError(
            f"{cls.__name__}() takes {len(names)} arguments but {len(args)} were given"
        )
    merged = dict(zip(names, args))
    for name, value in kwargs.items():
        if name not in cls._hc_field_set:
            raise TypeError(f"{cls.__name__}() got an unexpected keyword argument {name!r}")
        if name in merged:
            raise TypeError(f"{cls.__name__}() got multiple values for argument {name!r}")
        merged[name] = value
    defaults = cls._hc_defaults
    out = []
    for name in names:
        if name in merged:
            out.append(merged[name])
        elif name in defaults:
            out.append(defaults[name])
        else:
            raise TypeError(f"{cls.__name__}() missing required argument: {name!r}")
    return tuple(out)


# ---------------------------------------------------------------------------
# Registration: cached hash / equality / pickling
# ---------------------------------------------------------------------------


def register(cls, *, levels: Optional[Callable] = None, canon: Optional[Callable] = None) -> type:
    """Register a frozen dataclass (with :class:`HashConsMeta`) for interning.

    ``levels`` overrides the generic free-variable rule (needed for variable
    leaves and binders); ``canon`` overrides the generic rebuild-from-
    canonical-fields rule (needed for size normalization).
    """

    flds = dataclasses.fields(cls)
    for f in flds:
        if f.default_factory is not dataclasses.MISSING:  # pragma: no cover - defensive
            raise TypeError(f"cannot intern {cls.__name__}: field {f.name} has a default_factory")
    cls._hc_fields = tuple(f.name for f in flds)
    cls._hc_field_set = frozenset(cls._hc_fields)
    cls._hc_arity = len(flds)
    cls._hc_defaults = {
        f.name: f.default for f in flds if f.default is not dataclasses.MISSING
    }
    cls.__hash__ = _hc_hash
    cls.__eq__ = _hc_eq
    cls.__reduce__ = _hc_reduce
    _REGISTERED.add(cls)
    if levels is not None:
        _LEVELS_RULES[cls] = levels
    if canon is not None:
        _CANON_RULES[cls] = canon
    return cls


def _field_values(obj) -> tuple:
    return tuple(getattr(obj, name) for name in type(obj)._hc_fields)


def _hc_hash(self) -> int:
    d = self.__dict__
    h = d.get("_hc_hash")
    if h is None:
        h = hash((type(self).__name__,) + _field_values(self))
        d["_hc_hash"] = h
    return h


def _hc_eq(self, other):
    if self is other:
        return True
    if type(self) is not type(other):
        return NotImplemented
    if "_hc" in self.__dict__ and "_hc" in other.__dict__:
        # Both canonical: structurally equal terms would be the same object.
        return False
    return _field_values(self) == _field_values(other)


def _remake(cls, values):
    return cls(*values)


def _hc_reduce(self):
    # Pickle/deepcopy re-route through the constructor, so deserialized nodes
    # re-intern into the receiving process's table (and none of the lazily
    # cached summaries travel).
    return (_remake, (type(self), _field_values(self)))


# ---------------------------------------------------------------------------
# Free-variable summaries
# ---------------------------------------------------------------------------


def _max4(a: tuple, b: tuple) -> tuple:
    if a is CLOSED or a == CLOSED:
        return b
    if b is CLOSED or b == CLOSED:
        return a
    return (
        a[0] if a[0] >= b[0] else b[0],
        a[1] if a[1] >= b[1] else b[1],
        a[2] if a[2] >= b[2] else b[2],
        a[3] if a[3] >= b[3] else b[3],
    )


def drop_binder(levels: tuple, *, locs: int = 0, sizes: int = 0, quals: int = 0, types: int = 0) -> tuple:
    """The free levels of a term seen from *outside* binders it sits under."""

    if levels == CLOSED:
        return CLOSED
    out = (
        max(0, levels[0] - locs),
        max(0, levels[1] - sizes),
        max(0, levels[2] - quals),
        max(0, levels[3] - types),
    )
    return CLOSED if out == CLOSED else out


def levels_of_value(value) -> tuple:
    """Free levels of a field value (node, tuple of nodes, or primitive)."""

    t = type(value)
    if t in _REGISTERED:
        return free_levels(value)
    if t is tuple:
        out = CLOSED
        for item in value:
            out = _max4(out, levels_of_value(item))
        return out
    return CLOSED


def _generic_levels(node) -> tuple:
    out = CLOSED
    for name in type(node)._hc_fields:
        out = _max4(out, levels_of_value(getattr(node, name)))
    return out


def free_levels(node) -> tuple:
    """``(locs, sizes, quals, types)`` — per namespace, the number of binders
    needed to close ``node`` (0 everywhere ⇔ closed).  Cached per node."""

    d = node.__dict__
    levels = d.get("_hc_fvs")
    if levels is None:
        rule = _LEVELS_RULES.get(type(node))
        levels = rule(node) if rule is not None else _generic_levels(node)
        if levels == CLOSED:
            levels = CLOSED
        d["_hc_fvs"] = levels
    return levels


# ---------------------------------------------------------------------------
# Canonical (size-normalized) forms
# ---------------------------------------------------------------------------


def _canon_value(value):
    t = type(value)
    if t in _REGISTERED:
        return canonical(value)
    if t is tuple:
        out = tuple(_canon_value(item) for item in value)
        return value if all(a is b for a, b in zip(out, value)) else out
    return value


def _generic_canon(node):
    values = _field_values(node)
    canon_values = tuple(_canon_value(v) for v in values)
    if all(a is b for a, b in zip(canon_values, values)):
        return node
    return type(node)(*canon_values)


def canonical(node):
    """The size-normalized canonical form of an interned node.

    Two interned terms are equal *up to size normalization* iff their
    canonical forms are the same object.  Computed once per node.
    """

    d = node.__dict__
    out = d.get("_hc_canon")
    if out is None:
        rule = _CANON_RULES.get(type(node))
        out = rule(node) if rule is not None else _generic_canon(node)
        d["_hc_canon"] = out
    return out


# ---------------------------------------------------------------------------
# Structural content digests
# ---------------------------------------------------------------------------

#: Per-dataclass digest metadata: (qualified name bytes, field names, frozen).
_DATACLASS_INFO: dict[type, tuple[bytes, tuple[str, ...], bool]] = {}


def _dataclass_info(cls) -> tuple[bytes, tuple[str, ...], bool]:
    info = _DATACLASS_INFO.get(cls)
    if info is None:
        name = f"{cls.__module__}.{cls.__qualname__}".encode()
        names = tuple(f.name for f in dataclasses.fields(cls))
        frozen = cls.__dataclass_params__.frozen
        info = (name, names, frozen)
        _DATACLASS_INFO[cls] = info
    return info


def structural_digest(obj) -> bytes:
    """A 32-byte SHA-256 digest of ``obj``'s *structure*.

    Deterministic across processes: covers class identities (qualified
    names), enum member names and primitive values, recursing over dataclass
    fields and sequences — never ``id()``, ``hash()`` or memory addresses.
    Digests are cached on interned nodes and on frozen dataclass instances,
    so re-digesting a large module only walks the parts not seen before.
    """

    if obj is None:
        return _DIGEST_NONE
    t = type(obj)
    if t is bool:
        return _DIGEST_TRUE if obj else _DIGEST_FALSE
    if t is int:
        return _hash_leaf(b"i", repr(obj).encode())
    if t is str:
        return _hash_leaf(b"s", obj.encode())
    if t is float:
        return _hash_leaf(b"f", repr(obj).encode())
    if t is bytes:
        return _hash_leaf(b"y", obj)
    if t is tuple or t is list:
        h = hashlib.sha256(b"T")
        for item in obj:
            h.update(structural_digest(item))
        return h.digest()
    if t is dict:
        h = hashlib.sha256(b"M")
        for key in sorted(obj, key=repr):
            h.update(structural_digest(key))
            h.update(structural_digest(obj[key]))
        return h.digest()
    if t is frozenset or t is set:
        h = hashlib.sha256(b"S")
        for item_digest in sorted(structural_digest(item) for item in obj):
            h.update(item_digest)
        return h.digest()
    if isinstance(obj, enum.Enum):
        return _hash_leaf(b"e", f"{t.__name__}.{obj.name}".encode())
    if dataclasses.is_dataclass(obj):
        name, names, frozen = _dataclass_info(t)
        d = getattr(obj, "__dict__", None)
        if frozen and d is not None:
            cached = d.get("_hc_digest")
            if cached is not None:
                return cached
        h = hashlib.sha256(b"D")
        h.update(name)
        for field_name in names:
            h.update(structural_digest(getattr(obj, field_name)))
        digest = h.digest()
        if frozen and d is not None:
            d["_hc_digest"] = digest
        return digest
    rendered = repr(obj)
    if " at 0x" in rendered:
        raise TypeError(
            f"cannot compute a stable structural digest for {t.__name__}: its repr "
            "embeds a memory address (content keys must not leak object identity)"
        )
    return _hash_leaf(b"r", rendered.encode())


def content_digest(obj) -> str:
    """Hex form of :func:`structural_digest` (for keys and reports)."""

    return structural_digest(obj).hex()


def _hash_leaf(tag: bytes, payload: bytes) -> bytes:
    return hashlib.sha256(tag + payload).digest()


_DIGEST_NONE = _hash_leaf(b"n", b"")
_DIGEST_TRUE = _hash_leaf(b"b", b"1")
_DIGEST_FALSE = _hash_leaf(b"b", b"0")
