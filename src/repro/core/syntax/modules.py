"""RichWasm top-level declarations: functions, globals, tables, modules.

Mirrors the paper's Fig. 2 "Top-level declarations": a module is a list of
functions, a list of globals and a function table; functions, globals and
tables may be exported by name or be imports from other modules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .instructions import Instr, instruction_count
from .sizes import Size
from .types import FunType, Pretype, Type


@dataclass(frozen=True)
class Import:
    """An import reference ``import "module" "name"``."""

    module: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f'(import "{self.module}" "{self.name}")'


@dataclass(frozen=True)
class Function:
    """A RichWasm function definition.

    ``locals_sizes`` gives the slot size for each declared local (parameters
    are locals too, but their sizes are derived from the parameter types);
    each declared local starts out holding the unrestricted unit value.
    """

    funtype: FunType
    locals_sizes: tuple[Size, ...]
    body: tuple[Instr, ...]
    exports: tuple[str, ...] = ()
    name: Optional[str] = None

    @property
    def is_import(self) -> bool:
        return False

    def instruction_count(self) -> int:
        # The body is immutable; every check_module call re-reads this for
        # its statistics, so count the (recursive) instructions only once.
        cached = self.__dict__.get("_instruction_count")
        if cached is None:
            cached = instruction_count(self.body)
            self.__dict__["_instruction_count"] = cached
        return cached


@dataclass(frozen=True)
class ImportedFunction:
    """A function imported from another module."""

    funtype: FunType
    import_ref: Import
    exports: tuple[str, ...] = ()
    name: Optional[str] = None

    @property
    def is_import(self) -> bool:
        return True


FunctionDecl = Union[Function, ImportedFunction]


@dataclass(frozen=True)
class Global:
    """A global declaration ``glob mut? p i*``.

    Globals hold pretype values (the paper restricts globals to capability-free
    pretypes); ``init`` is the instruction sequence computing the initial
    value.
    """

    pretype: Pretype
    mutable: bool
    init: tuple[Instr, ...]
    exports: tuple[str, ...] = ()
    name: Optional[str] = None

    @property
    def is_import(self) -> bool:
        return False


@dataclass(frozen=True)
class ImportedGlobal:
    """A global imported from another module."""

    pretype: Pretype
    mutable: bool
    import_ref: Import
    exports: tuple[str, ...] = ()
    name: Optional[str] = None

    @property
    def is_import(self) -> bool:
        return True


GlobalDecl = Union[Global, ImportedGlobal]


@dataclass(frozen=True)
class Table:
    """A function table: indices of in-module functions usable indirectly."""

    entries: tuple[int, ...] = ()
    exports: tuple[str, ...] = ()


@dataclass(frozen=True)
class Module:
    """A RichWasm module ``module f* glob* tab``."""

    functions: tuple[FunctionDecl, ...] = ()
    globals: tuple[GlobalDecl, ...] = ()
    table: Table = field(default_factory=Table)
    name: Optional[str] = None

    def exported_functions(self) -> dict[str, int]:
        """Map export name -> function index."""

        exports: dict[str, int] = {}
        for index, function in enumerate(self.functions):
            for export in function.exports:
                exports[export] = index
        return exports

    def exported_globals(self) -> dict[str, int]:
        """Map export name -> global index."""

        exports: dict[str, int] = {}
        for index, global_decl in enumerate(self.globals):
            for export in global_decl.exports:
                exports[export] = index
        return exports

    def function_imports(self) -> list[tuple[int, ImportedFunction]]:
        """All imported functions with their indices."""

        return [
            (index, function)
            for index, function in enumerate(self.functions)
            if isinstance(function, ImportedFunction)
        ]

    def defined_functions(self) -> list[tuple[int, Function]]:
        """All locally defined functions with their indices."""

        return [
            (index, function)
            for index, function in enumerate(self.functions)
            if isinstance(function, Function)
        ]

    def instruction_count(self) -> int:
        """Total number of instructions across all defined functions."""

        total = 0
        for _, function in self.defined_functions():
            total += function.instruction_count()
        for global_decl in self.globals:
            if isinstance(global_decl, Global):
                total += instruction_count(global_decl.init)
        return total


def signature_env_digest(module: Module) -> bytes:
    """Digest of the signature environment a function body compiles against.

    Covers exactly what per-function type checking and lowering read from the
    *rest* of the module: every function type in index order (their count
    also fixes the runtime malloc/free indices), every global's pretype and
    mutability in index order (which fix the lowered global layout map), and
    the table entries.  Function *bodies* are deliberately excluded — that is
    the point: editing one body leaves every other function's compilation
    unit key (body digest, signature-environment digest) unchanged, so
    :class:`repro.compilepipe.FunctionUnitCache` reuses their artifacts.

    The module is immutable, so the digest is computed once and cached on the
    instance (same idiom as :meth:`Function.instruction_count`).
    """

    cached = module.__dict__.get("_sig_env_digest")
    if cached is None:
        from .intern import structural_digest

        hasher = hashlib.sha256(b"sigenv")
        for decl in module.functions:
            hasher.update(structural_digest(decl.funtype))
        hasher.update(b"|globals")
        for global_decl in module.globals:
            hasher.update(structural_digest(global_decl.pretype))
            hasher.update(b"\x01" if global_decl.mutable else b"\x00")
        hasher.update(b"|table")
        for entry in module.table.entries:
            hasher.update(b"%d," % entry)
        cached = hasher.digest()
        module.__dict__["_sig_env_digest"] = cached
    return cached


def make_module(
    functions: Sequence[FunctionDecl] = (),
    globals: Sequence[GlobalDecl] = (),
    table: Optional[Table] = None,
    name: Optional[str] = None,
) -> Module:
    """Convenience constructor for modules."""

    return Module(
        functions=tuple(functions),
        globals=tuple(globals),
        table=table if table is not None else Table(),
        name=name,
    )
