"""RichWasm instructions (paper Fig. 2, "Terms").

Instructions are plain dataclasses; sequences of instructions are Python
tuples/lists.  The set mirrors WebAssembly's core instructions plus the new
RichWasm constructs: qualifier manipulation, recursive fold/unfold, location
pack/unpack, tuple group/ungroup, capability/reference splitting and joining,
and one family of instructions per heap-type constructor (struct, variant,
array, existential package).

Block-introducing instructions carry a *local effect* annotation ``(i, τ)*``
describing how the block changes the types of local slots, exactly as in the
paper; the type checker uses it, and the lowering pass erases it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from .qualifiers import Qual, QualConst, UNR
from .sizes import Size
from .types import ArrowType, HeapType, Index, Loc, NumType, Pretype, Type

# ---------------------------------------------------------------------------
# Numeric operators
# ---------------------------------------------------------------------------


class IntUnop(enum.Enum):
    CLZ = "clz"
    CTZ = "ctz"
    POPCNT = "popcnt"


class IntBinop(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV_S = "div_s"
    DIV_U = "div_u"
    REM_S = "rem_s"
    REM_U = "rem_u"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR_S = "shr_s"
    SHR_U = "shr_u"
    ROTL = "rotl"
    ROTR = "rotr"


class IntTestop(enum.Enum):
    EQZ = "eqz"


class IntRelop(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT_S = "lt_s"
    LT_U = "lt_u"
    GT_S = "gt_s"
    GT_U = "gt_u"
    LE_S = "le_s"
    LE_U = "le_u"
    GE_S = "ge_s"
    GE_U = "ge_u"


class FloatUnop(enum.Enum):
    ABS = "abs"
    NEG = "neg"
    SQRT = "sqrt"
    CEIL = "ceil"
    FLOOR = "floor"
    TRUNC = "trunc"
    NEAREST = "nearest"


class FloatBinop(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MIN = "min"
    MAX = "max"
    COPYSIGN = "copysign"


class FloatRelop(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GT = "gt"
    LE = "le"
    GE = "ge"


class CvtOp(enum.Enum):
    CONVERT = "convert"
    REINTERPRET = "reinterpret"
    WRAP = "wrap"
    EXTEND_S = "extend_s"
    EXTEND_U = "extend_u"


# ---------------------------------------------------------------------------
# Local effects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalEffect:
    """A local effect entry ``(i, τ)``: slot ``i`` has type ``τ`` afterwards."""

    index: int
    type: Type


LocalEffects = Tuple[LocalEffect, ...]


def local_effects(entries: Sequence[tuple[int, Type]]) -> LocalEffects:
    """Build a local-effect annotation from ``(index, type)`` pairs."""

    return tuple(LocalEffect(i, t) for i, t in entries)


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumConst:
    """``np.const c`` — push a numeric constant."""

    numtype: NumType
    value: Union[int, float]


@dataclass(frozen=True)
class NumUnop:
    """An integer or float unary operator."""

    numtype: NumType
    op: Union[IntUnop, FloatUnop]


@dataclass(frozen=True)
class NumBinop:
    """An integer or float binary operator."""

    numtype: NumType
    op: Union[IntBinop, FloatBinop]


@dataclass(frozen=True)
class NumTestop:
    """An integer test operator (``eqz``)."""

    numtype: NumType
    op: IntTestop = IntTestop.EQZ


@dataclass(frozen=True)
class NumRelop:
    """An integer or float comparison operator."""

    numtype: NumType
    op: Union[IntRelop, FloatRelop]


@dataclass(frozen=True)
class NumCvtop:
    """A numeric conversion ``np.cvtop np'``."""

    target: NumType
    op: CvtOp
    source: NumType


@dataclass(frozen=True)
class Unreachable:
    """``unreachable`` — trap unconditionally."""


@dataclass(frozen=True)
class Nop:
    """``nop``."""


@dataclass(frozen=True)
class Drop:
    """``drop`` — discard the (unrestricted) top of stack."""


@dataclass(frozen=True)
class Select:
    """``select`` — pick one of two (unrestricted) values by an i32 flag."""


@dataclass(frozen=True)
class Block:
    """``block tf (i, τ)* e* end``."""

    arrow: ArrowType
    effects: LocalEffects
    body: tuple["Instr", ...]


@dataclass(frozen=True)
class Loop:
    """``loop tf e* end``."""

    arrow: ArrowType
    body: tuple["Instr", ...]


@dataclass(frozen=True)
class If:
    """``if tf (i, τ)* e* else e* end``."""

    arrow: ArrowType
    effects: LocalEffects
    then_body: tuple["Instr", ...]
    else_body: tuple["Instr", ...]


@dataclass(frozen=True)
class Br:
    """``br i`` — unconditional branch to the ``i``-th enclosing label."""

    depth: int


@dataclass(frozen=True)
class BrIf:
    """``br_if i`` — conditional branch."""

    depth: int


@dataclass(frozen=True)
class BrTable:
    """``br_table i* j`` — indexed branch with a default."""

    depths: tuple[int, ...]
    default: int


@dataclass(frozen=True)
class Return:
    """``return``."""


@dataclass(frozen=True)
class GetLocal:
    """``get_local i q``.

    If the slot's qualifier is linear the slot is strongly updated to unit,
    so the (linear) value is moved rather than copied.  ``qual`` is the
    annotation recording the qualifier the program expects.
    """

    index: int
    qual: Qual = UNR


@dataclass(frozen=True)
class SetLocal:
    """``set_local i`` — strong update of local slot ``i``."""

    index: int


@dataclass(frozen=True)
class TeeLocal:
    """``tee_local i`` — set and keep the value on the stack."""

    index: int


@dataclass(frozen=True)
class GetGlobal:
    """``get_global i``."""

    index: int


@dataclass(frozen=True)
class SetGlobal:
    """``set_global i``."""

    index: int


@dataclass(frozen=True)
class Qualify:
    """``qualify q`` — re-annotate the top of the stack at qualifier ``q``."""

    qual: Qual


@dataclass(frozen=True)
class CodeRefI:
    """``coderef i`` — push a code reference to table entry ``i``."""

    table_index: int


@dataclass(frozen=True)
class Inst:
    """``inst κ*`` — instantiate leading quantifiers of a code reference."""

    indices: tuple[Index, ...]


@dataclass(frozen=True)
class CallIndirect:
    """``call_indirect`` — call through a code reference on the stack."""


@dataclass(frozen=True)
class Call:
    """``call i κ*`` — direct call of function ``i`` with instantiation ``κ*``."""

    func_index: int
    indices: tuple[Index, ...] = ()


@dataclass(frozen=True)
class RecFold:
    """``rec.fold p`` — fold a value into the recursive pretype ``p``."""

    pretype: Pretype


@dataclass(frozen=True)
class RecUnfold:
    """``rec.unfold`` — unfold a recursive value one level."""


@dataclass(frozen=True)
class MemPack:
    """``mem.pack ℓ`` — package a value, abstracting location ``ℓ``."""

    loc: Loc


@dataclass(frozen=True)
class MemUnpack:
    """``mem.unpack tf (i, τ)* ρ. e*`` — open an existential location.

    The block body is typed with a fresh location variable in scope.
    """

    arrow: ArrowType
    effects: LocalEffects
    body: tuple["Instr", ...]


@dataclass(frozen=True)
class SeqGroup:
    """``seq.group i q`` — collect the top ``i`` stack values into a tuple."""

    count: int
    qual: Qual


@dataclass(frozen=True)
class SeqUngroup:
    """``seq.ungroup`` — explode a tuple onto the stack."""


@dataclass(frozen=True)
class CapSplit:
    """``cap.split`` — split a rw capability into a r capability + own token."""


@dataclass(frozen=True)
class CapJoin:
    """``cap.join`` — rejoin a r capability and its own token into rw."""


@dataclass(frozen=True)
class RefDemote:
    """``ref.demote`` — forget write privilege of a reference."""


@dataclass(frozen=True)
class RefSplit:
    """``ref.split`` — split a reference into a capability and a pointer."""


@dataclass(frozen=True)
class RefJoin:
    """``ref.join`` — join a capability and a pointer back into a reference."""


@dataclass(frozen=True)
class StructMalloc:
    """``struct.malloc sz* q`` — allocate a struct with the given slot sizes."""

    sizes: tuple[Size, ...]
    qual: Qual


@dataclass(frozen=True)
class StructFree:
    """``struct.free`` — free a (linear) struct."""


@dataclass(frozen=True)
class StructGet:
    """``struct.get i`` — read (copy) the unrestricted field ``i``."""

    index: int


@dataclass(frozen=True)
class StructSet:
    """``struct.set i`` — overwrite field ``i`` (strong update if linear ref)."""

    index: int


@dataclass(frozen=True)
class StructSwap:
    """``struct.swap i`` — exchange field ``i`` with a stack value."""

    index: int


@dataclass(frozen=True)
class VariantMalloc:
    """``variant.malloc i τ* q`` — allocate case ``i`` of a variant type."""

    tag: int
    cases: tuple[Type, ...]
    qual: Qual


@dataclass(frozen=True)
class VariantCase:
    """``variant.case q ψ tf (i, τ)* (e*)* end`` — case analysis on a variant.

    With a linear annotation the scrutinised reference is consumed and its
    memory freed; with an unrestricted annotation it is returned to the stack.
    """

    qual: Qual
    heaptype: HeapType
    arrow: ArrowType
    effects: LocalEffects
    branches: tuple[tuple["Instr", ...], ...]


@dataclass(frozen=True)
class ArrayMalloc:
    """``array.malloc q`` — allocate an array (length from the stack)."""

    qual: Qual


@dataclass(frozen=True)
class ArrayGet:
    """``array.get`` — read element at an i32 index (bounds-checked)."""


@dataclass(frozen=True)
class ArraySet:
    """``array.set`` — write element at an i32 index (bounds-checked)."""


@dataclass(frozen=True)
class ArrayFree:
    """``array.free`` — free a (linear) array."""


@dataclass(frozen=True)
class ExistPack:
    """``exist.pack p ψ q`` — allocate an existential package with witness ``p``."""

    pretype: Pretype
    heaptype: HeapType
    qual: Qual


@dataclass(frozen=True)
class ExistUnpack:
    """``exist.unpack q ψ tf (i, τ)* . e* end`` — open an existential package."""

    qual: Qual
    heaptype: HeapType
    arrow: ArrowType
    effects: LocalEffects
    body: tuple["Instr", ...]


Instr = Union[
    NumConst,
    NumUnop,
    NumBinop,
    NumTestop,
    NumRelop,
    NumCvtop,
    Unreachable,
    Nop,
    Drop,
    Select,
    Block,
    Loop,
    If,
    Br,
    BrIf,
    BrTable,
    Return,
    GetLocal,
    SetLocal,
    TeeLocal,
    GetGlobal,
    SetGlobal,
    Qualify,
    CodeRefI,
    Inst,
    CallIndirect,
    Call,
    RecFold,
    RecUnfold,
    MemPack,
    MemUnpack,
    SeqGroup,
    SeqUngroup,
    CapSplit,
    CapJoin,
    RefDemote,
    RefSplit,
    RefJoin,
    StructMalloc,
    StructFree,
    StructGet,
    StructSet,
    StructSwap,
    VariantMalloc,
    VariantCase,
    ArrayMalloc,
    ArrayGet,
    ArraySet,
    ArrayFree,
    ExistPack,
    ExistUnpack,
]


#: Instructions that exist only at the type level and are erased when
#: lowering to Wasm (paper §6, "Remaining Instructions").
TYPE_LEVEL_INSTRS = (
    Qualify,
    RecFold,
    RecUnfold,
    MemPack,
    CapSplit,
    CapJoin,
    RefDemote,
    RefSplit,
    RefJoin,
    Inst,
)


def is_type_level(instr: Instr) -> bool:
    """True for instructions with no runtime behaviour (erased by lowering)."""

    return isinstance(instr, TYPE_LEVEL_INSTRS)


def instruction_count(body: Sequence[Instr]) -> int:
    """Count instructions, descending into nested blocks."""

    total = 0
    for instr in body:
        total += 1
        for nested in nested_bodies(instr):
            total += instruction_count(nested)
    return total


def nested_bodies(instr: Instr) -> list[tuple[Instr, ...]]:
    """Return the nested instruction sequences of a block-like instruction."""

    if isinstance(instr, (Block, Loop, MemUnpack, ExistUnpack)):
        return [instr.body]
    if isinstance(instr, If):
        return [instr.then_body, instr.else_body]
    if isinstance(instr, VariantCase):
        return list(instr.branches)
    return []
