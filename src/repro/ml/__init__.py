"""The core ML frontend (paper §5): AST, type checker, compiler to RichWasm."""

from .ast import (
    App,
    Assign,
    BinOp,
    BoolLit,
    Case,
    Deref,
    Expr,
    Fst,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    LinType,
    MkRef,
    MkRefToLin,
    MLFunction,
    MLGlobal,
    MLImport,
    MLModule,
    MLType,
    Pair,
    RefToLin,
    Seq,
    Snd,
    TBool,
    TFun,
    TInt,
    TPair,
    TRef,
    TSum,
    TUnit,
    Unit,
    Var,
    ml_module,
)
from .codegen import MLCompiler, compile_ml_module, compile_type
from .typecheck import CheckedModule, MLTypeError, check_expr, check_module

__all__ = [name for name in dir() if not name.startswith("_")]
