"""The ML type checker (paper §5).

A completely standard simply-typed checker.  Two points are specific to the
linking-type extensions:

* ``LinType(τ)`` values are *not* checked for linear usage — the paper's
  design point is that the ML programmer keeps their native reasoning and the
  RichWasm type checker catches any duplication of linear values after
  compilation (Fig. 3).
* ``RefToLin`` cells support the normal ``!``/``:=`` operations but at type
  ``LinType`` content; the compiler inserts the runtime emptiness checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.typing.errors import CompilationError
from .ast import (
    App,
    Assign,
    BinOp,
    BoolLit,
    Case,
    Deref,
    Expr,
    Fst,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    LinType,
    MkRef,
    MkRefToLin,
    MLFunction,
    MLImport,
    MLModule,
    MLType,
    Pair,
    RefToLin,
    Seq,
    Snd,
    TBool,
    TFun,
    TInt,
    TPair,
    TRef,
    TSum,
    TUnit,
    Unit,
    Var,
)


class MLTypeError(CompilationError):
    """An ML source program is ill-typed."""


def types_equal(lhs: MLType, rhs: MLType) -> bool:
    """Structural equality of ML types."""

    return lhs == rhs


@dataclass
class TypeEnv:
    """A type environment mapping variables to their ML types."""

    bindings: dict[str, MLType]

    def extend(self, name: str, ty: MLType) -> "TypeEnv":
        new = dict(self.bindings)
        new[name] = ty
        return TypeEnv(new)

    def lookup(self, name: str) -> MLType:
        if name not in self.bindings:
            raise MLTypeError(f"unbound variable {name!r}")
        return self.bindings[name]


def check_expr(env: TypeEnv, expr: Expr) -> MLType:
    """Infer the type of an expression (raises :class:`MLTypeError`)."""

    if isinstance(expr, Unit):
        return TUnit()
    if isinstance(expr, IntLit):
        return TInt()
    if isinstance(expr, BoolLit):
        return TBool()
    if isinstance(expr, Var):
        return env.lookup(expr.name)
    if isinstance(expr, Lam):
        result = check_expr(env.extend(expr.param, expr.param_type), expr.body)
        return TFun(expr.param_type, result)
    if isinstance(expr, App):
        func_type = check_expr(env, expr.func)
        arg_type = check_expr(env, expr.arg)
        if not isinstance(func_type, TFun):
            raise MLTypeError(f"application of a non-function of type {func_type}")
        if not types_equal(func_type.param, arg_type):
            raise MLTypeError(
                f"function expects {func_type.param}, argument has type {arg_type}"
            )
        return func_type.result
    if isinstance(expr, Let):
        bound_type = check_expr(env, expr.bound)
        return check_expr(env.extend(expr.name, bound_type), expr.body)
    if isinstance(expr, Seq):
        check_expr(env, expr.first)
        return check_expr(env, expr.second)
    if isinstance(expr, Pair):
        return TPair(check_expr(env, expr.left), check_expr(env, expr.right))
    if isinstance(expr, Fst):
        pair_type = check_expr(env, expr.pair)
        if not isinstance(pair_type, TPair):
            raise MLTypeError(f"fst of a non-pair of type {pair_type}")
        return pair_type.left
    if isinstance(expr, Snd):
        pair_type = check_expr(env, expr.pair)
        if not isinstance(pair_type, TPair):
            raise MLTypeError(f"snd of a non-pair of type {pair_type}")
        return pair_type.right
    if isinstance(expr, Inl):
        value_type = check_expr(env, expr.value)
        if not types_equal(value_type, expr.sum_type.left):
            raise MLTypeError(f"inl payload has type {value_type}, expected {expr.sum_type.left}")
        return expr.sum_type
    if isinstance(expr, Inr):
        value_type = check_expr(env, expr.value)
        if not types_equal(value_type, expr.sum_type.right):
            raise MLTypeError(f"inr payload has type {value_type}, expected {expr.sum_type.right}")
        return expr.sum_type
    if isinstance(expr, Case):
        scrutinee_type = check_expr(env, expr.scrutinee)
        if not isinstance(scrutinee_type, TSum):
            raise MLTypeError(f"case on a non-sum of type {scrutinee_type}")
        left_type = check_expr(env.extend(expr.left_name, scrutinee_type.left), expr.left_body)
        right_type = check_expr(env.extend(expr.right_name, scrutinee_type.right), expr.right_body)
        if not types_equal(left_type, right_type):
            raise MLTypeError(f"case branches disagree: {left_type} vs {right_type}")
        return left_type
    if isinstance(expr, MkRef):
        return TRef(check_expr(env, expr.value))
    if isinstance(expr, Deref):
        ref_type = check_expr(env, expr.ref)
        if isinstance(ref_type, TRef):
            return ref_type.content
        if isinstance(ref_type, RefToLin):
            return LinType(ref_type.inner)
        raise MLTypeError(f"dereference of a non-reference of type {ref_type}")
    if isinstance(expr, Assign):
        ref_type = check_expr(env, expr.ref)
        value_type = check_expr(env, expr.value)
        if isinstance(ref_type, TRef):
            if not types_equal(ref_type.content, value_type):
                raise MLTypeError(
                    f"assignment of {value_type} into a reference holding {ref_type.content}"
                )
            return TUnit()
        if isinstance(ref_type, RefToLin):
            if not types_equal(LinType(ref_type.inner), value_type):
                raise MLTypeError(
                    f"assignment of {value_type} into a ref_to_lin holding ({ref_type.inner})lin"
                )
            return TUnit()
        raise MLTypeError(f"assignment to a non-reference of type {ref_type}")
    if isinstance(expr, MkRefToLin):
        return RefToLin(expr.content_type)
    if isinstance(expr, BinOp):
        left = check_expr(env, expr.left)
        right = check_expr(env, expr.right)
        if not isinstance(left, TInt) or not isinstance(right, TInt):
            raise MLTypeError(f"arithmetic on non-integers: {left} {expr.op} {right}")
        if expr.op in ("+", "-", "*", "/"):
            return TInt()
        if expr.op in ("=", "<", "<=", ">", ">="):
            return TBool()
        raise MLTypeError(f"unknown operator {expr.op!r}")
    if isinstance(expr, If):
        condition = check_expr(env, expr.condition)
        if not isinstance(condition, TBool):
            raise MLTypeError(f"if condition must be bool, got {condition}")
        then_type = check_expr(env, expr.then_branch)
        else_type = check_expr(env, expr.else_branch)
        if not types_equal(then_type, else_type):
            raise MLTypeError(f"if branches disagree: {then_type} vs {else_type}")
        return then_type
    raise MLTypeError(f"unknown expression {expr!r}")


@dataclass(frozen=True)
class CheckedModule:
    """The result of checking a module: per-function and per-global types."""

    module: MLModule
    global_types: dict[str, MLType]
    function_types: dict[str, TFun]


def check_module(module: MLModule) -> CheckedModule:
    """Type-check a whole ML module."""

    base: dict[str, MLType] = {}
    for imported in module.imports:
        base[imported.binding_name] = TFun(imported.param_type, imported.result_type)

    global_types: dict[str, MLType] = {}
    env = TypeEnv(dict(base))
    for global_decl in module.globals:
        actual = check_expr(env, global_decl.init)
        if not types_equal(actual, global_decl.type):
            raise MLTypeError(
                f"global {global_decl.name!r} declared at {global_decl.type} but initialised at {actual}"
            )
        global_types[global_decl.name] = global_decl.type
        env = env.extend(global_decl.name, global_decl.type)

    function_types: dict[str, TFun] = {}
    for function in module.functions:
        function_types[function.name] = TFun(function.param_type, function.result_type)

    # Functions may refer to each other and to the module state.
    full_env = env
    for name, ty in function_types.items():
        full_env = full_env.extend(name, ty)
    for function in module.functions:
        body_type = check_expr(full_env.extend(function.param, function.param_type), function.body)
        if not types_equal(body_type, function.result_type):
            raise MLTypeError(
                f"function {function.name!r} declared to return {function.result_type}"
                f" but its body has type {body_type}"
            )
    return CheckedModule(module, global_types, function_types)
