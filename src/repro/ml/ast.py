"""Abstract syntax of the core ML source language (paper §5).

The language has units, integers, booleans, pairs, binary sums, ML-style
references, and first-class functions; modules consist of top-level value
bindings (typically references used as module-local state), function
definitions, imports of functions from other modules, and exports.

Linking-type extensions (paper §2.2 and §5):

* ``LinType(τ)`` — "compile this type as linear in RichWasm": the type of
  foreign linear values (e.g. an L3 reference) that ML code may pass around
  but must not duplicate.  The ML type checker deliberately does *not* check
  linearity for these — RichWasm does.
* ``RefToLin(τ)`` — the type of ``ref_to_lin`` cells: GC'd references that may
  hold a linear value or be empty; reads and writes are compiled to
  runtime-checked swaps so that a second read / overwrite traps instead of
  violating linearity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TUnit:
    def __str__(self) -> str:  # pragma: no cover - trivial
        return "unit"


@dataclass(frozen=True)
class TInt:
    def __str__(self) -> str:  # pragma: no cover - trivial
        return "int"


@dataclass(frozen=True)
class TBool:
    def __str__(self) -> str:  # pragma: no cover - trivial
        return "bool"


@dataclass(frozen=True)
class TPair:
    left: "MLType"
    right: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} * {self.right})"


@dataclass(frozen=True)
class TSum:
    left: "MLType"
    right: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class TRef:
    content: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ref {self.content})"


@dataclass(frozen=True)
class TFun:
    param: "MLType"
    result: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.param} -> {self.result})"


@dataclass(frozen=True)
class LinType:
    """A linking type: a foreign type that RichWasm must treat as linear."""

    inner: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.inner})lin"


@dataclass(frozen=True)
class RefToLin:
    """The type of ``ref_to_lin`` cells holding an optional linear value."""

    inner: "MLType"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(ref_to_lin {self.inner})"


MLType = Union[TUnit, TInt, TBool, TPair, TSum, TRef, TFun, LinType, RefToLin]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    pass


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Lam:
    """``fun (param : param_type) -> body``"""

    param: str
    param_type: MLType
    body: "Expr"


@dataclass(frozen=True)
class App:
    func: "Expr"
    arg: "Expr"


@dataclass(frozen=True)
class Let:
    name: str
    bound: "Expr"
    body: "Expr"


@dataclass(frozen=True)
class Seq:
    first: "Expr"
    second: "Expr"


@dataclass(frozen=True)
class Pair:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Fst:
    pair: "Expr"


@dataclass(frozen=True)
class Snd:
    pair: "Expr"


@dataclass(frozen=True)
class Inl:
    value: "Expr"
    sum_type: TSum


@dataclass(frozen=True)
class Inr:
    value: "Expr"
    sum_type: TSum


@dataclass(frozen=True)
class Case:
    """``case e of inl x -> e1 | inr y -> e2``"""

    scrutinee: "Expr"
    left_name: str
    left_body: "Expr"
    right_name: str
    right_body: "Expr"


@dataclass(frozen=True)
class MkRef:
    """``ref e`` — allocate a garbage-collected reference."""

    value: "Expr"


@dataclass(frozen=True)
class Deref:
    """``!e``"""

    ref: "Expr"


@dataclass(frozen=True)
class Assign:
    """``e1 := e2``"""

    ref: "Expr"
    value: "Expr"


@dataclass(frozen=True)
class MkRefToLin:
    """``ref_to_lin τ`` — allocate an (empty) cell that can hold a linear value."""

    content_type: MLType


@dataclass(frozen=True)
class BinOp:
    """Arithmetic and comparison: ``+ - * = < <=``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class If:
    condition: "Expr"
    then_branch: "Expr"
    else_branch: "Expr"


Expr = Union[
    Unit,
    IntLit,
    BoolLit,
    Var,
    Lam,
    App,
    Let,
    Seq,
    Pair,
    Fst,
    Snd,
    Inl,
    Inr,
    Case,
    MkRef,
    Deref,
    Assign,
    MkRefToLin,
    BinOp,
    If,
]


# ---------------------------------------------------------------------------
# Modules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MLGlobal:
    """A top-level binding ``let name = expr`` (module-local state)."""

    name: str
    type: MLType
    init: Expr


@dataclass(frozen=True)
class MLFunction:
    """A top-level function definition ``fun name (param : τ) : σ = body``."""

    name: str
    param: str
    param_type: MLType
    result_type: MLType
    body: Expr
    export: bool = True


@dataclass(frozen=True)
class MLImport:
    """An imported function ``import other.name : τ -> σ``."""

    module: str
    name: str
    param_type: MLType
    result_type: MLType
    local_name: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.local_name if self.local_name is not None else self.name


@dataclass(frozen=True)
class MLModule:
    """An ML module: imports, module state, and function definitions."""

    name: str
    imports: tuple[MLImport, ...] = ()
    globals: tuple[MLGlobal, ...] = ()
    functions: tuple[MLFunction, ...] = ()


def ml_module(
    name: str,
    functions: Sequence[MLFunction] = (),
    globals: Sequence[MLGlobal] = (),
    imports: Sequence[MLImport] = (),
) -> MLModule:
    """Convenience constructor."""

    return MLModule(name, tuple(imports), tuple(globals), tuple(functions))
