"""The ML → RichWasm compiler (paper §5).

The compiler has the three phases the paper describes, fused over one
traversal:

* **typed closure conversion** — every ``fun`` expression is lifted to a
  fresh top-level RichWasm function taking ``(argument, environment)``; the
  captured variables are stored in a garbage-collected struct and the pair of
  code reference and environment is hidden behind an existential package, so
  closures of the same ML type agree on their RichWasm type regardless of
  what they capture;
* **annotation** — size and qualifier annotations (slot sizes for every
  local, the ``64``-bit bound of closure environments, linear qualifiers for
  linking types) are computed from the compiled RichWasm types;
* **code generation** — a stack-discipline translation of expressions.

Representation choices (all in the garbage-collected memory unless noted):

====================  =====================================================
ML type               RichWasm type
====================  =====================================================
``unit``/``int``      ``unit^unr`` / ``i32^unr``
``τ1 * τ2``           ``(prod T1 T2)^q``
``τ1 + τ2``           ``∃ρ.(ref rw ρ (variant T1 T2))^unr``
``ref τ``             ``∃ρ.(ref rw ρ (struct (T, |T|)))^unr``
``τ1 -> τ2``          ``∃ρ.(ref rw ρ (∃unr ⪯ α ≲ 64. (prod (coderef (T1, α) -> T2) α)))^unr``
``(ref τ)lin``        ``∃ρ.(ref rw ρ (struct (T, |T|)))^lin``   (linear memory)
``ref_to_lin τ``      ``∃ρ.(ref rw ρ (struct (Option, 32)))^unr`` where
                      ``Option = ∃ρ'.(ref rw ρ' (variant unit Tlin))^lin``
====================  =====================================================

``ref_to_lin`` reads and writes are compiled to ``struct.swap`` of the whole
option cell followed by a *linear* ``variant.case``: reading an empty cell or
overwriting a full one executes ``unreachable`` — the runtime failure the
paper describes for operations that would otherwise violate linearity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.syntax import (
    ArrowType,
    Block,
    Call,
    CallIndirect,
    CodeRefI,
    Drop,
    ExHT,
    ExLocT,
    ExistPack,
    ExistUnpack,
    FunType,
    Function,
    GetGlobal,
    GetLocal,
    Global,
    If as RIf,
    Import,
    ImportedFunction,
    Instr,
    IntBinop,
    IntRelop,
    LIN,
    MemUnpack,
    Module,
    NumBinop,
    NumConst,
    NumRelop,
    NumType,
    Privilege,
    RefT,
    Return,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    SizeConst,
    StructHT,
    StructMalloc,
    StructSet,
    StructSwap,
    StructGet,
    Table,
    Type,
    UNR,
    UnitT,
    UnitV,
    Unreachable,
    VarT,
    VariantCase,
    VariantHT,
    VariantMalloc,
    arrow,
    funtype as make_funtype,
    i32,
    prod,
    unit,
    variant_ht,
)
from ..core.syntax.instructions import Nop
from ..core.typing.errors import CompilationError
from .._compat import UNSET as _UNSET, codegen_lowering as _codegen_lowering
from ..core.typing.sizing import closed_size_of_type
from .ast import (
    App,
    Assign,
    BinOp,
    BoolLit,
    Case,
    Deref,
    Expr,
    Fst,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    LinType,
    MkRef,
    MkRefToLin,
    MLFunction,
    MLImport,
    MLModule,
    MLType,
    Pair,
    RefToLin,
    Seq,
    Snd,
    TBool,
    TFun,
    TInt,
    TPair,
    TRef,
    TSum,
    TUnit,
    Unit,
    Var,
)
from .typecheck import CheckedModule, MLTypeError, TypeEnv, check_expr, check_module

#: Size bound used for closure environments (a GC'd pointer: 32 bits, with
#: headroom as in the paper's Fig. 9 layout which uses 64-bit slots).
ENV_SIZE_BOUND = SizeConst(64)


# ---------------------------------------------------------------------------
# Type translation
# ---------------------------------------------------------------------------


def ref_struct(content: Type, qual) -> Type:
    """``∃ρ.(ref rw ρ (struct (content, |content|)))^qual``."""

    size = closed_size_of_type(content)
    heaptype = StructHT(((content, size),))
    return Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), heaptype), qual)), qual)


def _loc_var0():
    from ..core.syntax.locations import LocVar

    return LocVar(0)


def compile_type(mltype: MLType) -> Type:
    """Translate an ML type to its RichWasm representation."""

    if isinstance(mltype, TUnit):
        return unit()
    if isinstance(mltype, (TInt, TBool)):
        return i32()
    if isinstance(mltype, TPair):
        left = compile_type(mltype.left)
        right = compile_type(mltype.right)
        qual = LIN if (left.qual == LIN or right.qual == LIN) else UNR
        return prod([left, right], qual)
    if isinstance(mltype, TSum):
        left = compile_type(mltype.left)
        right = compile_type(mltype.right)
        heaptype = VariantHT((left, right))
        return Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), heaptype), UNR)), UNR)
    if isinstance(mltype, TRef):
        return ref_struct(compile_type(mltype.content), UNR)
    if isinstance(mltype, TFun):
        return closure_type(compile_type(mltype.param), compile_type(mltype.result))
    if isinstance(mltype, LinType):
        return compile_linear_type(mltype.inner)
    if isinstance(mltype, RefToLin):
        option = option_type(mltype.inner)
        size = closed_size_of_type(option)
        heaptype = StructHT(((option, size),))
        return Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), heaptype), UNR)), UNR)
    raise CompilationError(f"cannot compile ML type {mltype!r}")


def compile_linear_type(inner: MLType) -> Type:
    """The linear (manually managed) representation of ``(inner)lin``."""

    if isinstance(inner, TRef):
        return ref_struct(compile_type(inner.content), LIN)
    compiled = compile_type(inner)
    return compiled.with_qual(LIN)


def option_type(inner: MLType) -> Type:
    """The linear option cell used by ``ref_to_lin``: empty or a linear value."""

    lin_value = compile_linear_type(inner)
    heaptype = VariantHT((unit(), lin_value))
    return Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), heaptype), LIN)), LIN)


def closure_code_type(param: Type, result: Type) -> FunType:
    """The function type of lifted closure code: ``(param, α) -> result``."""

    return make_funtype([param, Type(VarT(0), UNR)], [result])


def closure_existential(param: Type, result: Type) -> ExHT:
    """``∃ unr ⪯ α ≲ 64. (prod (coderef (param, α) -> result) α)``."""

    code = Type(
        __import__("repro.core.syntax.types", fromlist=["CodeRefT"]).CodeRefT(
            closure_code_type(param, result)
        ),
        UNR,
    )
    body = prod([code, Type(VarT(0), UNR)], UNR)
    return ExHT(UNR, ENV_SIZE_BOUND, body)


def closure_type(param: Type, result: Type) -> Type:
    """The RichWasm type of an ML function value (a heap-allocated closure)."""

    heaptype = closure_existential(param, result)
    return Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), heaptype), UNR)), UNR)


def is_linear(ty: Type) -> bool:
    return ty.qual == LIN


# ---------------------------------------------------------------------------
# Compile-time environments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalBinding:
    index: int
    mltype: MLType


@dataclass(frozen=True)
class GlobalBinding:
    index: int
    mltype: MLType


@dataclass(frozen=True)
class FunctionBinding:
    index: int
    mltype: TFun


@dataclass
class CompileEnv:
    """Maps ML variable names to their storage in the generated code."""

    bindings: dict[str, object] = field(default_factory=dict)

    def extend_local(self, name: str, index: int, mltype: MLType) -> "CompileEnv":
        new = dict(self.bindings)
        new[name] = LocalBinding(index, mltype)
        return CompileEnv(new)

    def lookup(self, name: str):
        if name not in self.bindings:
            raise CompilationError(f"unbound variable {name!r} during code generation")
        return self.bindings[name]


# ---------------------------------------------------------------------------
# Function builder
# ---------------------------------------------------------------------------


@dataclass
class FunctionBuilder:
    """Accumulates locals for one RichWasm function under construction."""

    param_count: int
    locals_sizes: list = field(default_factory=list)

    def new_local(self, size_bits: int) -> int:
        index = self.param_count + len(self.locals_sizes)
        self.locals_sizes.append(SizeConst(max(size_bits, 32)))
        return index


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class MLCompiler:
    """Compiles a type-checked ML module to a RichWasm module."""

    def __init__(self, checked: CheckedModule):
        self.checked = checked
        self.module = checked.module
        self.functions: list = []          # RichWasm FunctionDecl, indices fixed as we go
        self.table_entries: list[int] = []
        self.global_decls: list[Global] = []
        self.global_index: dict[str, int] = {}
        self.function_index: dict[str, int] = {}
        self.import_index: dict[str, int] = {}
        self.lifted_count = 0

    # -- entry point -------------------------------------------------------------

    def compile(self) -> Module:
        # Imports come first so their indices are stable.
        for imported in self.module.imports:
            index = len(self.functions)
            funtype = make_funtype(
                [compile_type(imported.param_type)], [compile_type(imported.result_type)]
            )
            self.functions.append(
                ImportedFunction(funtype, Import(imported.module, imported.name), (), imported.binding_name)
            )
            self.import_index[imported.binding_name] = index

        # Reserve indices for the top-level functions (so they can refer to
        # each other and lifted lambdas can be appended after them).
        for function in self.module.functions:
            self.function_index[function.name] = len(self.functions)
            self.functions.append(None)  # placeholder, filled in below

        # Globals.
        for position, global_decl in enumerate(self.module.globals):
            compiled = compile_type(global_decl.type)
            init_instrs, init_type = self.compile_expr(
                CompileEnv(self._top_level_bindings()), global_decl.init, FunctionBuilder(0)
            )
            self.global_index[global_decl.name] = position
            self.global_decls.append(
                Global(compiled.pretype, True, tuple(init_instrs), (), global_decl.name)
            )

        # Compile the top-level functions.
        for function in self.module.functions:
            compiled = self._compile_top_function(function)
            self.functions[self.function_index[function.name]] = compiled

        # An exported ``_init`` function re-establishes the globals; the Wasm
        # lowering relies on it because Wasm global initializers must be
        # constant expressions.
        if self.module.globals:
            self.functions.append(self._build_init_function())

        table = Table(entries=tuple(self.table_entries))
        return Module(
            functions=tuple(self.functions),
            globals=tuple(self.global_decls),
            table=table,
            name=self.module.name,
        )

    # -- helpers ---------------------------------------------------------------------

    def _top_level_bindings(self) -> dict[str, object]:
        bindings: dict[str, object] = {}
        for imported in self.module.imports:
            bindings[imported.binding_name] = FunctionBinding(
                self.import_index[imported.binding_name],
                TFun(imported.param_type, imported.result_type),
            )
        for name, index in self.function_index.items():
            bindings[name] = FunctionBinding(index, self.checked.function_types[name])
        for global_decl in self.module.globals:
            if global_decl.name in self.global_index:
                bindings[global_decl.name] = GlobalBinding(
                    self.global_index[global_decl.name], global_decl.type
                )
        return bindings

    def _type_env(self) -> TypeEnv:
        env: dict[str, MLType] = {}
        for imported in self.module.imports:
            env[imported.binding_name] = TFun(imported.param_type, imported.result_type)
        for global_decl in self.module.globals:
            env[global_decl.name] = global_decl.type
        for name, ftype in self.checked.function_types.items():
            env[name] = ftype
        return TypeEnv(env)

    def _infer(self, env_types: dict[str, MLType], expr: Expr) -> MLType:
        base = self._type_env()
        for name, ty in env_types.items():
            base = base.extend(name, ty)
        return check_expr(base, expr)

    def _compile_top_function(self, function: MLFunction) -> Function:
        param_type = compile_type(function.param_type)
        result_type = compile_type(function.result_type)
        builder = FunctionBuilder(param_count=1)
        env = CompileEnv(self._top_level_bindings()).extend_local(
            function.param, 0, function.param_type
        )
        body_instrs, body_type = self.compile_expr(env, function.body, builder)
        instrs = tuple(body_instrs) + (Return(),)
        exports = (function.name,) if function.export else ()
        return Function(
            funtype=make_funtype([param_type], [result_type]),
            locals_sizes=tuple(builder.locals_sizes),
            body=instrs,
            exports=exports,
            name=function.name,
        )

    def _build_init_function(self) -> Function:
        body: list[Instr] = []
        builder = FunctionBuilder(param_count=0)
        env = CompileEnv(self._top_level_bindings())
        for global_decl in self.module.globals:
            init_instrs, _ = self.compile_expr(env, global_decl.init, builder)
            body.extend(init_instrs)
            body.append(SetGlobal(self.global_index[global_decl.name]))
        body.append(Return())
        return Function(
            funtype=make_funtype([], []),
            locals_sizes=tuple(builder.locals_sizes),
            body=tuple(body),
            exports=("_init",),
            name="_init",
        )

    def _lift_lambda(self, lam: Lam, captured: list[tuple[str, MLType]]) -> tuple[int, Type]:
        """Lift a lambda to a top-level function ``(arg, env) -> result``.

        Returns the table index of the lifted code and the RichWasm type of
        its environment struct.
        """

        env_field_types = [compile_type(t) for _, t in captured]
        env_heaptype = StructHT(
            tuple((t, closed_size_of_type(t)) for t in env_field_types)
        )
        env_type = Type(ExLocT(Type(RefT(Privilege.RW, _loc_var0(), env_heaptype), UNR)), UNR)

        param_type = compile_type(lam.param_type)
        env_ml_types = {name: t for name, t in captured}
        env_ml_types[lam.param] = lam.param_type
        result_ml = self._infer(env_ml_types, lam.body)
        result_type = compile_type(result_ml)

        builder = FunctionBuilder(param_count=2)
        compile_env = CompileEnv(self._top_level_bindings()).extend_local(lam.param, 0, lam.param_type)

        # Unpack the environment struct into fresh locals.  The block declares
        # its local effects so the new types of the field locals are visible to
        # the rest of the body (paper: blocks are annotated with ``(i, τ)*``).
        prologue: list[Instr] = []
        if captured:
            from ..core.syntax import local_effects

            body_block: list[Instr] = []
            field_locals: list[int] = []
            for (name, mltype), compiled in zip(captured, env_field_types):
                local = builder.new_local(_size_bits(compiled))
                field_locals.append(local)
                compile_env = compile_env.extend_local(name, local, mltype)
            # env parameter is local 1: an existential package over a struct ref.
            for position, local in enumerate(field_locals):
                body_block.append(StructGet(position))
                body_block.append(SetLocal(local))
            body_block.append(Drop())
            effects = local_effects(
                [(local, t) for local, t in zip(field_locals, env_field_types)]
            )
            prologue.append(GetLocal(1, UNR))
            prologue.append(MemUnpack(arrow([], []), effects, tuple(body_block)))

        body_instrs, body_type = self.compile_expr(compile_env, lam.body, builder)
        instrs = tuple(prologue) + tuple(body_instrs) + (Return(),)

        funtype = make_funtype([param_type, env_type], [result_type])
        index = len(self.functions)
        self.lifted_count += 1
        self.functions.append(
            Function(
                funtype=funtype,
                locals_sizes=tuple(builder.locals_sizes),
                body=instrs,
                exports=(),
                name=f"lambda_{self.lifted_count}",
            )
        )
        table_index = len(self.table_entries)
        self.table_entries.append(index)
        return table_index, env_type

    # -- expression compilation ---------------------------------------------------------

    def compile_expr(self, env: CompileEnv, expr: Expr, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        """Compile an expression; returns instructions and the RichWasm type
        of the value they leave on the stack."""

        if isinstance(expr, Unit):
            return [UnitV()], unit()
        if isinstance(expr, IntLit):
            return [NumConst(NumType.I32, expr.value)], i32()
        if isinstance(expr, BoolLit):
            return [NumConst(NumType.I32, 1 if expr.value else 0)], i32()
        if isinstance(expr, Var):
            return self._compile_var(env, expr, builder)
        if isinstance(expr, Lam):
            return self._compile_lambda(env, expr, builder)
        if isinstance(expr, App):
            return self._compile_app(env, expr, builder)
        if isinstance(expr, Let):
            return self._compile_let(env, expr, builder)
        if isinstance(expr, Seq):
            first, first_type = self.compile_expr(env, expr.first, builder)
            second, second_type = self.compile_expr(env, expr.second, builder)
            return [*first, Drop(), *second], second_type
        if isinstance(expr, Pair):
            left, left_type = self.compile_expr(env, expr.left, builder)
            right, right_type = self.compile_expr(env, expr.right, builder)
            qual = LIN if (is_linear(left_type) or is_linear(right_type)) else UNR
            return [*left, *right, SeqGroup(2, qual)], prod([left_type, right_type], qual)
        if isinstance(expr, Fst):
            pair_instrs, pair_type = self.compile_expr(env, expr.pair, builder)
            left_type, right_type = pair_type.pretype.components  # type: ignore[union-attr]
            return [*pair_instrs, SeqUngroup(), Drop()], left_type
        if isinstance(expr, Snd):
            pair_instrs, pair_type = self.compile_expr(env, expr.pair, builder)
            left_type, right_type = pair_type.pretype.components  # type: ignore[union-attr]
            tmp = builder.new_local(_size_bits(right_type))
            return [
                *pair_instrs,
                SeqUngroup(),
                SetLocal(tmp),
                Drop(),
                GetLocal(tmp, LIN if is_linear(right_type) else UNR),
            ], right_type
        if isinstance(expr, (Inl, Inr)):
            return self._compile_injection(env, expr, builder)
        if isinstance(expr, Case):
            return self._compile_case(env, expr, builder)
        if isinstance(expr, MkRef):
            value, value_type = self.compile_expr(env, expr.value, builder)
            size = closed_size_of_type(value_type)
            instrs = [*value, StructMalloc((size,), UNR)]
            return instrs, ref_struct(value_type, UNR)
        if isinstance(expr, Deref):
            return self._compile_deref(env, expr, builder)
        if isinstance(expr, Assign):
            return self._compile_assign(env, expr, builder)
        if isinstance(expr, MkRefToLin):
            return self._compile_mk_ref_to_lin(expr)
        if isinstance(expr, BinOp):
            return self._compile_binop(env, expr, builder)
        if isinstance(expr, If):
            return self._compile_if(env, expr, builder)
        raise CompilationError(f"cannot compile expression {expr!r}")

    # -- variables -----------------------------------------------------------------------

    def _compile_var(self, env: CompileEnv, expr: Var, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        binding = env.lookup(expr.name)
        if isinstance(binding, LocalBinding):
            compiled = compile_type(binding.mltype)
            qual = LIN if is_linear(compiled) else UNR
            return [GetLocal(binding.index, qual)], compiled
        if isinstance(binding, GlobalBinding):
            compiled = compile_type(binding.mltype)
            return [GetGlobal(binding.index)], Type(compiled.pretype, UNR)
        if isinstance(binding, FunctionBinding):
            # A top-level function used as a value: eta-expand into a closure.
            eta = Lam("x", binding.mltype.param, App(Var(expr.name), Var("x")))
            return self._compile_lambda(env, eta, builder)
        raise CompilationError(f"unknown binding {binding!r}")

    # -- closures ------------------------------------------------------------------------

    def _free_variables(self, expr: Expr, bound: set[str]) -> dict[str, None]:
        """Free variables of an expression in deterministic (first-use) order."""

        free: dict[str, None] = {}

        def visit(node: Expr, bound_now: set[str]) -> None:
            if isinstance(node, Var):
                if node.name not in bound_now:
                    free.setdefault(node.name, None)
            elif isinstance(node, Lam):
                visit(node.body, bound_now | {node.param})
            elif isinstance(node, Let):
                visit(node.bound, bound_now)
                visit(node.body, bound_now | {node.name})
            elif isinstance(node, Case):
                visit(node.scrutinee, bound_now)
                visit(node.left_body, bound_now | {node.left_name})
                visit(node.right_body, bound_now | {node.right_name})
            else:
                for child_name in getattr(node, "__dataclass_fields__", {}):
                    child = getattr(node, child_name)
                    if isinstance(child, tuple(EXPR_CLASSES)):
                        visit(child, bound_now)

        visit(expr, set(bound))
        return free

    def _compile_lambda(self, env: CompileEnv, lam: Lam, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        free = self._free_variables(lam.body, {lam.param})
        captured: list[tuple[str, MLType]] = []
        for name in free:
            binding = env.bindings.get(name)
            if isinstance(binding, LocalBinding):
                captured.append((name, binding.mltype))
        # Globals, imports and top-level functions stay directly addressable
        # inside the lifted code, so they are not captured.

        table_index, env_type = self._lift_lambda(lam, captured)

        param_type = compile_type(lam.param_type)
        env_ml = {name: t for name, t in captured}
        env_ml[lam.param] = lam.param_type
        result_type = compile_type(self._infer(env_ml, lam.body))

        instrs: list[Instr] = [CodeRefI(table_index)]
        env_struct_fields = []
        for name, mltype in captured:
            var_instrs, var_type = self._compile_var(env, Var(name), builder)
            instrs.extend(var_instrs)
            env_struct_fields.append(closed_size_of_type(var_type))
        instrs.append(StructMalloc(tuple(env_struct_fields), UNR))
        instrs.append(SeqGroup(2, UNR))
        instrs.append(ExistPack(env_type.pretype, closure_existential(param_type, result_type), UNR))
        return instrs, closure_type(param_type, result_type)

    def _compile_app(self, env: CompileEnv, expr: App, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        # Direct call of a known top-level function or import.
        if isinstance(expr.func, Var):
            binding = env.bindings.get(expr.func.name)
            if isinstance(binding, FunctionBinding):
                arg_instrs, _ = self.compile_expr(env, expr.arg, builder)
                result_type = compile_type(binding.mltype.result)
                return [*arg_instrs, Call(binding.index, ())], result_type

        func_instrs, func_type = self.compile_expr(env, expr.func, builder)
        arg_instrs, arg_type = self.compile_expr(env, expr.arg, builder)

        # func_type = ∃ρ.(ref rw ρ (∃α. prod (coderef (A, α) -> B) α))^unr
        heaptype = func_type.pretype.body.pretype.heaptype  # type: ignore[union-attr]
        result_type = heaptype.body.pretype.components[0].pretype.funtype.arrow.results[0]  # type: ignore[union-attr]

        env_local = builder.new_local(64)
        code_local = builder.new_local(64)
        ref_local = builder.new_local(32)
        arg_local = builder.new_local(_size_bits(arg_type))
        result_local = builder.new_local(_size_bits(result_type))
        arg_qual = LIN if is_linear(arg_type) else UNR
        unpack_body = (
            # mem.unpack leaves [arg, closure_ref]; exist.unpack expects the
            # reference *below* its block arguments, so reorder via locals.
            SetLocal(ref_local),
            SetLocal(arg_local),
            GetLocal(ref_local, UNR),
            GetLocal(arg_local, arg_qual),
            ExistUnpack(
                UNR,
                heaptype,
                arrow([arg_type], [result_type]),
                (),
                (
                    SeqUngroup(),
                    SetLocal(env_local),
                    SetLocal(code_local),
                    GetLocal(env_local, UNR),
                    GetLocal(code_local, UNR),
                    CallIndirect(),
                ),
            ),
            # The (unrestricted) closure reference is returned below the result:
            # stash the result, drop the reference, restore the result.
            SetLocal(result_local),
            Drop(),
            GetLocal(result_local, LIN if is_linear(result_type) else UNR),
        )
        instrs = [
            *arg_instrs,
            *func_instrs,
            MemUnpack(arrow([arg_type], [result_type]), (), unpack_body),
        ]
        return instrs, result_type

    # -- sums -----------------------------------------------------------------------------

    def _compile_injection(self, env: CompileEnv, expr, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        tag = 0 if isinstance(expr, Inl) else 1
        payload, payload_type = self.compile_expr(env, expr.value, builder)
        left = compile_type(expr.sum_type.left)
        right = compile_type(expr.sum_type.right)
        instrs = [*payload, VariantMalloc(tag, (left, right), UNR)]
        return instrs, compile_type(expr.sum_type)

    def _compile_case(self, env: CompileEnv, expr: Case, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        scrutinee, scrutinee_type = self.compile_expr(env, expr.scrutinee, builder)
        heaptype = scrutinee_type.pretype.body.pretype.heaptype  # type: ignore[union-attr]
        left_type, right_type = heaptype.cases

        scrutinee_ml = self._infer({n: b.mltype for n, b in env.bindings.items() if isinstance(b, LocalBinding)}, expr.scrutinee)
        assert isinstance(scrutinee_ml, TSum)
        left_local = builder.new_local(_size_bits(left_type))
        right_local = builder.new_local(_size_bits(right_type))
        left_env = env.extend_local(expr.left_name, left_local, scrutinee_ml.left)
        right_env = env.extend_local(expr.right_name, right_local, scrutinee_ml.right)
        left_body, result_type = self.compile_expr(left_env, expr.left_body, builder)
        right_body, _ = self.compile_expr(right_env, expr.right_body, builder)

        result_local = builder.new_local(_size_bits(result_type))
        case_instr = VariantCase(
            UNR,
            heaptype,
            arrow([], [result_type]),
            (),
            (
                (SetLocal(left_local), *left_body),
                (SetLocal(right_local), *right_body),
            ),
        )
        unpack_body = (
            case_instr,
            # stack: ref, result — drop the unrestricted reference underneath.
            SetLocal(result_local),
            Drop(),
            GetLocal(result_local, LIN if is_linear(result_type) else UNR),
        )
        instrs = [*scrutinee, MemUnpack(arrow([], [result_type]), (), unpack_body)]
        return instrs, result_type

    # -- references ------------------------------------------------------------------------

    def _compile_deref(self, env: CompileEnv, expr: Deref, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        ref_ml = self._infer({n: b.mltype for n, b in env.bindings.items() if isinstance(b, LocalBinding)}, expr.ref)
        ref_instrs, ref_type = self.compile_expr(env, expr.ref, builder)
        if isinstance(ref_ml, RefToLin):
            return self._compile_ref_to_lin_read(ref_instrs, ref_ml, builder)
        content_type = ref_type.pretype.body.pretype.heaptype.field_types[0]  # type: ignore[union-attr]
        tmp = builder.new_local(_size_bits(content_type))
        unpack_body = (
            StructGet(0),
            SetLocal(tmp),
            Drop(),
            GetLocal(tmp, UNR),
        )
        instrs = [*ref_instrs, MemUnpack(arrow([], [content_type]), (), unpack_body)]
        return instrs, content_type

    def _compile_assign(self, env: CompileEnv, expr: Assign, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        ref_ml = self._infer({n: b.mltype for n, b in env.bindings.items() if isinstance(b, LocalBinding)}, expr.ref)
        value_instrs, value_type = self.compile_expr(env, expr.value, builder)
        ref_instrs, ref_type = self.compile_expr(env, expr.ref, builder)
        if isinstance(ref_ml, RefToLin):
            return self._compile_ref_to_lin_write(value_instrs, value_type, ref_instrs, ref_ml, builder)
        ref_local = builder.new_local(32)
        value_local = builder.new_local(_size_bits(value_type))
        unpack_body = (
            SetLocal(ref_local),
            SetLocal(value_local),
            GetLocal(ref_local, UNR),
            GetLocal(value_local, UNR),
            StructSet(0),
            Drop(),
            UnitV(),
        )
        instrs = [
            *value_instrs,
            *ref_instrs,
            MemUnpack(arrow([value_type], [unit()]), (), unpack_body),
        ]
        return instrs, unit()

    def _compile_mk_ref_to_lin(self, expr: MkRefToLin) -> tuple[list[Instr], Type]:
        lin_type = compile_linear_type(expr.content_type)
        option = option_type(expr.content_type)
        instrs: list[Instr] = [
            UnitV(),
            VariantMalloc(0, (unit(), lin_type), LIN),
            StructMalloc((closed_size_of_type(option),), UNR),
        ]
        return instrs, compile_type(RefToLin(expr.content_type))

    def _compile_ref_to_lin_read(
        self, ref_instrs: list[Instr], ref_ml: RefToLin, builder: FunctionBuilder
    ) -> tuple[list[Instr], Type]:
        lin_type = compile_linear_type(ref_ml.inner)
        option = option_type(ref_ml.inner)
        option_ht = VariantHT((unit(), lin_type))
        old_local = builder.new_local(_size_bits(option))

        # Swap a fresh "empty" option into the cell; the swapped-out old option
        # is case-analysed linearly: an empty cell means the linear value was
        # already taken (or never stored) — a runtime failure, exactly as the
        # paper prescribes for the ref_to_lin extension.
        unpack_body = (
            UnitV(),
            VariantMalloc(0, (unit(), lin_type), LIN),
            StructSwap(0),
            SetLocal(old_local),
            Drop(),
            GetLocal(old_local, LIN),
            MemUnpack(
                arrow([], [lin_type]),
                (),
                (
                    VariantCase(
                        LIN,
                        option_ht,
                        arrow([], [lin_type]),
                        (),
                        (
                            (Drop(), Unreachable()),
                            (Nop(),),
                        ),
                    ),
                ),
            ),
        )
        instrs = [*ref_instrs, MemUnpack(arrow([], [lin_type]), (), unpack_body)]
        return instrs, lin_type

    def _compile_ref_to_lin_write(
        self,
        value_instrs: list[Instr],
        value_type: Type,
        ref_instrs: list[Instr],
        ref_ml: RefToLin,
        builder: FunctionBuilder,
    ) -> tuple[list[Instr], Type]:
        lin_type = compile_linear_type(ref_ml.inner)
        option = option_type(ref_ml.inner)
        option_ht = VariantHT((unit(), lin_type))
        old_local = builder.new_local(_size_bits(option))
        ref_local = builder.new_local(32)
        pkg_local = builder.new_local(_size_bits(option))

        # Wrap the new value into a "full" option, swap it into the cell, and
        # case-analyse the old option: if it still held a value, completing the
        # write would drop a linear value, so the program traps.
        unpack_body = (
            # stack: value, cell-ref — wrap the value, then re-order for swap.
            SetLocal(ref_local),
            VariantMalloc(1, (unit(), lin_type), LIN),
            SetLocal(pkg_local),
            GetLocal(ref_local, UNR),
            GetLocal(pkg_local, LIN),
            StructSwap(0),
            SetLocal(old_local),
            Drop(),
            GetLocal(old_local, LIN),
            MemUnpack(
                arrow([], [unit()]),
                (),
                (
                    VariantCase(
                        LIN,
                        option_ht,
                        arrow([], [unit()]),
                        (),
                        (
                            (Nop(),),
                            (Unreachable(),),
                        ),
                    ),
                ),
            ),
        )
        instrs = [
            *value_instrs,
            *ref_instrs,
            MemUnpack(arrow([value_type], [unit()]), (), unpack_body),
        ]
        return instrs, unit()

    # -- primitives ------------------------------------------------------------------------

    def _compile_binop(self, env: CompileEnv, expr: BinOp, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        left, _ = self.compile_expr(env, expr.left, builder)
        right, _ = self.compile_expr(env, expr.right, builder)
        arith = {"+": IntBinop.ADD, "-": IntBinop.SUB, "*": IntBinop.MUL, "/": IntBinop.DIV_S}
        compare = {"=": IntRelop.EQ, "<": IntRelop.LT_S, "<=": IntRelop.LE_S, ">": IntRelop.GT_S, ">=": IntRelop.GE_S}
        if expr.op in arith:
            return [*left, *right, NumBinop(NumType.I32, arith[expr.op])], i32()
        if expr.op in compare:
            return [*left, *right, NumRelop(NumType.I32, compare[expr.op])], i32()
        raise CompilationError(f"unknown operator {expr.op!r}")

    def _compile_if(self, env: CompileEnv, expr: If, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        condition, _ = self.compile_expr(env, expr.condition, builder)
        then_body, then_type = self.compile_expr(env, expr.then_branch, builder)
        else_body, _ = self.compile_expr(env, expr.else_branch, builder)
        instrs = [
            *condition,
            RIf(arrow([], [then_type]), (), tuple(then_body), tuple(else_body)),
        ]
        return instrs, then_type

    # -- lets -------------------------------------------------------------------------------

    def _compile_let(self, env: CompileEnv, expr: Let, builder: FunctionBuilder) -> tuple[list[Instr], Type]:
        bound_ml = self._infer({n: b.mltype for n, b in env.bindings.items() if isinstance(b, LocalBinding)}, expr.bound)
        bound, bound_type = self.compile_expr(env, expr.bound, builder)
        local = builder.new_local(_size_bits(bound_type))
        body_env = env.extend_local(expr.name, local, bound_ml)
        body, body_type = self.compile_expr(body_env, expr.body, builder)
        return [*bound, SetLocal(local), *body], body_type


EXPR_CLASSES = (
    Unit, IntLit, BoolLit, Var, Lam, App, Let, Seq, Pair, Fst, Snd, Inl, Inr, Case,
    MkRef, Deref, Assign, MkRefToLin, BinOp, If,
)


def _size_bits(ty: Type) -> int:
    from ..core.syntax.sizes import eval_size

    return eval_size(closed_size_of_type(ty))


def compile_ml_module(
    module: MLModule, *, lower: bool = False, cache=None, config=None,
    optimize=_UNSET, memory_pages=_UNSET, engine=_UNSET,
):
    """Type-check and compile an ML module to RichWasm.

    By default this returns the RichWasm :class:`Module` (this is also the
    ``"ml"`` frontend of :func:`repro.api.compile`).  With ``lower=True``,
    a ``config=`` (:class:`repro.api.CompileConfig`), or a ``cache=``
    (:class:`repro.runtime.ModuleCache`, which memoizes the lower/optimize
    stage by content) it continues down the pipeline and returns the
    :class:`repro.lower.LoweredModule` instead, optionally post-processed by
    the config's named :mod:`repro.opt` pipeline.

    The ``optimize``/``memory_pages``/``engine`` keywords are the deprecated
    pre-:mod:`repro.api` surface (one :class:`DeprecationWarning` per call,
    and passing any of them implies lowering); ``optimize=True`` maps to
    ``O2``.
    """

    checked = check_module(module)
    richwasm = MLCompiler(checked).compile()
    lowered = _codegen_lowering(
        "compile_ml_module", richwasm, lower=lower, cache=cache, config=config,
        legacy={"optimize": optimize, "memory_pages": memory_pages, "engine": engine},
    )
    return richwasm if lowered is None else lowered
