"""RichWasm reproduction.

A Python implementation of RichWasm (PLDI 2024): a richly typed intermediate
language built on WebAssembly that supports safe, fine-grained, shared-memory
interoperability between garbage-collected and manually-managed languages.

Subpackages:

* :mod:`repro.core` — the RichWasm IL: syntax, type system, dynamic semantics.
* :mod:`repro.wasm` — a WebAssembly 1.0 (+ multi-value) substrate.
* :mod:`repro.lower` — the RichWasm → Wasm compiler.
* :mod:`repro.ml` / :mod:`repro.l3` — source-language frontends.
* :mod:`repro.ffi` — multi-module linking and the ML/L3 FFI.
* :mod:`repro.analysis` — metrics and the empirical type-safety harness.
"""

__version__ = "1.0.0"
