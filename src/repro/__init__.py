"""RichWasm reproduction.

A Python implementation of RichWasm (PLDI 2024): a richly typed intermediate
language built on WebAssembly that supports safe, fine-grained, shared-memory
interoperability between garbage-collected and manually-managed languages.

Subpackages:

* :mod:`repro.api` — the stable entry surface: ``CompileConfig`` +
  ``compile``/``serve`` over every layer below.
* :mod:`repro.core` — the RichWasm IL: syntax, type system, dynamic semantics.
* :mod:`repro.wasm` — a WebAssembly 1.0 (+ multi-value) substrate with
  pluggable execution engines.
* :mod:`repro.lower` — the RichWasm → Wasm compiler.
* :mod:`repro.opt` — Wasm optimization passes and the named ``O0``–``O2``
  pipelines.
* :mod:`repro.ml` / :mod:`repro.l3` — source-language frontends.
* :mod:`repro.ffi` — multi-module linking and the ML/L3 FFI.
* :mod:`repro.runtime` — the compile-once/run-many serving layer
  (module cache, instance pool, batch runner).
* :mod:`repro.analysis` — metrics and the empirical type-safety harness.
"""

__version__ = "1.0.0"
