"""Function-granular compilation units for the incremental compile pipeline.

:class:`repro.runtime.ModuleCache` memoizes whole modules: one edited
function used to invalidate every stage for the entire module.  This module
supplies the layer underneath — a :class:`FunctionUnitCache` holding
per-*function* artifacts for each compile stage, keyed by content so that a
new version of a module reuses every unchanged function's work:

* **typecheck** — (function digest, signature-environment digest,
  ``allow_caps`` flag) → the function's checked instruction count
  (:func:`repro.core.typing.check_module`);
* **lower** — (function digest, signature-environment digest) → the lowered
  :class:`~repro.wasm.ast.WasmFunction` plus the erasure/boxing statistics
  deltas its compilation contributed (:class:`repro.lower.ModuleLowering`);
* **optimize** — (pass name, Wasm function digest) → the rewritten function
  and rewrite count (:class:`repro.opt.PassManager`; sound because every
  :class:`~repro.opt.FunctionPass` is a pure function of the function body);
* **validate** — (Wasm function digest, Wasm signature digest) → a checked
  marker (:func:`repro.wasm.validate_module`);
* **decode** — Wasm function digest → the :class:`~repro.wasm.decode.FlatFunction`;
* **translate** — (Wasm function digest, Wasm signature digest, slot index,
  stack mode) → the generated Python source chunk, stack mode and exec'd
  callable (:mod:`repro.wasm.pygen`; sound since PR 8 routed direct calls
  through the per-instance runtime, making each generated function
  self-contained).

Unit keys are built from :func:`repro.core.syntax.structural_digest` parts,
so — like the PR 5 content keys — they are deterministic across processes
and never leak ``id()``/``hash()``.  The signature-environment digests
(:func:`repro.core.syntax.signature_env_digest` on the RichWasm side,
:func:`wasm_signature_digest` here on the Wasm side) cover everything a
function's compilation can observe about the rest of the module *except*
other function bodies — which is exactly what makes a one-function edit
leave the other functions' keys unchanged.

The consumers (``core.typing``, ``lower``, ``opt``, ``wasm``) receive the
cache as an opaque ``unit_cache`` parameter and call its ``*_key``/``get``/
``put`` methods, so no lower layer imports this module.  Every lookup is
counted in per-stage :class:`UnitStats` and mirrored to the process-wide
``compile.units.events`` counter through a single locked increment path.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional

from .core.syntax.intern import structural_digest
from .core.syntax.modules import signature_env_digest
from .obs.metrics import default_registry
from .wasm.ast import WasmFunction, WasmModule

#: Stages with per-function unit tables, in pipeline order.
UNIT_STAGES = ("typecheck", "lower", "optimize", "validate", "decode", "translate")

# Process-wide unit telemetry, labeled by stage and outcome (hit/miss/evict).
# The per-cache integer view lives on ``FunctionUnitCache.stats``.
_UNIT_EVENTS = default_registry().counter(
    "compile.units.events", "Per-function compile unit lookups by stage/outcome"
)


def unit_key(stage: str, *parts: object) -> str:
    """The canonical per-function unit key: SHA-256 hex over digest parts.

    ``bytes`` parts (pre-computed digests) feed the hash directly; everything
    else goes through :func:`repro.core.syntax.structural_digest`, so keys
    are deterministic across processes for the same reasons the PR 5 content
    keys are.
    """

    hasher = hashlib.sha256(stage.encode())
    for part in parts:
        hasher.update(b"\x00")
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(structural_digest(part))
    return hasher.hexdigest()


def wasm_signature_digest(module: WasmModule) -> bytes:
    """Digest of what one Wasm function's validation/translation can see of
    the rest of its module: every declaration's kind and function type in
    index order, global value types and mutability, memory presence and the
    table entries — everything *except* other function bodies.

    Cached on the (frozen, immutable) module instance, mirroring
    :func:`repro.core.syntax.signature_env_digest` on the RichWasm side.
    """

    cached = module.__dict__.get("_wasm_sig_digest")
    if cached is None:
        hasher = hashlib.sha256(b"wasmsig")
        for decl in module.functions:
            hasher.update(b"f" if isinstance(decl, WasmFunction) else b"h")
            hasher.update(structural_digest(decl.functype))
        hasher.update(b"|globals")
        for global_decl in module.globals:
            hasher.update(structural_digest(global_decl.valtype))
            hasher.update(b"\x01" if global_decl.mutable else b"\x00")
        hasher.update(b"|mem\x01" if module.memory is not None else b"|mem\x00")
        hasher.update(b"|table")
        for entry in module.table.entries:
            hasher.update(b"%d," % entry)
        cached = hasher.digest()
        module.__dict__["_wasm_sig_digest"] = cached
    return cached


# ---------------------------------------------------------------------------
# Stage-specific key builders (module-level, so tests and docs can name them)
# ---------------------------------------------------------------------------


def typecheck_unit_key(function, module, *, allow_caps: bool = True) -> str:
    """RichWasm per-function typecheck unit key."""

    return unit_key(
        "typecheck", structural_digest(function), signature_env_digest(module), allow_caps
    )


def lower_unit_key(function, module) -> str:
    """RichWasm → Wasm per-function lowering unit key.

    No :class:`repro.api.CompileConfig` field feeds this key: of the
    compile-content fields, ``memory_pages`` only sizes the module's memory
    declaration, ``link_name`` only names the module, and the optimization
    level acts one stage later — per-function lowering output depends on the
    function body and the signature environment alone.
    """

    return unit_key("lower", structural_digest(function), signature_env_digest(module))


def optimize_unit_key(function: WasmFunction, pass_name: str) -> str:
    """Per-(pass, function) optimization unit key.

    The pass name is the config-relevant ingredient here: ``opt_level``
    expands to an ordered pass list, and each (pass, function-version) step
    is memoized individually, so O1 and O2 share the units of the passes
    they have in common.
    """

    return unit_key("optimize", pass_name, structural_digest(function))


def validate_unit_key(function: WasmFunction, module: WasmModule) -> str:
    """Per-function Wasm validation unit key."""

    return unit_key("validate", structural_digest(function), wasm_signature_digest(module))


def decode_unit_key(function: WasmFunction) -> str:
    """Per-function flat-decode unit key — decode is context-free."""

    return unit_key("decode", structural_digest(function))


def translate_unit_key(
    function: WasmFunction, module: WasmModule, index: int, *, force_list: bool = False
) -> str:
    """Per-function pygen translation unit key.

    The signature digest covers the callee arities and host import types the
    emitted call sites bake in; the slot index is baked into the generated
    function name and host-call dispatch, so it is part of the key too.
    """

    return unit_key(
        "translate",
        structural_digest(function),
        wasm_signature_digest(module),
        index,
        force_list,
    )


# ---------------------------------------------------------------------------
# The unit cache
# ---------------------------------------------------------------------------


@dataclass
class UnitStats:
    """Reuse counters for one stage's per-function units.

    ``record`` is the *only* increment path: it bumps the integer view and
    the process-wide ``compile.units.events`` counter under one lock, so the
    two can never disagree (the pattern :class:`repro.runtime.CacheStats`
    adopted in the same PR).
    """

    stage: str
    reused: int = 0
    compiled: int = 0
    evicted: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    @property
    def lookups(self) -> int:
        return self.reused + self.compiled

    def record(self, event: str) -> None:
        with self._lock:
            if event == "hit":
                self.reused += 1
            elif event == "miss":
                self.compiled += 1
            else:
                self.evicted += 1
            _UNIT_EVENTS.inc(stage=self.stage, event=event)

    def reset(self) -> None:
        with self._lock:
            self.reused = self.compiled = self.evicted = 0


class FunctionUnitCache:
    """Per-function artifact store, one table per compile stage.

    Artifacts are immutable (or treated as such) and never ``None``; ``get``
    returns ``None`` on a miss and counts every lookup, so one ``get`` is
    one hit-or-miss regardless of whether the caller ``put``s afterwards.

    ``max_entries`` (per stage) bounds the tables with LRU eviction —
    ``None`` (the default, matching :class:`~repro.runtime.ModuleCache`)
    keeps them unbounded.  Eviction only drops the cache's own references:
    artifacts already composed into live modules/programs stay alive with
    their owners.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = max_entries
        self._tables: dict[str, dict[str, object]] = {stage: {} for stage in UNIT_STAGES}
        self.stats: dict[str, UnitStats] = {stage: UnitStats(stage) for stage in UNIT_STAGES}
        # Keys seeded from a parallel compile whose *first* lookup should
        # replay the worker's outcome (miss = a worker compiled it fresh)
        # instead of counting a bogus in-process hit; see :meth:`seed`.
        self._seeded_fresh: dict[str, set[str]] = {stage: set() for stage in UNIT_STAGES}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(f"{stage}={len(table)}" for stage, table in self._tables.items())
        return f"FunctionUnitCache({sizes})"

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    # -- storage -----------------------------------------------------------

    def get(self, stage: str, key: str):
        table = self._tables[stage]
        value = table.get(key)
        if value is None:
            self.stats[stage].record("miss")
            return None
        if self.max_entries is not None:
            table[key] = table.pop(key)  # LRU touch: move to the young end
        seeded = self._seeded_fresh[stage]
        if key in seeded:
            # First lookup of a unit a compile worker built this compile:
            # count it as *compiled* (the work happened, in another process)
            # exactly once; later lookups are ordinary reuse.
            seeded.discard(key)
            self.stats[stage].record("miss")
            return value
        self.stats[stage].record("hit")
        return value

    def peek(self, stage: str, key: str):
        """The stored unit without counting a lookup (``None`` on absence).

        The parallel-compile planner uses this to decide which units still
        need computing without perturbing the hit/miss statistics the
        recompose pass will produce.
        """

        return self._tables[stage].get(key)

    def seed(self, stage: str, key: str, value: object, *, fresh: bool = True) -> None:
        """File a unit produced by a compile worker (no lookup counted now).

        ``fresh=True`` marks a unit the worker *compiled* during this
        parallel compile: the parent's first subsequent :meth:`get` of the
        key records a miss (the unit was compiled, not reused) and every
        later one a hit — reproducing exactly the counts a serial compile
        would have recorded, with no double counting.  ``fresh=False`` files
        a unit the worker itself warm-read from a shared tier (the disk
        cache), so the first parent lookup counts as reuse.
        """

        self._tables[stage][key] = value
        if fresh:
            self._seeded_fresh[stage].add(key)
        else:
            self._seeded_fresh[stage].discard(key)

    def put(self, stage: str, key: str, value: object) -> None:
        table = self._tables[stage]
        table[key] = value
        if self.max_entries is not None:
            while len(table) > self.max_entries:
                del table[next(iter(table))]
                self.stats[stage].record("evict")

    def clear(self) -> None:
        """Drop every table and zero the stats.

        Artifacts handed out earlier (lowered functions composed into cached
        modules, adopted translations) are owned by their consumers — clear
        only forgets the per-function memo, it strands nothing.
        """

        for table in self._tables.values():
            table.clear()
        for seeded in self._seeded_fresh.values():
            seeded.clear()
        for stats in self.stats.values():
            stats.reset()

    def sizes(self) -> dict[str, int]:
        return {stage: len(table) for stage, table in self._tables.items()}

    # -- snapshots (for Diagnostics deltas) --------------------------------

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """Per-stage ``(reused, compiled)`` counters, for before/after deltas."""

        return {stage: (stats.reused, stats.compiled) for stage, stats in self.stats.items()}

    def delta(self, before: dict[str, tuple[int, int]]) -> dict[str, dict[str, int]]:
        """Per-stage reuse since ``before`` (stages with no lookups omitted)."""

        changed: dict[str, dict[str, int]] = {}
        for stage, stats in self.stats.items():
            reused_before, compiled_before = before.get(stage, (0, 0))
            reused = stats.reused - reused_before
            compiled = stats.compiled - compiled_before
            if reused or compiled:
                changed[stage] = {"reused": reused, "compiled": compiled}
        return changed

    # -- key builders (the duck-typed surface lower layers call) -----------

    def typecheck_key(self, function, module, *, allow_caps: bool = True) -> str:
        return typecheck_unit_key(function, module, allow_caps=allow_caps)

    def lower_key(self, function, module) -> str:
        return lower_unit_key(function, module)

    def optimize_key(self, function, pass_name: str) -> str:
        return optimize_unit_key(function, pass_name)

    def validate_key(self, function, module) -> str:
        return validate_unit_key(function, module)

    def decode_key(self, function) -> str:
        return decode_unit_key(function)

    def translate_key(self, function, module, index: int, *, force_list: bool = False) -> str:
        return translate_unit_key(function, module, index, force_list=force_list)


__all__ = [
    "UNIT_STAGES",
    "FunctionUnitCache",
    "UnitStats",
    "unit_key",
    "wasm_signature_digest",
    "typecheck_unit_key",
    "lower_unit_key",
    "optimize_unit_key",
    "validate_unit_key",
    "decode_unit_key",
    "translate_unit_key",
]
