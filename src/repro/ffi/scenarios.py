"""The interop scenarios of the paper, as reusable program builders.

Three program families, used by the examples, the tests and the benchmarks:

* :func:`fig1_unsafe_program` — the naive interop of Fig. 1: a GC'd ML module
  stashes a reference it is given; the manually-managed client frees the
  reference it passed in *and* the stashed copy.  Without linking types the
  declared boundary types disagree, so linking fails.
* :func:`fig3_programs` — the same program written with linking types
  (Fig. 3).  The unsafe variant (``stash`` returns the linear reference it
  also stored) compiles to RichWasm that duplicates a linear value and is
  rejected by the RichWasm type checker; the safe variant (``stash`` does not
  return the reference and the client does not free the result) type checks
  and runs.
* :func:`counter_program` — the Fig. 9 style scenario: a manually-managed
  counter library with shared mutable configuration, driven by a GC'd client
  through an interface that hides all linearity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.syntax import Module
from ..l3 import (
    L3Function,
    L3Import,
    LBangI,
    LLetBang,
    LBinOp,
    LCall,
    LFree,
    LInt,
    LIntLit,
    LJoin,
    LLet,
    LLetPair,
    LMLRef,
    LNew,
    LOwned,
    LSplit,
    LSwap,
    LUnit,
    LUnitV,
    LVar,
    LBang,
    compile_l3_module,
    l3_module,
)
from ..ml import (
    App,
    Assign,
    BinOp,
    Deref,
    IntLit,
    Lam,
    Let,
    LinType,
    MkRef,
    MkRefToLin,
    MLFunction,
    MLGlobal,
    MLImport,
    MLModule,
    Pair,
    RefToLin,
    Seq,
    TInt,
    TRef,
    TUnit,
    Unit,
    Var,
    compile_ml_module,
    ml_module,
)


@dataclass
class InteropScenario:
    """A pair of separately-compiled RichWasm modules ready for linking."""

    ml: Module
    client: Module
    description: str

    def modules(self) -> dict[str, Module]:
        return {self.ml.name or "ml": self.ml, self.client.name or "client": self.client}


# ---------------------------------------------------------------------------
# Fig. 1 — naive unsafe interop (no linking types)
# ---------------------------------------------------------------------------


def fig1_unsafe_program() -> InteropScenario:
    """Fig. 1: ML stashes a GC'd reference; the client frees it twice.

    The ML module's ``stash`` works on ordinary (unrestricted, GC'd)
    references, but the manually-managed client imports it at the linear
    reference type its own ``new`` produces, so the declared import/export
    types disagree and linking fails.
    """

    ml = ml_module(
        "ml",
        globals=[MLGlobal("c", TRef(TRef(TInt())), MkRef(MkRef(IntLit(0))))],
        functions=[
            MLFunction("stash", "r", TRef(TInt()), TRef(TInt()),
                       Seq(Assign(Var("c"), Var("r")), Var("r"))),
            MLFunction("get_stashed", "u", TUnit(), TRef(TInt()), Deref(Var("c"))),
        ],
    )
    # The client is written in L3: it allocates manually managed memory and
    # frees what it believes it owns.  Its imports describe ``stash`` /
    # ``get_stashed`` at *linear* reference types.
    client = l3_module(
        "client",
        imports=[
            L3Import("ml", "stash", LMLRef(LBang(LInt())), LMLRef(LBang(LInt()))),
            L3Import("ml", "get_stashed", LUnit(), LMLRef(LBang(LInt()))),
        ],
        functions=[
            L3Function(
                "run", "u", LUnit(), LInt(),
                LLet(
                    "first",
                    LFree(LSplit(LCall("stash", LJoin(LNew(LBangI(LIntLit(42))))))),
                    LBinOp("+", LVar("first"), LFree(LSplit(LCall("get_stashed", LUnitV())))),
                ),
            ),
        ],
    )
    return InteropScenario(
        ml=compile_ml_module(ml),
        client=compile_l3_module(client),
        description="Fig. 1: naive interop, boundary types disagree",
    )


# ---------------------------------------------------------------------------
# Fig. 3 — linking types
# ---------------------------------------------------------------------------


def fig3_programs() -> tuple[InteropScenario, InteropScenario]:
    """Fig. 3: the unsafe and repaired variants written with linking types.

    Returns ``(unsafe, safe)``.  Both link (the boundary types agree); the
    unsafe one is rejected by the RichWasm type checker because ``stash``
    duplicates the linear reference, the safe one type checks and runs.
    """

    lin_ref_int = LinType(TRef(TInt()))

    unsafe_ml = ml_module(
        "ml",
        globals=[MLGlobal("c", RefToLin(TRef(TInt())), MkRefToLin(TRef(TInt())))],
        functions=[
            # stash stores the linear reference *and* returns it: the compiled
            # RichWasm reads the linear local twice, which cannot type check.
            MLFunction("stash", "r", lin_ref_int, lin_ref_int,
                       Seq(Assign(Var("c"), Var("r")), Var("r"))),
            MLFunction("get_stashed", "u", TUnit(), lin_ref_int, Deref(Var("c"))),
        ],
    )
    safe_ml = ml_module(
        "ml",
        globals=[MLGlobal("c", RefToLin(TRef(TInt())), MkRefToLin(TRef(TInt())))],
        functions=[
            # The repaired stash consumes the reference and returns unit.
            MLFunction("stash", "r", lin_ref_int, TUnit(),
                       Assign(Var("c"), Var("r"))),
            MLFunction("get_stashed", "u", TUnit(), lin_ref_int, Deref(Var("c"))),
        ],
    )

    lin_ref_l3 = LMLRef(LBang(LInt()))

    unsafe_client = l3_module(
        "client",
        imports=[
            L3Import("ml", "stash", lin_ref_l3, lin_ref_l3),
            L3Import("ml", "get_stashed", LUnit(), lin_ref_l3),
        ],
        functions=[
            L3Function(
                "run", "u", LUnit(), LInt(),
                LLet(
                    "first",
                    LFree(LSplit(LCall("stash", LJoin(LNew(LBangI(LIntLit(42))))))),
                    # CRASH in Fig. 3: freeing the stashed copy is a double free.
                    LBinOp("+", LVar("first"), LFree(LSplit(LCall("get_stashed", LUnitV())))),
                ),
            ),
        ],
    )
    safe_client = l3_module(
        "client",
        imports=[
            L3Import("ml", "stash", lin_ref_l3, LUnit()),
            L3Import("ml", "get_stashed", LUnit(), lin_ref_l3),
        ],
        functions=[
            L3Function(
                "store", "x", LInt(), LUnit(),
                LCall("stash", LJoin(LNew(LBangI(LVar("x"))))),
            ),
            L3Function(
                "take", "u", LUnit(), LInt(),
                LLetBang("v", LFree(LSplit(LCall("get_stashed", LUnitV()))), LVar("v")),
            ),
        ],
    )

    unsafe = InteropScenario(
        ml=compile_ml_module(unsafe_ml),
        client=compile_l3_module(unsafe_client),
        description="Fig. 3: linking types, stash duplicates a linear reference",
    )
    safe = InteropScenario(
        ml=compile_ml_module(safe_ml),
        client=compile_l3_module(safe_client),
        description="Fig. 3 (repaired): stash consumes the reference",
    )
    return unsafe, safe


# ---------------------------------------------------------------------------
# Fig. 9 — the counter library behind a GC'd interface
# ---------------------------------------------------------------------------


def counter_program(increment: int = 1) -> InteropScenario:
    """A Fig. 9 style program: a manually-managed counter driven from ML.

    The library side (L3) owns a manually-managed cell holding the counter
    state and exposes ``counter_new`` / ``counter_bump`` / ``counter_read`` /
    ``counter_free`` working on the linear reference.  The GC'd client (ML)
    hides the linear reference in a ``ref_to_lin`` cell so the rest of the ML
    code never reasons about linearity, and exposes ``client_init`` /
    ``client_tick`` / ``client_total`` as its plain, unrestricted interface.
    """

    lib = l3_module(
        "counterlib",
        functions=[
            L3Function("counter_new", "x", LInt(), LMLRef(LBang(LInt())),
                       LJoin(LNew(LBangI(LVar("x"))))),
            L3Function(
                "counter_bump", "r", LMLRef(LBang(LInt())), LMLRef(LBang(LInt())),
                LLet("o", LSplit(LVar("r")),
                     LLetPair("old", "o2", LSwap(LVar("o"), LBangI(LIntLit(0))),
                              LLetPair("old2", "o3",
                                       LSwap(LVar("o2"), LBangI(LBinOp("+", LVar("old"), LIntLit(increment)))),
                                       LLet("ignore", LVar("old2"), LJoin(LVar("o3"))))))),
            L3Function(
                "counter_read", "r", LMLRef(LBang(LInt())), LInt(),
                LLet("o", LSplit(LVar("r")),
                     LLetBang("v", LFree(LVar("o")), LVar("v")))),
        ],
    )

    lin_counter = LinType(TRef(TInt()))
    client = ml_module(
        "client",
        imports=[
            MLImport("counterlib", "counter_new", TInt(), lin_counter),
            MLImport("counterlib", "counter_bump", lin_counter, lin_counter),
            MLImport("counterlib", "counter_read", lin_counter, TInt()),
        ],
        globals=[MLGlobal("slot", RefToLin(TRef(TInt())), MkRefToLin(TRef(TInt())))],
        functions=[
            MLFunction("client_init", "x", TInt(), TUnit(),
                       Assign(Var("slot"), App(Var("counter_new"), Var("x")))),
            MLFunction("client_tick", "u", TUnit(), TUnit(),
                       Assign(Var("slot"), App(Var("counter_bump"), Deref(Var("slot"))))),
            MLFunction("client_total", "u", TUnit(), TInt(),
                       App(Var("counter_read"), Deref(Var("slot")))),
        ],
    )
    return InteropScenario(
        ml=compile_ml_module(client),
        client=compile_l3_module(lib),
        description="Fig. 9: manually-managed counter behind a GC'd interface",
    )
