"""Running multi-module RichWasm programs.

:class:`Program` is the convenience layer the examples and benchmarks use:
it takes separately-compiled RichWasm modules (e.g. one compiled from ML and
one from L3), performs the cross-module FFI check, and offers two execution
paths that share one heap:

* the **RichWasm interpreter** path — each module becomes an instance on one
  shared two-memory store, with imports wired by export name;
* the **Wasm** path — the modules are statically linked into a single
  RichWasm module, lowered to one Wasm module with one linear memory, and run
  on the Wasm interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.semantics import Interpreter
from ..core.syntax import Module, Value
from ..core.typing.errors import LinkError
from ..wasm import WasmInterpreter
from .._compat import UNSET as _UNSET, legacy_config as _legacy_config
from .link import check_link, link_modules


@dataclass
class Program:
    """A multi-module program with cross-language linking."""

    modules: dict[str, Module]
    check_on_init: bool = True

    def __post_init__(self) -> None:
        if self.check_on_init:
            check_link(self.modules)

    # -- dependency order -------------------------------------------------------

    def instantiation_order(self) -> list[str]:
        """Modules ordered so that exporters come before their importers."""

        order: list[str] = []
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in order:
                return
            if name in visiting:
                raise LinkError(f"import cycle involving module {name!r}")
            visiting.add(name)
            for _, decl in self.modules[name].function_imports():
                if decl.import_ref.module in self.modules:
                    visit(decl.import_ref.module)
            visiting.discard(name)
            order.append(name)

        for name in self.modules:
            visit(name)
        return order

    # -- RichWasm interpreter path ------------------------------------------------

    def instantiate(self, interpreter: Optional[Interpreter] = None) -> "ProgramInstance":
        interpreter = interpreter if interpreter is not None else Interpreter()
        instances: dict[str, int] = {}
        handles: dict[str, object] = {}
        for name in self.instantiation_order():
            module = self.modules[name]
            imports = {other: interpreter.store.instance(instances[other]) for other in instances}
            index = interpreter.instantiate(module, imports)
            instances[name] = index
            handles[name] = interpreter.store.instance(index)
        instance = ProgramInstance(self, interpreter, instances)
        instance.run_initializers()
        return instance

    # -- Wasm path -----------------------------------------------------------------

    def link(self, *, name: str = "linked") -> Module:
        """Statically link all modules into one RichWasm module."""

        return link_modules(self.modules, name=name)

    def lower(self, *, config=None, cache=None, memory_pages=_UNSET, optimize=_UNSET, engine=_UNSET):
        """Link and lower the whole program to a single Wasm module.

        ``config`` (a :class:`repro.api.CompileConfig`) is the entry surface:
        its ``opt_level`` runs a named :mod:`repro.opt` pipeline over the
        *linked* module, so cross-language programs get whole-program
        optimization (the linker already resolved imports to direct calls).
        ``cache`` pins an explicit :class:`repro.runtime.ModuleCache`
        (otherwise the config's cache policy decides), memoizing the link and
        lower/optimize stages by content so repeated lowerings of the same
        program compile once.  The ``memory_pages``/``optimize``/``engine``
        keywords are the deprecated pre-:mod:`repro.api` surface (one
        :class:`DeprecationWarning` per call).
        """

        config = _legacy_config(
            "Program.lower", config,
            {"memory_pages": memory_pages, "optimize": optimize, "engine": engine},
        )
        from ..api import lower as api_lower

        return api_lower(self, config, cache=cache)

    def compile(self, *, config=None, cache=None, memory_pages=_UNSET, optimize=_UNSET, engine=_UNSET):
        """Compile to the shareable :class:`repro.runtime.CompiledProgram`
        (the input to instance pools and batch runners) via
        :func:`repro.api.compile`.

        Without an explicit ``cache`` the config's cache policy decides
        (historical default: a private per-call cache).  ``config.engine``
        accepts a name or an :class:`~repro.wasm.engine.ExecutionEngine`
        instance (reduced to its registry name — compiled artifacts record
        preferences, not live engines).  The ``memory_pages``/``optimize``/
        ``engine`` keywords are the deprecated pre-:mod:`repro.api` surface.
        """

        config = _legacy_config(
            "Program.compile", config,
            {"memory_pages": memory_pages, "optimize": optimize, "engine": engine},
            cache_policy="private",
        )
        from ..api import compile as api_compile

        return api_compile(self, config, cache=cache)

    def instantiate_wasm(
        self, *, config=None, cache=None, memory_pages=_UNSET, optimize=_UNSET, engine=_UNSET
    ) -> "WasmProgramInstance":
        """Lower and run the whole program on a Wasm execution engine.

        ``config.engine`` selects the engine (``"flat"``/``"tree"``); the
        default is the flat VM.  With a cache (explicit ``cache=`` or the
        config's policy) the pipeline stages are memoized — already
        validated on first compile — so only instantiation is paid per call.
        The deprecated ``engine=`` keyword additionally accepts a live
        :class:`~repro.wasm.engine.ExecutionEngine` instance, which then
        executes this instance.
        """

        from ..wasm.engine import ExecutionEngine

        engine_instance = engine if isinstance(engine, ExecutionEngine) else None
        config = _legacy_config(
            "Program.instantiate_wasm", config,
            {"memory_pages": memory_pages, "optimize": optimize, "engine": engine},
        )
        from ..api import compile as api_compile

        compiled = api_compile(self, config, cache=cache)
        interpreter = WasmInterpreter(
            max_steps=config.max_steps,
            engine=engine_instance if engine_instance is not None else compiled.engine,
        )
        instance = interpreter.instantiate(compiled.wasm)
        program = WasmProgramInstance(self, interpreter, instance, compiled.lowered)
        program.run_initializers()
        return program


@dataclass
class ProgramInstance:
    """A running multi-module program on the RichWasm interpreter."""

    program: Program
    interpreter: Interpreter
    instances: dict[str, int]

    def run_initializers(self) -> None:
        for name, index in self.instances.items():
            exports = self.program.modules[name].exported_functions()
            if "_init" in exports:
                self.interpreter.invoke_export(index, "_init")

    def invoke(self, module: str, export: str, args: Sequence[Value] = ()):
        """Invoke ``module.export`` and return its result values."""

        return self.interpreter.invoke_export(self.instances[module], export, list(args)).values

    def store_stats(self) -> dict[str, int]:
        return self.interpreter.store.stats()


@dataclass
class WasmProgramInstance:
    """A running program lowered to a single Wasm module (one shared memory)."""

    program: Program
    interpreter: WasmInterpreter
    instance: object
    lowered: object

    def run_initializers(self) -> None:
        for export in self.instance.exports:  # type: ignore[attr-defined]
            if export.endswith("._init"):
                self.interpreter.invoke(self.instance, export)

    def invoke(self, module: str, export: str, args: Sequence = ()):
        """Invoke ``module.export`` on the linked Wasm module.

        Linking namespaces every export as ``module.export``; a bare
        ``export`` name is accepted only when the qualified name is absent
        and the bare one exists (pre-linked inputs).  Neither existing — or
        both existing and naming *different* functions — raises
        :class:`LinkError` naming the candidates instead of silently picking
        one.
        """

        exports = self.instance.exports  # type: ignore[attr-defined]
        qualified = f"{module}.{export}"
        candidates = [name for name in (qualified, export) if name in exports]
        if not candidates:
            raise LinkError(
                f"no export {qualified!r} (nor bare {export!r}) in the linked program; "
                f"available: {', '.join(sorted(exports))}"
            )
        if len(candidates) == 2 and exports[qualified] != exports[export]:
            raise LinkError(
                f"ambiguous export: both {qualified!r} and {export!r} exist "
                "and name different functions; invoke the qualified name explicitly "
                "via interpreter.invoke"
            )
        return self.interpreter.invoke(self.instance, candidates[0], list(args))
