"""Running multi-module RichWasm programs.

:class:`Program` is the convenience layer the examples and benchmarks use:
it takes separately-compiled RichWasm modules (e.g. one compiled from ML and
one from L3), performs the cross-module FFI check, and offers two execution
paths that share one heap:

* the **RichWasm interpreter** path — each module becomes an instance on one
  shared two-memory store, with imports wired by export name;
* the **Wasm** path — the modules are statically linked into a single
  RichWasm module, lowered to one Wasm module with one linear memory, and run
  on the Wasm interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.semantics import Interpreter
from ..core.syntax import Module, Value
from ..core.typing.errors import LinkError
from ..lower import lower_module
from ..wasm import WasmInterpreter, validate_module
from .link import check_link, link_modules


@dataclass
class Program:
    """A multi-module program with cross-language linking."""

    modules: dict[str, Module]
    check_on_init: bool = True

    def __post_init__(self) -> None:
        if self.check_on_init:
            check_link(self.modules)

    # -- dependency order -------------------------------------------------------

    def instantiation_order(self) -> list[str]:
        """Modules ordered so that exporters come before their importers."""

        order: list[str] = []
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in order:
                return
            if name in visiting:
                raise LinkError(f"import cycle involving module {name!r}")
            visiting.add(name)
            for _, decl in self.modules[name].function_imports():
                if decl.import_ref.module in self.modules:
                    visit(decl.import_ref.module)
            visiting.discard(name)
            order.append(name)

        for name in self.modules:
            visit(name)
        return order

    # -- RichWasm interpreter path ------------------------------------------------

    def instantiate(self, interpreter: Optional[Interpreter] = None) -> "ProgramInstance":
        interpreter = interpreter if interpreter is not None else Interpreter()
        instances: dict[str, int] = {}
        handles: dict[str, object] = {}
        for name in self.instantiation_order():
            module = self.modules[name]
            imports = {other: interpreter.store.instance(instances[other]) for other in instances}
            index = interpreter.instantiate(module, imports)
            instances[name] = index
            handles[name] = interpreter.store.instance(index)
        instance = ProgramInstance(self, interpreter, instances)
        instance.run_initializers()
        return instance

    # -- Wasm path -----------------------------------------------------------------

    def link(self, *, name: str = "linked") -> Module:
        """Statically link all modules into one RichWasm module."""

        return link_modules(self.modules, name=name)

    def lower(self, *, memory_pages: int = 4, optimize: bool = False, engine=None, cache=None):
        """Link and lower the whole program to a single Wasm module.

        ``optimize=True`` runs the :mod:`repro.opt` pass pipeline over the
        linked module, so cross-language programs get whole-program
        optimization (the linker already resolved imports to direct calls).
        ``engine`` records the execution-engine preference on the result.
        ``cache`` (a :class:`repro.runtime.ModuleCache`) memoizes the link
        and lower/optimize stages by content, so repeated lowerings of the
        same program compile once.
        """

        if cache is not None:
            linked = cache.link(self.modules)
            return cache.lower(linked, memory_pages=memory_pages, optimize=optimize, engine=engine)
        return lower_module(self.link(), memory_pages=memory_pages, optimize=optimize, engine=engine)

    def compile(self, *, memory_pages: int = 4, optimize: bool = False, engine=None, cache=None):
        """Compile through a :class:`repro.runtime.ModuleCache` and return the
        shareable :class:`repro.runtime.CompiledProgram` (the input to
        instance pools and batch runners); a fresh cache is used if none is
        given.  ``engine`` accepts a name or an
        :class:`~repro.wasm.engine.ExecutionEngine` instance (reduced to its
        registry name — compiled artifacts record preferences, not live
        engines)."""

        from ..wasm.engine import ExecutionEngine

        if isinstance(engine, ExecutionEngine):
            engine = engine.name
        if cache is None:
            from ..runtime import ModuleCache

            cache = ModuleCache()
        return cache.compile_program(
            self.modules, memory_pages=memory_pages, optimize=optimize, engine=engine,
        )

    def instantiate_wasm(
        self, *, memory_pages: int = 4, optimize: bool = False, engine=None, cache=None
    ) -> "WasmProgramInstance":
        """Lower and run the whole program on a Wasm execution engine.

        ``engine`` selects the engine (``"flat"``/``"tree"`` or an
        :class:`~repro.wasm.engine.ExecutionEngine`); the default is the
        flat VM.  With ``cache`` the pipeline stages are memoized (already
        validated on first compile), so only instantiation is paid per call.
        """

        lowered = self.lower(
            memory_pages=memory_pages, optimize=optimize,
            engine=engine if isinstance(engine, str) else None, cache=cache,
        )
        if cache is None:
            validate_module(lowered.wasm)
        interpreter = WasmInterpreter(engine=engine)
        instance = interpreter.instantiate(lowered.wasm)
        program = WasmProgramInstance(self, interpreter, instance, lowered)
        program.run_initializers()
        return program


@dataclass
class ProgramInstance:
    """A running multi-module program on the RichWasm interpreter."""

    program: Program
    interpreter: Interpreter
    instances: dict[str, int]

    def run_initializers(self) -> None:
        for name, index in self.instances.items():
            exports = self.program.modules[name].exported_functions()
            if "_init" in exports:
                self.interpreter.invoke_export(index, "_init")

    def invoke(self, module: str, export: str, args: Sequence[Value] = ()):
        """Invoke ``module.export`` and return its result values."""

        return self.interpreter.invoke_export(self.instances[module], export, list(args)).values

    def store_stats(self) -> dict[str, int]:
        return self.interpreter.store.stats()


@dataclass
class WasmProgramInstance:
    """A running program lowered to a single Wasm module (one shared memory)."""

    program: Program
    interpreter: WasmInterpreter
    instance: object
    lowered: object

    def run_initializers(self) -> None:
        for export in self.instance.exports:  # type: ignore[attr-defined]
            if export.endswith("._init"):
                self.interpreter.invoke(self.instance, export)

    def invoke(self, module: str, export: str, args: Sequence = ()):
        name = f"{module}.{export}"
        if name not in self.instance.exports:  # type: ignore[attr-defined]
            name = export
        return self.interpreter.invoke(self.instance, name, list(args))
