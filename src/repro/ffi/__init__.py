"""Multi-module linking and the ML/L3 FFI (paper §2.2, §5)."""

from .link import LinkResult, check_link, link_modules
from .program import Program, ProgramInstance, WasmProgramInstance
from .scenarios import InteropScenario, counter_program, fig1_unsafe_program, fig3_programs

__all__ = [name for name in dir() if not name.startswith("_")]
