"""Multi-module linking and the ML/L3 FFI (paper §2.2, §5).

Source modules are compiled *separately* to RichWasm; this module provides
the cross-module checks and the linker:

* :func:`check_link` — resolve every import against the exporting module and
  require the RichWasm function types to match exactly, then type-check every
  module.  This is where the unsafe interop of Fig. 1 is rejected: ML's
  ``stash`` exports an unrestricted-reference type while the manually-managed
  client imports it at a linear-reference type, so the declared types differ.
  When the declared types *do* match (the linking-types version of Fig. 3),
  any remaining violation — such as ``stash`` duplicating the linear
  reference — fails the per-module RichWasm type check instead.
* :func:`link_modules` — statically link several RichWasm modules into one,
  rewriting function, table and global indices, so the result can be lowered
  to a single Wasm module with one shared memory (fine-grained shared-memory
  interop, not shared-nothing copying).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..core.syntax import (
    Block,
    Call,
    CodeRefI,
    ExistUnpack,
    Function,
    FunctionDecl,
    GetGlobal,
    Global,
    GlobalDecl,
    If,
    ImportedFunction,
    ImportedGlobal,
    Instr,
    Loop,
    MemUnpack,
    Module,
    SetGlobal,
    Table,
    VariantCase,
)
from ..core.typing import check_module, funtypes_equal
from ..core.typing.errors import LinkError, RichWasmTypeError


@dataclass
class LinkResult:
    """The outcome of cross-module checking."""

    modules: dict[str, Module]
    resolved_imports: list[tuple[str, str, str]] = field(default_factory=list)


def _find_export(modules: dict[str, Module], module_name: str, export_name: str):
    if module_name not in modules:
        raise LinkError(f"import from unknown module {module_name!r}")
    exporter = modules[module_name]
    exports = exporter.exported_functions()
    if export_name not in exports:
        raise LinkError(f"module {module_name!r} does not export {export_name!r}")
    return exporter.functions[exports[export_name]]


def check_link(modules: dict[str, Module], *, checker=check_module) -> LinkResult:
    """Check that every import matches its export and every module type-checks.

    Raises :class:`LinkError` for unresolved or mismatched imports and a
    :class:`RichWasmTypeError` subclass for modules that are internally
    ill-typed — both constitute the "potentially problematic interaction ...
    will fail to type check" guarantee of the paper.

    ``checker`` is the per-module type check — by default the plain
    :func:`repro.core.typing.check_module`; :class:`repro.runtime.ModuleCache`
    passes its memoized ``typecheck`` stage so shared library modules are
    checked once per cache rather than once per link.
    """

    result = LinkResult(modules=dict(modules))
    for name, module in modules.items():
        for index, decl in module.function_imports():
            exported = _find_export(modules, decl.import_ref.module, decl.import_ref.name)
            if not funtypes_equal(exported.funtype, decl.funtype):
                raise LinkError(
                    f"import {decl.import_ref.module}.{decl.import_ref.name} in module {name!r}"
                    f" is declared at type {decl.funtype} but the exporter provides {exported.funtype}"
                )
            result.resolved_imports.append((name, decl.import_ref.module, decl.import_ref.name))
    for name, module in modules.items():
        checker(module)
    return result


# ---------------------------------------------------------------------------
# Static linking into a single module
# ---------------------------------------------------------------------------


@dataclass
class _Remap:
    """Index remapping for one module being merged."""

    func: dict[int, int]
    global_: dict[int, int]
    table: dict[int, int]


def _remap_instr(instr: Instr, remap: _Remap) -> Instr:
    """Rewrite function/global/table indices inside one instruction."""

    if isinstance(instr, Call):
        return replace(instr, func_index=remap.func[instr.func_index])
    if isinstance(instr, CodeRefI):
        return replace(instr, table_index=remap.table[instr.table_index])
    if isinstance(instr, GetGlobal):
        return replace(instr, index=remap.global_[instr.index])
    if isinstance(instr, SetGlobal):
        return replace(instr, index=remap.global_[instr.index])
    if isinstance(instr, Block):
        return replace(instr, body=_remap_body(instr.body, remap))
    if isinstance(instr, Loop):
        return replace(instr, body=_remap_body(instr.body, remap))
    if isinstance(instr, If):
        return replace(
            instr,
            then_body=_remap_body(instr.then_body, remap),
            else_body=_remap_body(instr.else_body, remap),
        )
    if isinstance(instr, (MemUnpack, ExistUnpack)):
        return replace(instr, body=_remap_body(instr.body, remap))
    if isinstance(instr, VariantCase):
        return replace(instr, branches=tuple(_remap_body(b, remap) for b in instr.branches))
    return instr


def _remap_body(body: Sequence[Instr], remap: _Remap) -> tuple[Instr, ...]:
    return tuple(_remap_instr(instr, remap) for instr in body)


def link_modules(modules: dict[str, Module], *, name: str = "linked", check: bool = True,
                 checker=check_module) -> Module:
    """Statically link modules into one (imports resolved to direct calls).

    The resulting module exports every export of every input module, holds
    the concatenation of their globals and tables, and contains no imports —
    it can be lowered to a single Wasm module sharing one memory.
    ``check=False`` skips :func:`check_link` (for callers whose modules were
    already checked, e.g. a :class:`repro.ffi.Program`).  ``checker`` is the
    module type check used for both the inputs and the linked result (see
    :func:`check_link`).
    """

    if check:
        check_link(modules, checker=checker)

    order = list(modules.keys())
    # First pass: assign new indices to every *defined* function and global.
    func_base: dict[str, dict[int, int]] = {}
    global_base: dict[str, dict[int, int]] = {}
    table_base: dict[str, dict[int, int]] = {}
    new_functions: list[FunctionDecl] = []
    new_globals: list[GlobalDecl] = []
    new_table: list[int] = []

    for module_name in order:
        module = modules[module_name]
        func_map: dict[int, int] = {}
        for index, decl in enumerate(module.functions):
            if isinstance(decl, ImportedFunction):
                continue
            func_map[index] = len(new_functions)
            new_functions.append(decl)  # body remapped in the second pass
        func_base[module_name] = func_map

        global_map: dict[int, int] = {}
        for index, decl in enumerate(module.globals):
            if isinstance(decl, ImportedGlobal):
                continue
            global_map[index] = len(new_globals)
            new_globals.append(decl)
        global_base[module_name] = global_map

    # Resolve imported function indices to the exporter's new indices.
    for module_name in order:
        module = modules[module_name]
        func_map = func_base[module_name]
        for index, decl in enumerate(module.functions):
            if not isinstance(decl, ImportedFunction):
                continue
            exporter = modules[decl.import_ref.module]
            export_index = exporter.exported_functions()[decl.import_ref.name]
            func_map[index] = func_base[decl.import_ref.module][export_index]

    # Tables: concatenate, remapping entries through the function map.
    for module_name in order:
        module = modules[module_name]
        table_map: dict[int, int] = {}
        for position, entry in enumerate(module.table.entries):
            table_map[position] = len(new_table)
            new_table.append(func_base[module_name][entry])
        table_base[module_name] = table_map

    # Which export names are unambiguous across the whole program?
    export_owners: dict[str, list[str]] = {}
    for module_name in order:
        for export in modules[module_name].exported_functions():
            export_owners.setdefault(export, []).append(module_name)

    # Second pass: rewrite the bodies of the defined functions and globals and
    # namespace the exports (``module.export``), keeping the bare name when it
    # is unique across the program.
    rewritten: list[FunctionDecl] = list(new_functions)
    for module_name in order:
        module = modules[module_name]
        remap = _Remap(func_base[module_name], global_base[module_name], table_base[module_name])
        for index, decl in enumerate(module.functions):
            if isinstance(decl, ImportedFunction):
                continue
            new_index = func_base[module_name][index]
            exports = []
            for export in decl.exports:
                exports.append(f"{module_name}.{export}")
                if len(export_owners.get(export, [])) == 1:
                    exports.append(export)
            rewritten[new_index] = replace(
                decl, body=_remap_body(decl.body, remap), exports=tuple(exports)
            )
        for index, decl in enumerate(module.globals):
            if isinstance(decl, ImportedGlobal):
                continue
            new_index = global_base[module_name][index]
            new_globals[new_index] = replace(decl, init=_remap_body(decl.init, remap))

    linked = Module(
        functions=tuple(rewritten),
        globals=tuple(new_globals),
        table=Table(entries=tuple(new_table)),
        name=name,
    )
    checker(linked)
    return linked
