"""Type lowering: from RichWasm types to Wasm value-type layouts (paper §6).

Every RichWasm type is lowered to a (possibly empty) sequence of Wasm numeric
types:

* types with no runtime information — ``unit``, capabilities, ownership
  tokens — are erased (empty layout);
* numeric types map to the corresponding Wasm type;
* ``ref`` and ``ptr`` lower to a single ``i32`` pointer into the one flat
  Wasm memory that represents both RichWasm memories;
* ``coderef`` lowers to a single ``i32`` index into the function table;
* tuples are flattened;
* pretype variables are **boxed**: they lower to an ``i32`` pointer to a
  heap cell holding the value (the paper boxes variables whose size bound is
  not concrete; this reproduction boxes all of them — the ablation benchmark
  quantifies the difference);
* recursive and existential-location types lower to their body's layout.

The same module also computes the byte layout of heap types: field offsets
for structs, element strides for arrays, the tag/payload layout of variants
and the boxed-payload layout of existential packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.syntax.sizes import Size
from ..core.syntax.types import (
    ArrayHT,
    CapT,
    CodeRefT,
    ExHT,
    ExLocT,
    HeapType,
    NumT,
    NumType,
    OwnT,
    Pretype,
    ProdT,
    PtrT,
    RecT,
    RefT,
    StructHT,
    Type,
    UnitT,
    VarT,
    VariantHT,
)
from ..core.typing.errors import LoweringError
from ..wasm.ast import ValType

#: Number of bytes used for a variant tag / an array length header.
TAG_BYTES = 4
LENGTH_BYTES = 4
POINTER_BYTES = 4


_NUMTYPE_TO_VALTYPE = {
    NumType.I32: ValType.I32,
    NumType.UI32: ValType.I32,
    NumType.I64: ValType.I64,
    NumType.UI64: ValType.I64,
    NumType.F32: ValType.F32,
    NumType.F64: ValType.F64,
}


def lower_numtype(numtype: NumType) -> ValType:
    """The Wasm value type corresponding to a RichWasm numeric type."""

    return _NUMTYPE_TO_VALTYPE[numtype]


def lower_pretype(pretype: Pretype) -> list[ValType]:
    """The Wasm layout of a RichWasm pretype.

    Layouts depend only on the structure, so they are computed once per
    interned node (the compiler asks for the same layouts at every
    instruction) and re-issued as fresh lists (callers may mutate them).
    """

    cached = pretype.__dict__.get("_hc_layout")
    if cached is not None:
        return list(cached)
    layout = _lower_pretype(pretype)
    if "_hc" in pretype.__dict__:
        pretype.__dict__["_hc_layout"] = tuple(layout)
    return layout


def _lower_pretype(pretype: Pretype) -> list[ValType]:
    if isinstance(pretype, (UnitT, CapT, OwnT)):
        return []
    if isinstance(pretype, NumT):
        return [lower_numtype(pretype.numtype)]
    if isinstance(pretype, (RefT, PtrT)):
        return [ValType.I32]
    if isinstance(pretype, CodeRefT):
        return [ValType.I32]
    if isinstance(pretype, ProdT):
        layout: list[ValType] = []
        for component in pretype.components:
            layout.extend(lower_type(component))
        return layout
    if isinstance(pretype, VarT):
        # Boxed representation: a pointer to the heap cell holding the value.
        return [ValType.I32]
    if isinstance(pretype, RecT):
        return lower_type(pretype.body)
    if isinstance(pretype, ExLocT):
        return lower_type(pretype.body)
    raise LoweringError(f"cannot lower pretype {pretype!r}")


def lower_type(ty: Type) -> list[ValType]:
    """The Wasm layout of a RichWasm type."""

    return lower_pretype(ty.pretype)


def lower_types(types: Sequence[Type]) -> list[ValType]:
    """The concatenated layout of a sequence of types (stack order)."""

    layout: list[ValType] = []
    for ty in types:
        layout.extend(lower_type(ty))
    return layout


def valtype_bytes(valtype: ValType) -> int:
    return valtype.byte_width


def layout_bytes(layout: Sequence[ValType]) -> int:
    """The number of bytes a layout occupies when stored in memory."""

    return sum(valtype_bytes(v) for v in layout)


def type_bytes(ty: Type) -> int:
    """The number of bytes a value of ``ty`` occupies in memory."""

    return layout_bytes(lower_type(ty))


def size_to_bytes(size: Size, size_env: dict[int, int] | None = None) -> int:
    """Convert a (closed) RichWasm size in bits to a slot size in bytes.

    Slot sizes in RichWasm are measured in bits; memory slots are rounded up
    to whole bytes.
    """

    from ..core.syntax.sizes import eval_size

    bits = eval_size(size, size_env)
    return (bits + 7) // 8


# ---------------------------------------------------------------------------
# Heap layouts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSlot:
    """One struct field: its byte offset and slot size within the struct."""

    offset: int
    slot_bytes: int
    type: Type


@dataclass(frozen=True)
class StructLayout:
    """Byte layout of a struct heap type."""

    fields: tuple[FieldSlot, ...]
    total_bytes: int


@dataclass(frozen=True)
class ArrayLayout:
    """Byte layout of an array heap type: a length header plus elements."""

    element_bytes: int
    element_type: Type
    header_bytes: int = LENGTH_BYTES


@dataclass(frozen=True)
class VariantLayout:
    """Byte layout of a variant heap type: a tag followed by the payload."""

    cases: tuple[Type, ...]
    payload_bytes: int
    tag_bytes: int = TAG_BYTES

    @property
    def total_bytes(self) -> int:
        return self.tag_bytes + self.payload_bytes


@dataclass(frozen=True)
class PackageLayout:
    """Byte layout of an existential package: the payload stored at the
    abstract layout of the existential body (pretype variables boxed)."""

    payload_bytes: int = POINTER_BYTES


def struct_layout(heaptype: StructHT, size_env: dict[int, int] | None = None) -> StructLayout:
    """Compute field offsets for a struct heap type.

    Fields occupy their *declared* slot size (not the current field type's
    size) so strong updates never move later fields.
    """

    fields: list[FieldSlot] = []
    offset = 0
    for field_type, field_size in heaptype.fields:
        slot = size_to_bytes(field_size, size_env)
        fields.append(FieldSlot(offset, slot, field_type))
        offset += slot
    return StructLayout(tuple(fields), offset)


def array_layout(heaptype: ArrayHT) -> ArrayLayout:
    element_bytes = max(type_bytes(heaptype.element), 1)
    return ArrayLayout(element_bytes=element_bytes, element_type=heaptype.element)


def variant_layout(heaptype: VariantHT) -> VariantLayout:
    payload = max((type_bytes(case) for case in heaptype.cases), default=0)
    return VariantLayout(tuple(heaptype.cases), payload)


def package_layout(heaptype: ExHT) -> PackageLayout:
    return PackageLayout(payload_bytes=max(layout_bytes(lower_type(heaptype.body)), POINTER_BYTES))


def heaptype_bytes(heaptype: HeapType, size_env: dict[int, int] | None = None) -> int:
    """The allocation size (in bytes) of a heap type (arrays excluded)."""

    if isinstance(heaptype, StructHT):
        return struct_layout(heaptype, size_env).total_bytes
    if isinstance(heaptype, VariantHT):
        return variant_layout(heaptype).total_bytes
    if isinstance(heaptype, ExHT):
        return package_layout(heaptype).payload_bytes
    if isinstance(heaptype, ArrayHT):
        raise LoweringError("array allocation size depends on the runtime length")
    raise LoweringError(f"cannot size heap type {heaptype!r}")
