"""The Wasm-level runtime emitted alongside every lowered module (paper §6).

The paper lowers both RichWasm memories into one flat Wasm memory managed by
"a simple free list allocator".  This module builds that allocator as a pair
of Wasm functions:

* ``$rw_malloc (i32) -> (i32)`` — first-fit free-list allocation with an
  8-byte ``[size][next]`` header per block; falls back to bump allocation
  (growing the memory when needed);
* ``$rw_free (i32) -> ()`` — pushes the block onto the free list.

Two mutable globals hold the free-list head and the bump pointer.  The
lowering pass reserves function indices for the runtime and addresses the
allocator through :class:`RuntimeLayout`.

The paper notes that, because current Wasm lacks GC with finalizers, a
RichWasm runtime must bring its own collector.  This reproduction's lowered
runtime does *not* collect unrestricted garbage (allocations into the
"unrestricted half" are simply never freed); the RichWasm-level interpreter
does collect, and EXPERIMENTS.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wasm.ast import (
    Binop,
    Const,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    Relop,
    StoreI,
    Testop,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WBlock,
    WBr,
    WBrIf,
    WIf,
    WLoop,
    WReturn,
    WUnreachable,
)

#: Start of the heap: the first 16 bytes of memory are reserved (null pointer
#: protection plus scratch space), so a returned pointer is never 0.
HEAP_BASE = 16

#: Size of the per-block header: 4 bytes of block size + 4 bytes of next link.
BLOCK_HEADER_BYTES = 8


@dataclass(frozen=True)
class RuntimeLayout:
    """Indices of the runtime pieces within the lowered module."""

    free_list_global: int
    bump_global: int
    malloc_index: int
    free_index: int


def build_runtime_globals() -> list[WasmGlobal]:
    """The two allocator globals: free-list head (0 = empty) and bump pointer."""

    return [
        WasmGlobal(ValType.I32, True, (Const(ValType.I32, 0),), name="rw_free_list"),
        WasmGlobal(ValType.I32, True, (Const(ValType.I32, HEAP_BASE),), name="rw_bump"),
    ]


def build_malloc(layout: RuntimeLayout) -> WasmFunction:
    """``$rw_malloc``: first-fit free-list allocation, bump fallback.

    Locals: 0 = requested size (param), 1 = current block, 2 = previous block,
    3 = result pointer.
    """

    free_list = layout.free_list_global
    bump = layout.bump_global

    body = (
        # Round the request up to a multiple of 8 bytes (and at least 8).
        LocalGet(0), Const(ValType.I32, 7), Binop(ValType.I32, "add"),
        Const(ValType.I32, -8), Binop(ValType.I32, "and"),
        LocalSet(0),
        LocalGet(0), Testop(ValType.I32),
        WIf(WasmFuncType((), ()), (Const(ValType.I32, 8), LocalSet(0)), ()),
        # First-fit scan of the free list.
        GlobalGet(free_list), LocalSet(1),
        Const(ValType.I32, 0), LocalSet(2),
        WBlock(WasmFuncType((), ()), (
            WLoop(WasmFuncType((), ()), (
                # if current == 0: give up on the free list
                LocalGet(1), Testop(ValType.I32), WBrIf(1),
                # if block_size >= request: unlink and return it
                LocalGet(1), Load(ValType.I32),  # size field
                LocalGet(0), Relop(ValType.I32, "ge_u"),
                WIf(WasmFuncType((), ()), (
                    # unlink: prev ? prev.next = cur.next : head = cur.next
                    LocalGet(2), Testop(ValType.I32),
                    WIf(WasmFuncType((), ()), (
                        # prev == 0 -> update the list head
                        LocalGet(1), Load(ValType.I32, offset=4), GlobalSet(free_list),
                    ), (
                        LocalGet(2), LocalGet(1), Load(ValType.I32, offset=4), StoreI(ValType.I32, offset=4),
                    )),
                    # return payload pointer (block + header)
                    LocalGet(1), Const(ValType.I32, BLOCK_HEADER_BYTES), Binop(ValType.I32, "add"),
                    WReturn(),
                ), ()),
                # advance: prev = cur; cur = cur.next
                LocalGet(1), LocalSet(2),
                LocalGet(1), Load(ValType.I32, offset=4), LocalSet(1),
                WBr(0),
            )),
        )),
        # Bump allocation: result = bump; bump += header + size.
        GlobalGet(bump), LocalSet(3),
        GlobalGet(bump),
        LocalGet(0), Const(ValType.I32, BLOCK_HEADER_BYTES), Binop(ValType.I32, "add"),
        Binop(ValType.I32, "add"),
        GlobalSet(bump),
        # Grow the memory if the bump pointer passed the end.
        WBlock(WasmFuncType((), ()), (
            WLoop(WasmFuncType((), ()), (
                GlobalGet(bump),
                MemorySize(), Const(ValType.I32, PAGE_SIZE), Binop(ValType.I32, "mul"),
                Relop(ValType.I32, "le_u"),
                WBrIf(1),
                Const(ValType.I32, 1), MemoryGrow(),
                Const(ValType.I32, -1), Relop(ValType.I32, "eq"),
                WIf(WasmFuncType((), ()), (WUnreachable(),), ()),
                WBr(0),
            )),
        )),
        # Write the size header and return the payload pointer.
        LocalGet(3), LocalGet(0), StoreI(ValType.I32),
        LocalGet(3), Const(ValType.I32, 0), StoreI(ValType.I32, offset=4),
        LocalGet(3), Const(ValType.I32, BLOCK_HEADER_BYTES), Binop(ValType.I32, "add"),
    )
    return WasmFunction(
        functype=WasmFuncType((ValType.I32,), (ValType.I32,)),
        locals=(ValType.I32, ValType.I32, ValType.I32),
        body=body,
        name="rw_malloc",
    )


def build_free(layout: RuntimeLayout) -> WasmFunction:
    """``$rw_free``: push the block (payload pointer - header) onto the free list."""

    free_list = layout.free_list_global
    body = (
        # block = ptr - header
        LocalGet(0), Const(ValType.I32, BLOCK_HEADER_BYTES), Binop(ValType.I32, "sub"),
        LocalSet(1),
        # block.next = head
        LocalGet(1), GlobalGet(free_list), StoreI(ValType.I32, offset=4),
        # head = block
        LocalGet(1), GlobalSet(free_list),
    )
    return WasmFunction(
        functype=WasmFuncType((ValType.I32,), ()),
        locals=(ValType.I32,),
        body=body,
        name="rw_free",
    )
