"""The RichWasm → WebAssembly compiler (paper §6).

Compilation is *type-directed*: the compiler re-runs the RichWasm type
checker with an observer attached and uses the recorded per-instruction
operand types to decide data layout.  The main translation decisions are:

* **Erasure** — capabilities, ownership tokens, qualifiers, ``mem.pack``,
  ``ref.split``/``join``/``demote``, ``cap.split``/``join``,
  ``rec.fold``/``unfold``, ``qualify`` and ``inst`` have no runtime content
  and compile to nothing.
* **Locals splitting** — every RichWasm local (which can hold values of many
  types over its lifetime, up to its declared slot size) is stored across a
  bank of ``i64`` Wasm locals, one per 32-bit component; ``get_local`` /
  ``set_local`` insert the appropriate conversions.  (The paper bit-packs
  components into exactly the declared size; using one 64-bit local per
  component changes only constant factors.)
* **One flat memory** — both RichWasm memories map into a single Wasm linear
  memory managed by the emitted free-list allocator
  (:mod:`repro.lower.runtime`).  Structs/arrays/variants/packages are laid
  out by :mod:`repro.lower.layout`.
* **Boxing** — pretype variables are represented uniformly as ``i32``
  pointers to heap cells.  Direct calls that instantiate a pretype
  quantifier insert the stack coercions (boxing of arguments, unboxing of
  results) the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.syntax import instructions as ri
from ..core.syntax.instructions import Instr
from ..core.syntax.modules import Function, ImportedFunction, Module
from ..core.syntax.qualifiers import UNR
from ..core.syntax.types import (
    ArrayHT,
    CodeRefT,
    ExHT,
    FunType,
    NumType,
    PretypeIndex,
    ProdT,
    StructHT,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    VariantHT,
    instantiate_funtype,
)
from ..core.typing import (
    InstructionChecker,
    LocalEnv,
    LocalSlot,
    ModuleEnv,
    empty_function_env,
    empty_store_typing,
    module_env_of,
)
from ..core.typing.errors import LoweringError
from ..core.typing.module_typing import function_env_of
from ..core.typing.sizing import size_of_type
from ..wasm.ast import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    Relop,
    StoreI,
    Testop,
    Unop,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmImportedFunction,
    WasmMemory,
    WasmModule,
    WasmTable,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WInstr,
    WLoop,
    WNop,
    WReturn,
    WSelect,
    WUnreachable,
)
from .layout import (
    LENGTH_BYTES,
    TAG_BYTES,
    array_layout,
    layout_bytes,
    lower_numtype,
    lower_type,
    lower_types,
    size_to_bytes,
    struct_layout,
    type_bytes,
    variant_layout,
)
from .runtime import RuntimeLayout, build_free, build_malloc, build_runtime_globals


@dataclass
class LoweringStats:
    """Statistics collected while lowering (used by the LOWER experiment)."""

    richwasm_instructions: int = 0
    wasm_instructions: int = 0
    erased_instructions: int = 0
    boxing_coercions: int = 0
    functions: int = 0


@dataclass
class LoweredModule:
    """The result of lowering: the Wasm module plus bookkeeping.

    When the module was lowered with ``optimize=True``, ``optimization``
    holds the :class:`repro.opt.OptimizationResult` (per-pass statistics and
    the instruction-count delta) and ``wasm`` is the optimized module.

    ``engine`` records the execution-engine preference threaded through the
    compile entry points (``None`` means the default, the flat VM); it is
    consumed by :meth:`instantiate`.  ``diagnostics`` carries the
    :class:`repro.api.Diagnostics` of the facade call that produced this
    artifact (``None`` off the facade paths).
    """

    wasm: WasmModule
    stats: LoweringStats
    runtime: RuntimeLayout
    global_map: dict[int, tuple[int, list[ValType]]]
    optimization: Optional[object] = None
    engine: Optional[str] = None
    diagnostics: Optional[object] = None

    def instantiate(self, *, host_imports=None, max_steps: Optional[int] = None, engine=None):
        """Instantiate the lowered Wasm on an execution engine.

        Returns ``(interpreter, instance)``.  ``engine`` overrides the
        preference recorded at compile time; both default to the flat VM.
        """

        from ..wasm.interpreter import WasmInterpreter

        interpreter = WasmInterpreter(max_steps=max_steps, engine=engine if engine is not None else self.engine)
        return interpreter, interpreter.instantiate(self.wasm, host_imports)

    def instance_pool(self, **kwargs):
        """An :class:`repro.runtime.InstancePool` recycling instances of this
        lowered module (keyword arguments forwarded to the pool; the
        compile-time engine preference is the default engine)."""

        from ..runtime.pool import InstancePool

        kwargs.setdefault("engine", self.engine)
        return InstancePool(self.wasm, **kwargs)


@dataclass
class _Annotation:
    instr: Instr
    stack: tuple[Type, ...]
    local_env: LocalEnv


class _AnnotationStream:
    """Per-instruction typing facts recorded by the checker, in traversal order."""

    def __init__(self) -> None:
        self.items: list[_Annotation] = []
        self.cursor = 0

    def record(self, instr: Instr, stack: tuple[Type, ...], local_env: LocalEnv) -> None:
        self.items.append(_Annotation(instr, stack, local_env))

    def next_for(self, instr: Instr) -> _Annotation:
        if self.cursor >= len(self.items):
            raise LoweringError("typing annotation stream exhausted (traversal mismatch)")
        annotation = self.items[self.cursor]
        self.cursor += 1
        if annotation.instr is not instr:
            raise LoweringError(
                f"typing annotation mismatch: expected {type(instr).__name__},"
                f" recorded {type(annotation.instr).__name__}"
            )
        return annotation


# Erased (type-level) instruction classes.
_ERASED = (
    ri.Qualify,
    ri.RecFold,
    ri.RecUnfold,
    ri.MemPack,
    ri.CapSplit,
    ri.CapJoin,
    ri.RefDemote,
    ri.RefSplit,
    ri.RefJoin,
    ri.Inst,
    ri.SeqGroup,
    ri.SeqUngroup,
)


class ModuleLowering:
    """Lower a type-checked RichWasm module to a Wasm module."""

    def __init__(self, module: Module, *, memory_pages: int = 4, unit_cache=None) -> None:
        self.module = module
        self.module_env: ModuleEnv = module_env_of(module)
        self.memory_pages = memory_pages
        # A repro.compilepipe.FunctionUnitCache: reuses per-function lowering
        # artifacts (the WasmFunction plus its statistics contributions)
        # across module versions sharing the same signature environment.
        self.unit_cache = unit_cache
        self.stats = LoweringStats()
        # Layout of the lowered module: user functions keep their indices,
        # the runtime (malloc/free) is appended after them.
        function_count = len(module.functions)
        self.runtime = RuntimeLayout(
            free_list_global=0,
            bump_global=1,
            malloc_index=function_count,
            free_index=function_count + 1,
        )
        # Globals: runtime globals first, then the flattened user globals.
        self.global_map: dict[int, tuple[int, list[ValType]]] = {}
        next_global = 2
        for index, global_decl in enumerate(module.globals):
            layout = lower_type(Type(global_decl.pretype, UNR))
            self.global_map[index] = (next_global, layout)
            next_global += len(layout)

    # -- public API ------------------------------------------------------------

    def lower(self) -> LoweredModule:
        functions: list[object] = []
        for index, decl in enumerate(self.module.functions):
            if isinstance(decl, ImportedFunction):
                functions.append(self._lower_import(decl))
                continue
            functions.append(self._lower_function_cached(decl))
            self.stats.functions += 1

        wasm_module = self._compose_module(functions)
        functions = list(wasm_module.functions)
        for function in functions:
            if isinstance(function, WasmFunction):
                from ..wasm.ast import function_instruction_count

                self.stats.wasm_instructions += function_instruction_count(function)
        self.stats.richwasm_instructions = self.module.instruction_count()
        return LoweredModule(wasm_module, self.stats, self.runtime, self.global_map)

    def signature_skeleton(self) -> WasmModule:
        """A module with the real lowering's declarations but stub bodies.

        Compile workers need a :class:`WasmModule` whose
        ``compilepipe.wasm_signature_digest`` matches the fully lowered
        module *before* any function body has been lowered: validate and
        translate unit keys hash only declaration shapes (function types,
        global types/mutability, memory presence, table entries), never
        bodies.  Stubbing every user function with an empty body therefore
        yields the same digest as :meth:`lower` while costing nothing.
        """

        functions: list[object] = []
        for decl in self.module.functions:
            if isinstance(decl, ImportedFunction):
                functions.append(self._lower_import(decl))
                continue
            functions.append(WasmFunction(self._lower_funtype(decl.funtype), (), (), name=decl.name))
        return self._compose_module(functions)

    # -- module composition ------------------------------------------------------

    def _lower_import(self, decl: ImportedFunction) -> WasmImportedFunction:
        functype = self._lower_funtype(decl.funtype)
        return WasmImportedFunction(functype, decl.import_ref.module, decl.import_ref.name, decl.exports)

    def _compose_module(self, functions: list[object]) -> WasmModule:
        """Append the runtime and assemble the final :class:`WasmModule`.

        Shared by :meth:`lower` and :meth:`signature_skeleton` so both
        produce byte-identical declaration sections.
        """

        functions = list(functions)
        functions.append(build_malloc(self.runtime))
        functions.append(build_free(self.runtime))

        globals_ = build_runtime_globals()
        for index, global_decl in enumerate(self.module.globals):
            _, layout = self.global_map[index]
            # Wasm global initializers must be constant expressions; a single
            # numeric constant lowers directly, anything richer starts as zero
            # and is expected to be set up by an exported init function (our
            # ML code generator follows this convention).
            init = getattr(global_decl, "init", ())
            constant = init[0].value if len(init) == 1 and isinstance(init[0], ri.NumConst) else None
            for position, valtype in enumerate(layout):
                if constant is not None and position == 0:
                    init_value: WInstr = Const(valtype, constant)
                else:
                    init_value = Const(valtype, 0 if valtype.is_integer else 0.0)
                globals_.append(WasmGlobal(valtype, True, (init_value,), name=global_decl.name))

        return WasmModule(
            functions=tuple(functions),
            globals=tuple(globals_),
            memory=WasmMemory(self.memory_pages),
            table=WasmTable(tuple(self.module.table.entries)),
            name=self.module.name,
        )

    # -- function types ----------------------------------------------------------

    def _lower_funtype(self, funtype: FunType) -> WasmFuncType:
        return WasmFuncType(
            tuple(lower_types(funtype.arrow.params)),
            tuple(lower_types(funtype.arrow.results)),
        )

    # -- functions ---------------------------------------------------------------

    def _lower_function(self, function: Function) -> WasmFunction:
        annotations = _AnnotationStream()
        checker = InstructionChecker(
            empty_store_typing([self.module_env]),
            self.module_env,
            observer=annotations.record,
        )
        fenv, params = function_env_of(function.funtype)
        slots = [LocalSlot(p, size_of_type(p, fenv.type_ctx)) for p in params]
        for size in function.locals_sizes:
            slots.append(LocalSlot(Type(UnitT(), UNR), size))
        local_env = LocalEnv(tuple(slots))
        checker.check_body(fenv, local_env, function.body, [], list(function.funtype.arrow.results))

        compiler = _FunctionCompiler(self, function, annotations)
        return compiler.compile()

    def _lower_function_cached(self, function: Function) -> WasmFunction:
        """:meth:`_lower_function` through the per-function unit cache.

        The cached artifact is the lowered function *plus* the erasure and
        boxing statistics deltas its compilation contributed, so a reuse
        replays the same :class:`LoweringStats` a fresh compile would
        produce.
        """

        units = self.unit_cache
        if units is None:
            return self._lower_function(function)
        key = units.lower_key(function, self.module)
        cached = units.get("lower", key)
        if cached is None:
            erased_before = self.stats.erased_instructions
            boxing_before = self.stats.boxing_coercions
            lowered = self._lower_function(function)
            cached = (
                lowered,
                self.stats.erased_instructions - erased_before,
                self.stats.boxing_coercions - boxing_before,
            )
            units.put("lower", key, cached)
            return lowered
        lowered, erased_delta, boxing_delta = cached
        self.stats.erased_instructions += erased_delta
        self.stats.boxing_coercions += boxing_delta
        return lowered


class _FunctionCompiler:
    """Compiles one RichWasm function body to a Wasm function."""

    def __init__(self, lowering: ModuleLowering, function: Function, annotations: _AnnotationStream):
        self.lowering = lowering
        self.function = function
        self.annotations = annotations
        self.module_env = lowering.module_env
        self.runtime = lowering.runtime
        self.stats = lowering.stats

        self.param_layout = [lower_type(p) for p in function.funtype.arrow.params]
        self.result_layout = lower_types(function.funtype.arrow.results)
        self.param_valtypes = [v for layout in self.param_layout for v in layout]

        # Local storage banks: one list of i64 Wasm-local indices per RichWasm local.
        self.local_banks: list[list[int]] = []
        self.extra_locals: list[ValType] = []
        next_local = len(self.param_valtypes)

        def new_local(valtype: ValType) -> int:
            nonlocal next_local
            self.extra_locals.append(valtype)
            index = next_local
            next_local += 1
            return index

        self._new_local = new_local

        for param in function.funtype.arrow.params:
            bank_size = max(1, len(lower_type(param)))
            self.local_banks.append([new_local(ValType.I64) for _ in range(bank_size)])
        for size in function.locals_sizes:
            bank_size = self._bank_size_for(size)
            self.local_banks.append([new_local(ValType.I64) for _ in range(bank_size)])

        self._scratch_pool: dict[ValType, list[int]] = {v: [] for v in ValType}
        self._named_scratch: dict[str, int] = {}

    # -- helpers -----------------------------------------------------------------

    def _bank_size_for(self, size) -> int:
        from ..core.syntax.sizes import size_free_vars, eval_size

        if not size_free_vars(size):
            bits = eval_size(size)
            return max(1, (bits + 31) // 32)
        return 4

    def _scratch(self, valtype: ValType, index: int) -> int:
        """A scratch local from the *spill* pool (indices disjoint per spill)."""

        pool = self._scratch_pool[valtype]
        while len(pool) <= index:
            pool.append(self._new_local(valtype))
        return pool[index]

    def _named(self, name: str, valtype: ValType = ValType.I32) -> int:
        """A dedicated scratch local (never shared with the spill pool)."""

        if name not in self._named_scratch:
            self._named_scratch[name] = self._new_local(valtype)
        return self._named_scratch[name]

    # -- value <-> i64 bank conversions ---------------------------------------------

    @staticmethod
    def _to_i64(valtype: ValType) -> list[WInstr]:
        """Instructions converting a value of ``valtype`` on the stack to i64."""

        if valtype is ValType.I64:
            return []
        if valtype is ValType.I32:
            return [Cvtop(ValType.I64, "extend_u", ValType.I32)]
        if valtype is ValType.F32:
            return [Cvtop(ValType.I32, "reinterpret", ValType.F32), Cvtop(ValType.I64, "extend_u", ValType.I32)]
        return [Cvtop(ValType.I64, "reinterpret", ValType.F64)]

    @staticmethod
    def _from_i64(valtype: ValType) -> list[WInstr]:
        """Instructions converting an i64 on the stack back to ``valtype``."""

        if valtype is ValType.I64:
            return []
        if valtype is ValType.I32:
            return [Cvtop(ValType.I32, "wrap", ValType.I64)]
        if valtype is ValType.F32:
            return [Cvtop(ValType.I32, "wrap", ValType.I64), Cvtop(ValType.F32, "reinterpret", ValType.I32)]
        return [Cvtop(ValType.F64, "reinterpret", ValType.I64)]

    # -- compile ------------------------------------------------------------------

    def compile(self) -> WasmFunction:
        body: list[WInstr] = []
        # Prologue: copy the natural Wasm parameters into the i64 banks.
        param_index = 0
        for rw_index, param in enumerate(self.function.funtype.arrow.params):
            layout = self.param_layout[rw_index]
            for component, valtype in enumerate(layout):
                body.append(LocalGet(param_index))
                body.extend(self._to_i64(valtype))
                body.append(LocalSet(self.local_banks[rw_index][component]))
                param_index += 1

        body.extend(self._compile_seq(self.function.body, label_map=[]))

        functype = WasmFuncType(tuple(self.param_valtypes), tuple(self.result_layout))
        return WasmFunction(
            functype=functype,
            locals=tuple(self.extra_locals),
            body=tuple(body),
            name=self.function.name,
            exports=self.function.exports,
        )

    # -- instruction sequences -------------------------------------------------------

    def _compile_seq(self, instrs: Sequence[Instr], label_map: list[int]) -> list[WInstr]:
        out: list[WInstr] = []
        for instr in instrs:
            out.extend(self._compile_instr(instr, label_map))
        return out

    def _compile_instr(self, instr: Instr, label_map: list[int]) -> list[WInstr]:
        annotation = self.annotations.next_for(instr)
        stack = annotation.stack
        local_env = annotation.local_env

        if isinstance(instr, _ERASED):
            self.stats.erased_instructions += 1
            return []

        # ---- inline values (e ::= v | ...) ----
        from ..core.syntax.values import NumV, UnitV, is_value

        if isinstance(instr, UnitV):
            return []
        if isinstance(instr, NumV):
            return [Const(lower_numtype(instr.numtype), instr.value)]
        if is_value(instr):
            raise LoweringError(f"cannot lower inline value {instr!r} (only unit and numeric literals)")

        # ---- numerics ----
        if isinstance(instr, ri.NumConst):
            return [Const(lower_numtype(instr.numtype), instr.value)]
        if isinstance(instr, ri.NumUnop):
            return [Unop(lower_numtype(instr.numtype), instr.op.value)]
        if isinstance(instr, ri.NumBinop):
            return [Binop(lower_numtype(instr.numtype), instr.op.value)]
        if isinstance(instr, ri.NumTestop):
            return [Testop(lower_numtype(instr.numtype))]
        if isinstance(instr, ri.NumRelop):
            return [Relop(lower_numtype(instr.numtype), instr.op.value)]
        if isinstance(instr, ri.NumCvtop):
            op_map = {
                ri.CvtOp.CONVERT: "convert_s" if instr.target.is_float else ("trunc_s" if instr.source.is_float else "wrap"),
                ri.CvtOp.REINTERPRET: "reinterpret",
                ri.CvtOp.WRAP: "wrap",
                ri.CvtOp.EXTEND_S: "extend_s",
                ri.CvtOp.EXTEND_U: "extend_u",
            }
            return [Cvtop(lower_numtype(instr.target), op_map[instr.op], lower_numtype(instr.source))]

        # ---- parametric ----
        if isinstance(instr, ri.Unreachable):
            return [WUnreachable()]
        if isinstance(instr, ri.Nop):
            return [WNop()]
        if isinstance(instr, ri.Drop):
            top = stack[-1] if stack else Type(UnitT(), UNR)
            return [WDrop() for _ in lower_type(top)]
        if isinstance(instr, ri.Select):
            return self._compile_select(stack)

        # ---- control ----
        if isinstance(instr, ri.Block):
            inner_map = [0] + [d + 1 for d in label_map]
            blocktype = WasmFuncType(tuple(lower_types(instr.arrow.params)), tuple(lower_types(instr.arrow.results)))
            return [WBlock(blocktype, tuple(self._compile_seq(instr.body, inner_map)))]
        if isinstance(instr, ri.Loop):
            inner_map = [0] + [d + 1 for d in label_map]
            blocktype = WasmFuncType(tuple(lower_types(instr.arrow.params)), tuple(lower_types(instr.arrow.results)))
            return [WLoop(blocktype, tuple(self._compile_seq(instr.body, inner_map)))]
        if isinstance(instr, ri.If):
            inner_map = [0] + [d + 1 for d in label_map]
            blocktype = WasmFuncType(tuple(lower_types(instr.arrow.params)), tuple(lower_types(instr.arrow.results)))
            then_body = tuple(self._compile_seq(instr.then_body, inner_map))
            else_body = tuple(self._compile_seq(instr.else_body, inner_map))
            return [WIf(blocktype, then_body, else_body)]
        if isinstance(instr, ri.Br):
            return [WBr(self._depth(instr.depth, label_map))]
        if isinstance(instr, ri.BrIf):
            return [WBrIf(self._depth(instr.depth, label_map))]
        if isinstance(instr, ri.BrTable):
            return [
                WBrTable(
                    tuple(self._depth(d, label_map) for d in instr.depths),
                    self._depth(instr.default, label_map),
                )
            ]
        if isinstance(instr, ri.Return):
            return [WReturn()]

        # ---- locals & globals ----
        if isinstance(instr, ri.GetLocal):
            return self._compile_get_local(instr.index, local_env)
        if isinstance(instr, ri.SetLocal):
            return self._compile_set_local(instr.index, stack[-1])
        if isinstance(instr, ri.TeeLocal):
            out = self._compile_set_local(instr.index, stack[-1])
            # tee keeps the value: reload it from the bank at its new type.
            new_env = local_env.set_type(instr.index, stack[-1])
            out.extend(self._compile_get_local(instr.index, new_env))
            return out
        if isinstance(instr, ri.GetGlobal):
            start, layout = self.lowering.global_map[instr.index]
            return [GlobalGet(start + i) for i in range(len(layout))]
        if isinstance(instr, ri.SetGlobal):
            start, layout = self.lowering.global_map[instr.index]
            return [GlobalSet(start + i) for i in reversed(range(len(layout)))]

        # ---- functions ----
        if isinstance(instr, ri.CodeRefI):
            return [Const(ValType.I32, instr.table_index)]
        if isinstance(instr, ri.Call):
            return self._compile_call(instr)
        if isinstance(instr, ri.CallIndirect):
            return self._compile_call_indirect(stack)

        # ---- existential locations ----
        if isinstance(instr, ri.MemUnpack):
            inner_map = [0] + [d + 1 for d in label_map]
            packed = stack[-1]
            packed_layout = lower_type(packed)
            params_layout = lower_types(instr.arrow.params)
            blocktype = WasmFuncType(
                tuple(params_layout + packed_layout),
                tuple(lower_types(instr.arrow.results)),
            )
            return [WBlock(blocktype, tuple(self._compile_seq(instr.body, inner_map)))]

        # ---- structs ----
        if isinstance(instr, ri.StructMalloc):
            return self._compile_struct_malloc(instr, stack)
        if isinstance(instr, ri.StructFree):
            return [WCall(self.runtime.free_index)]
        if isinstance(instr, ri.StructGet):
            return self._compile_struct_get(instr, stack)
        if isinstance(instr, ri.StructSet):
            return self._compile_struct_set(instr, stack)
        if isinstance(instr, ri.StructSwap):
            return self._compile_struct_swap(instr, stack)

        # ---- variants ----
        if isinstance(instr, ri.VariantMalloc):
            return self._compile_variant_malloc(instr, stack)
        if isinstance(instr, ri.VariantCase):
            return self._compile_variant_case(instr, stack, label_map)

        # ---- arrays ----
        if isinstance(instr, ri.ArrayMalloc):
            return self._compile_array_malloc(instr, stack)
        if isinstance(instr, ri.ArrayGet):
            return self._compile_array_get(stack)
        if isinstance(instr, ri.ArraySet):
            return self._compile_array_set(stack)
        if isinstance(instr, ri.ArrayFree):
            return [WCall(self.runtime.free_index)]

        # ---- existential packages ----
        if isinstance(instr, ri.ExistPack):
            return self._compile_exist_pack(instr, stack)
        if isinstance(instr, ri.ExistUnpack):
            return self._compile_exist_unpack(instr, stack, label_map)

        raise LoweringError(f"no lowering rule for instruction {instr!r}")

    # -- depth bookkeeping -------------------------------------------------------------

    @staticmethod
    def _depth(rw_depth: int, label_map: list[int]) -> int:
        if rw_depth < len(label_map):
            return label_map[rw_depth]
        # A branch past all RichWasm labels targets the function body, which
        # sits the same number of extra Wasm labels away.
        extra = (label_map[-1] - (len(label_map) - 1)) if label_map else 0
        return rw_depth + extra

    # -- select / drop -------------------------------------------------------------------

    def _compile_select(self, stack: Sequence[Type]) -> list[WInstr]:
        # stack: ..., v1, v2, cond(i32)
        value_type = stack[-2] if len(stack) >= 2 else Type(UnitT(), UNR)
        layout = lower_type(value_type)
        if len(layout) == 0:
            return [WDrop()]
        if len(layout) == 1:
            return [WSelect()]
        # Multi-component select: spill both operands and re-push one of them.
        cond = self._named("select_cond")
        out: list[WInstr] = [LocalSet(cond)]
        second = self._spill(layout, base=0)
        out.extend(second.code)
        first = self._spill(layout, base=len(layout))
        out.extend(first.code)
        then_branch = self._reload(first)
        else_branch = self._reload(second)
        out.append(LocalGet(cond))
        out.append(WIf(WasmFuncType((), tuple(layout)), tuple(then_branch), tuple(else_branch)))
        return out

    # -- spill / reload ---------------------------------------------------------------------

    @dataclass
    class _Spilled:
        slots: list[tuple[int, ValType]]
        code: list[WInstr]

    def _spill(self, layout: Sequence[ValType], base: int = 0) -> "_FunctionCompiler._Spilled":
        """Pop a value with the given layout into scratch locals (top first)."""

        slots: list[tuple[int, ValType]] = []
        code: list[WInstr] = []
        counters: dict[ValType, int] = {v: 0 for v in ValType}
        # Allocate scratch indices per valtype; base offsets avoid clobbering
        # other spilled values alive at the same time.
        for valtype in layout:
            slots.append((0, valtype))
        for position in range(len(layout) - 1, -1, -1):
            valtype = layout[position]
            index = self._scratch(valtype, base + counters[valtype])
            counters[valtype] += 1
            slots[position] = (index, valtype)
            code.append(LocalSet(index))
        return self._Spilled(slots, code)

    def _reload(self, spilled: "_FunctionCompiler._Spilled") -> list[WInstr]:
        return [LocalGet(index) for index, _ in spilled.slots]

    # -- locals ---------------------------------------------------------------------------------

    def _compile_get_local(self, index: int, local_env: LocalEnv) -> list[WInstr]:
        ty = local_env.get(index).type
        layout = lower_type(ty)
        bank = self.local_banks[index]
        out: list[WInstr] = []
        for component, valtype in enumerate(layout):
            if component >= len(bank):
                raise LoweringError(
                    f"local {index} bank too small for type {ty} (component {component})"
                )
            out.append(LocalGet(bank[component]))
            out.extend(self._from_i64(valtype))
        return out

    def _compile_set_local(self, index: int, ty: Type) -> list[WInstr]:
        layout = lower_type(ty)
        bank = self.local_banks[index]
        out: list[WInstr] = []
        for component in range(len(layout) - 1, -1, -1):
            valtype = layout[component]
            if component >= len(bank):
                raise LoweringError(
                    f"local {index} bank too small for type {ty} (component {component})"
                )
            out.extend(self._to_i64(valtype))
            out.append(LocalSet(bank[component]))
        return out

    # -- memory access helpers ----------------------------------------------------------------------

    def _store_components(
        self, addr_local: int, offset: int, layout: Sequence[ValType], spilled: "_FunctionCompiler._Spilled"
    ) -> list[WInstr]:
        """Store spilled components at ``addr + offset`` (packed consecutively)."""

        out: list[WInstr] = []
        position = offset
        for (slot_index, valtype) in spilled.slots:
            out.append(LocalGet(addr_local))
            out.append(LocalGet(slot_index))
            out.append(StoreI(valtype, offset=position))
            position += valtype.byte_width
        return out

    def _load_components(self, addr_local: int, offset: int, layout: Sequence[ValType]) -> list[WInstr]:
        out: list[WInstr] = []
        position = offset
        for valtype in layout:
            out.append(LocalGet(addr_local))
            out.append(Load(valtype, offset=position))
            position += valtype.byte_width
        return out

    # -- calls -------------------------------------------------------------------------------------------

    def _compile_call(self, instr: ri.Call) -> list[WInstr]:
        funtype = self.module_env.func(instr.func_index)
        out: list[WInstr] = []
        boxed_params, boxed_results = self._boxed_positions(funtype, instr.indices)
        if boxed_params:
            out.extend(self._box_arguments(funtype, instr.indices, boxed_params))
        out.append(WCall(instr.func_index))
        if boxed_results:
            out.extend(self._unbox_results(funtype, instr.indices, boxed_results))
        return out

    def _boxed_positions(self, funtype: FunType, indices) -> tuple[list[int], list[int]]:
        """Parameter/result positions whose generic type is a bare pretype variable
        being instantiated with a concrete pretype (requiring a stack coercion)."""

        if not funtype.quants or not indices:
            return [], []
        arrow = instantiate_funtype(funtype, indices)
        boxed_params = []
        for position, (generic, concrete) in enumerate(zip(funtype.arrow.params, arrow.params)):
            if isinstance(generic.pretype, VarT) and not isinstance(concrete.pretype, VarT):
                boxed_params.append(position)
        boxed_results = []
        for position, (generic, concrete) in enumerate(zip(funtype.arrow.results, arrow.results)):
            if isinstance(generic.pretype, VarT) and not isinstance(concrete.pretype, VarT):
                boxed_results.append(position)
        return boxed_params, boxed_results

    def _box_arguments(self, funtype: FunType, indices, boxed_params: list[int]) -> list[WInstr]:
        """Box the arguments at ``boxed_params`` (identified by position).

        Arguments sit on the stack in order; we spill them all, box the ones
        that need it and re-push everything.
        """

        arrow = instantiate_funtype(funtype, indices)
        out: list[WInstr] = []
        spills: list[tuple[int, Optional["_FunctionCompiler._Spilled"], Type]] = []
        base = 0
        for position in range(len(arrow.params) - 1, -1, -1):
            ty = arrow.params[position]
            layout = lower_type(ty)
            spilled = self._spill(layout, base=base)
            base += len(layout)
            out.extend(spilled.code)
            spills.append((position, spilled, ty))
        spills.reverse()
        for position, spilled, ty in spills:
            reload_code = self._reload(spilled)
            if position in boxed_params:
                out.extend(self._box_value(ty, reload_code))
                self.stats.boxing_coercions += 1
            else:
                out.extend(reload_code)
        return out

    def _box_value(self, ty: Type, reload_code: list[WInstr]) -> list[WInstr]:
        """Allocate a heap cell and store the (already spilled) value into it."""

        layout = lower_type(ty)
        size = max(layout_bytes(layout), 4)
        addr = self._named("box_addr")
        out: list[WInstr] = [Const(ValType.I32, size), WCall(self.runtime.malloc_index), LocalSet(addr)]
        # reload_code pushes the components; we instead store them one by one.
        position = 0
        for instr_reload, valtype in zip(reload_code, layout):
            out.append(LocalGet(addr))
            out.append(instr_reload)
            out.append(StoreI(valtype, offset=position))
            position += valtype.byte_width
        out.append(LocalGet(addr))
        return out

    def _unbox_results(self, funtype: FunType, indices, boxed_results: list[int]) -> list[WInstr]:
        arrow = instantiate_funtype(funtype, indices)
        out: list[WInstr] = []
        spills: list[tuple[int, "_FunctionCompiler._Spilled", Type]] = []
        base = 0
        for position in range(len(arrow.results) - 1, -1, -1):
            ty = arrow.results[position]
            layout = [ValType.I32] if position in boxed_results else lower_type(ty)
            spilled = self._spill(layout, base=base)
            base += len(layout)
            out.extend(spilled.code)
            spills.append((position, spilled, ty))
        spills.reverse()
        for position, spilled, ty in spills:
            if position in boxed_results:
                addr = spilled.slots[0][0]
                out.extend(self._load_components(addr, 0, lower_type(ty)))
                self.stats.boxing_coercions += 1
            else:
                out.extend(self._reload(spilled))
        return out

    def _compile_call_indirect(self, stack: Sequence[Type]) -> list[WInstr]:
        coderef_type = stack[-1]
        if not isinstance(coderef_type.pretype, CodeRefT):
            raise LoweringError(f"call_indirect target is not a coderef: {coderef_type}")
        funtype = coderef_type.pretype.funtype
        wasm_type = WasmFuncType(
            tuple(lower_types(funtype.arrow.params)),
            tuple(lower_types(funtype.arrow.results)),
        )
        return [WCallIndirect(wasm_type)]

    # -- structs --------------------------------------------------------------------------------------------

    def _compile_struct_malloc(self, instr: ri.StructMalloc, stack: Sequence[Type]) -> list[WInstr]:
        field_count = len(instr.sizes)
        field_types = list(stack[len(stack) - field_count:])
        slot_bytes = [size_to_bytes(size) for size in instr.sizes]
        total = max(sum(slot_bytes), 4)

        out: list[WInstr] = []
        spills: list["_FunctionCompiler._Spilled"] = []
        base = 0
        for ty in reversed(field_types):
            layout = lower_type(ty)
            spilled = self._spill(layout, base=base)
            base += len(layout)
            out.extend(spilled.code)
            spills.append(spilled)
        spills.reverse()

        addr = self._named("heap_addr")
        out.append(Const(ValType.I32, total))
        out.append(WCall(self.runtime.malloc_index))
        out.append(LocalTee(addr))
        offset = 0
        for spilled, ty, slot in zip(spills, field_types, slot_bytes):
            out.extend(self._store_components(addr, offset, lower_type(ty), spilled))
            offset += slot
        return out

    def _struct_layout_from(self, ref_type: Type):
        heaptype = ref_type.pretype.heaptype  # type: ignore[union-attr]
        if not isinstance(heaptype, StructHT):
            raise LoweringError(f"expected a struct reference, found {ref_type}")
        return struct_layout(heaptype)

    def _compile_struct_get(self, instr: ri.StructGet, stack: Sequence[Type]) -> list[WInstr]:
        layout = self._struct_layout_from(stack[-1])
        field = layout.fields[instr.index]
        addr = self._named("heap_addr")
        out: list[WInstr] = [LocalTee(addr)]
        out.extend(self._load_components(addr, field.offset, lower_type(field.type)))
        return out

    def _compile_struct_set(self, instr: ri.StructSet, stack: Sequence[Type]) -> list[WInstr]:
        ref_type = stack[-2]
        value_type = stack[-1]
        layout = self._struct_layout_from(ref_type)
        field = layout.fields[instr.index]
        value_layout = lower_type(value_type)
        spilled = self._spill(value_layout)
        addr = self._named("heap_addr")
        out: list[WInstr] = list(spilled.code)
        out.append(LocalTee(addr))
        out.extend(self._store_components(addr, field.offset, value_layout, spilled))
        return out

    def _compile_struct_swap(self, instr: ri.StructSwap, stack: Sequence[Type]) -> list[WInstr]:
        ref_type = stack[-2]
        value_type = stack[-1]
        layout = self._struct_layout_from(ref_type)
        field = layout.fields[instr.index]
        value_layout = lower_type(value_type)
        spilled = self._spill(value_layout)
        addr = self._named("heap_addr")
        out: list[WInstr] = list(spilled.code)
        out.append(LocalTee(addr))
        # Load the old value first, then overwrite the slot.
        out.extend(self._load_components(addr, field.offset, lower_type(field.type)))
        out.extend(self._store_components(addr, field.offset, value_layout, spilled))
        return out

    # -- variants --------------------------------------------------------------------------------------------

    def _compile_variant_malloc(self, instr: ri.VariantMalloc, stack: Sequence[Type]) -> list[WInstr]:
        layout = variant_layout(VariantHT(tuple(instr.cases)))
        payload_type = instr.cases[instr.tag]
        payload_layout = lower_type(payload_type)
        spilled = self._spill(payload_layout)
        addr = self._named("heap_addr")
        out: list[WInstr] = list(spilled.code)
        out.append(Const(ValType.I32, max(layout.total_bytes, 4)))
        out.append(WCall(self.runtime.malloc_index))
        out.append(LocalTee(addr))
        out.append(LocalGet(addr))
        out.append(Const(ValType.I32, instr.tag))
        out.append(StoreI(ValType.I32, offset=0))
        out.extend(self._store_components(addr, layout.tag_bytes, payload_layout, spilled))
        return out

    def _compile_variant_case(
        self, instr: ri.VariantCase, stack: Sequence[Type], label_map: list[int]
    ) -> list[WInstr]:
        if not isinstance(instr.heaptype, VariantHT):
            raise LoweringError("variant.case annotation must be a variant heap type")
        layout = variant_layout(instr.heaptype)
        params = list(instr.arrow.params)
        results_layout = lower_types(instr.arrow.results)
        from ..core.syntax.qualifiers import QualConst

        linear_flavour = instr.qual == QualConst.LIN

        out: list[WInstr] = []
        # Spill the block parameters (they sit above the reference).
        param_spills: list["_FunctionCompiler._Spilled"] = []
        base = 0
        for ty in reversed(params):
            spilled = self._spill(lower_type(ty), base=base)
            base += len(lower_type(ty))
            out.extend(spilled.code)
            param_spills.append(spilled)
        param_spills.reverse()

        addr = self._named("heap_addr")
        if linear_flavour:
            out.append(LocalSet(addr))  # consume the reference
        else:
            out.append(LocalTee(addr))  # keep it on the stack, below the results

        arms: list[WInstr] = []
        inner_map = [1] + [d + 2 for d in label_map]
        for tag, (case_type, branch) in enumerate(zip(instr.heaptype.cases, instr.branches)):
            arm_body: list[WInstr] = []
            for spilled in param_spills:
                arm_body.extend(self._reload(spilled))
            arm_body.extend(self._load_components(addr, layout.tag_bytes, lower_type(case_type)))
            if linear_flavour:
                arm_body.append(LocalGet(addr))
                arm_body.append(WCall(self.runtime.free_index))
            arm_body.extend(self._compile_seq(branch, inner_map))
            arm_body.append(WBr(1))
            arms.append(LocalGet(addr))
            arms.append(Load(ValType.I32, offset=0))
            arms.append(Const(ValType.I32, tag))
            arms.append(Relop(ValType.I32, "eq"))
            arms.append(WIf(WasmFuncType((), ()), tuple(arm_body), ()))
        arms.append(WUnreachable())
        out.append(WBlock(WasmFuncType((), tuple(results_layout)), tuple(arms)))
        return out

    # -- arrays ----------------------------------------------------------------------------------------------

    def _compile_array_malloc(self, instr: ri.ArrayMalloc, stack: Sequence[Type]) -> list[WInstr]:
        element_type = stack[-2]
        element_layout = lower_type(element_type)
        element_bytes = max(layout_bytes(element_layout), 1)

        length = self._named("array_len")
        addr = self._named("heap_addr")
        counter = self._named("array_counter")

        out: list[WInstr] = [LocalSet(length)]
        spilled = self._spill(element_layout)
        out.extend(spilled.code)
        # size = header + length * element_bytes
        out.append(LocalGet(length))
        out.append(Const(ValType.I32, element_bytes))
        out.append(Binop(ValType.I32, "mul"))
        out.append(Const(ValType.I32, LENGTH_BYTES))
        out.append(Binop(ValType.I32, "add"))
        out.append(WCall(self.runtime.malloc_index))
        out.append(LocalTee(addr))
        # store the length header
        out.append(LocalGet(addr))
        out.append(LocalGet(length))
        out.append(StoreI(ValType.I32, offset=0))
        # fill loop: for counter in 0..length
        elem_addr = self._named("elem_addr")
        fill_body: list[WInstr] = [
            LocalGet(counter), LocalGet(length), Relop(ValType.I32, "ge_u"), WBrIf(1),
            LocalGet(addr),
            LocalGet(counter), Const(ValType.I32, element_bytes), Binop(ValType.I32, "mul"),
            Binop(ValType.I32, "add"),
            LocalSet(elem_addr),
        ]
        fill_body.extend(self._store_components(elem_addr, LENGTH_BYTES, element_layout, spilled))
        fill_body.extend([
            LocalGet(counter), Const(ValType.I32, 1), Binop(ValType.I32, "add"), LocalSet(counter),
            WBr(0),
        ])
        out.append(Const(ValType.I32, 0))
        out.append(LocalSet(counter))
        out.append(WBlock(WasmFuncType((), ()), (WLoop(WasmFuncType((), ()), tuple(fill_body)),)))
        return out

    def _array_element(self, ref_type: Type):
        heaptype = ref_type.pretype.heaptype  # type: ignore[union-attr]
        if not isinstance(heaptype, ArrayHT):
            raise LoweringError(f"expected an array reference, found {ref_type}")
        return array_layout(heaptype)

    def _bounds_check(self, addr: int, index: int) -> list[WInstr]:
        return [
            LocalGet(index),
            LocalGet(addr), Load(ValType.I32, offset=0),
            Relop(ValType.I32, "ge_u"),
            WIf(WasmFuncType((), ()), (WUnreachable(),), ()),
        ]

    def _compile_array_get(self, stack: Sequence[Type]) -> list[WInstr]:
        ref_type = stack[-2]
        layout = self._array_element(ref_type)
        element_layout = lower_type(layout.element_type)
        index = self._named("array_index")
        addr = self._named("heap_addr")
        elem_addr = self._named("elem_addr")
        out: list[WInstr] = [LocalSet(index), LocalTee(addr)]
        out.extend(self._bounds_check(addr, index))
        out.extend([
            LocalGet(addr),
            LocalGet(index), Const(ValType.I32, layout.element_bytes), Binop(ValType.I32, "mul"),
            Binop(ValType.I32, "add"),
            LocalSet(elem_addr),
        ])
        out.extend(self._load_components(elem_addr, layout.header_bytes, element_layout))
        return out

    def _compile_array_set(self, stack: Sequence[Type]) -> list[WInstr]:
        ref_type = stack[-3]
        value_type = stack[-1]
        layout = self._array_element(ref_type)
        value_layout = lower_type(value_type)
        index = self._named("array_index")
        addr = self._named("heap_addr")
        elem_addr = self._named("elem_addr")
        spilled = self._spill(value_layout)
        out: list[WInstr] = list(spilled.code)
        out.append(LocalSet(index))
        out.append(LocalTee(addr))
        out.extend(self._bounds_check(addr, index))
        out.extend([
            LocalGet(addr),
            LocalGet(index), Const(ValType.I32, layout.element_bytes), Binop(ValType.I32, "mul"),
            Binop(ValType.I32, "add"),
            LocalSet(elem_addr),
        ])
        out.extend(self._store_components(elem_addr, layout.header_bytes, value_layout, spilled))
        return out

    # -- existential packages -----------------------------------------------------------------------------------

    def _compile_exist_pack(self, instr: ri.ExistPack, stack: Sequence[Type]) -> list[WInstr]:
        # The package cell stores the payload at the *abstract* layout of the
        # existential body (pretype variables lower to i32 pointers).  The
        # code generators only instantiate existentials with pointer-shaped
        # witnesses, so the concrete payload layout coincides with it; a
        # mismatch indicates a representation the lowering cannot express.
        if not isinstance(instr.heaptype, ExHT):
            raise LoweringError("exist.pack annotation must be an existential heap type")
        payload_type = stack[-1]
        payload_layout = lower_type(payload_type)
        abstract_layout = lower_type(instr.heaptype.body)
        if payload_layout != abstract_layout:
            raise LoweringError(
                "exist.pack payload layout does not match the abstract package layout: "
                f"{payload_layout} vs {abstract_layout} (instantiate existentials with boxed witnesses)"
            )
        cell_bytes = max(layout_bytes(abstract_layout), 4)
        cell = self._named("cell_addr")
        spilled = self._spill(payload_layout)
        out: list[WInstr] = list(spilled.code)
        out.append(Const(ValType.I32, cell_bytes))
        out.append(WCall(self.runtime.malloc_index))
        out.append(LocalTee(cell))
        out.extend(self._store_components(cell, 0, payload_layout, spilled))
        self.stats.boxing_coercions += 1
        return out

    def _compile_exist_unpack(
        self, instr: ri.ExistUnpack, stack: Sequence[Type], label_map: list[int]
    ) -> list[WInstr]:
        from ..core.syntax.qualifiers import QualConst

        params = list(instr.arrow.params)
        results_layout = lower_types(instr.arrow.results)
        linear_flavour = instr.qual == QualConst.LIN

        out: list[WInstr] = []
        param_spills: list["_FunctionCompiler._Spilled"] = []
        base = 0
        for ty in reversed(params):
            spilled = self._spill(lower_type(ty), base=base)
            base += len(lower_type(ty))
            out.extend(spilled.code)
            param_spills.append(spilled)
        param_spills.reverse()

        addr = self._named("heap_addr")
        if linear_flavour:
            out.append(LocalSet(addr))
        else:
            out.append(LocalTee(addr))

        inner_map = [0] + [d + 1 for d in label_map]
        body: list[WInstr] = []
        for spilled in param_spills:
            body.extend(self._reload(spilled))
        # Read the payload at the abstract layout of the existential body.
        if not isinstance(instr.heaptype, ExHT):
            raise LoweringError("exist.unpack annotation must be an existential heap type")
        abstract_layout = lower_type(instr.heaptype.body)
        body.extend(self._load_components(addr, 0, abstract_layout))
        if linear_flavour:
            body.append(LocalGet(addr))
            body.append(WCall(self.runtime.free_index))
        body.extend(self._compile_seq(instr.body, inner_map))
        out.append(WBlock(WasmFuncType((), tuple(results_layout)), tuple(body)))
        return out
