"""The RichWasm → WebAssembly compiler (paper §6).

* :mod:`repro.lower.layout` — type lowering and heap layouts.
* :mod:`repro.lower.runtime` — the emitted free-list allocator.
* :mod:`repro.lower.compiler` — the type-directed instruction/module compiler.
* :func:`lower_module` — the one-call entry point used by examples and tests.
"""

from .compiler import LoweredModule, LoweringStats, ModuleLowering
from .layout import (
    ArrayLayout,
    FieldSlot,
    PackageLayout,
    StructLayout,
    VariantLayout,
    array_layout,
    heaptype_bytes,
    layout_bytes,
    lower_numtype,
    lower_pretype,
    lower_type,
    lower_types,
    size_to_bytes,
    struct_layout,
    type_bytes,
    variant_layout,
)
from .runtime import BLOCK_HEADER_BYTES, HEAP_BASE, RuntimeLayout, build_free, build_malloc

from .._compat import UNSET as _UNSET, legacy_config as _legacy_config


def lower_module(module, *, config=None, memory_pages=_UNSET, optimize=_UNSET,
                 passes=None, engine=_UNSET, unit_cache=None) -> LoweredModule:
    """Type-check-directed lowering of a RichWasm module to Wasm.

    ``config`` (a :class:`repro.api.CompileConfig`) selects the memory size,
    the optimization level (``opt_level`` expanding to a named
    :mod:`repro.opt.pipelines` pipeline) and the recorded engine preference;
    an explicit ``passes`` list overrides the config's pipeline when the
    config optimizes.  When optimization ran, the :class:`LoweredModule`
    carries the :class:`~repro.opt.OptimizationResult` and its ``wasm``
    field is the optimized module.

    ``unit_cache`` (a :class:`repro.compilepipe.FunctionUnitCache`) threads
    the per-function unit tables through lowering and optimization so
    unchanged functions are reused across module versions.

    The ``memory_pages``/``optimize``/``engine`` keywords are the deprecated
    pre-:mod:`repro.api` surface (one :class:`DeprecationWarning` per call);
    ``optimize=True`` maps to ``O2``.
    """

    config = _legacy_config(
        "lower_module", config,
        {"memory_pages": memory_pages, "optimize": optimize, "engine": engine},
    )
    lowered = ModuleLowering(
        module, memory_pages=config.memory_pages, unit_cache=unit_cache
    ).lower()
    lowered.engine = config.engine
    if config.optimize:
        from ..opt import optimize_module

        result = optimize_module(
            lowered.wasm,
            passes if passes is not None else config.passes(),
            unit_cache=unit_cache,
        )
        lowered.wasm = result.module
        lowered.optimization = result
    return lowered


__all__ = [name for name in dir() if not name.startswith("_")]
