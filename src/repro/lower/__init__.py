"""The RichWasm → WebAssembly compiler (paper §6).

* :mod:`repro.lower.layout` — type lowering and heap layouts.
* :mod:`repro.lower.runtime` — the emitted free-list allocator.
* :mod:`repro.lower.compiler` — the type-directed instruction/module compiler.
* :func:`lower_module` — the one-call entry point used by examples and tests.
"""

from .compiler import LoweredModule, LoweringStats, ModuleLowering
from .layout import (
    ArrayLayout,
    FieldSlot,
    PackageLayout,
    StructLayout,
    VariantLayout,
    array_layout,
    heaptype_bytes,
    layout_bytes,
    lower_numtype,
    lower_pretype,
    lower_type,
    lower_types,
    size_to_bytes,
    struct_layout,
    type_bytes,
    variant_layout,
)
from .runtime import BLOCK_HEADER_BYTES, HEAP_BASE, RuntimeLayout, build_free, build_malloc


def lower_module(module, *, memory_pages: int = 4, optimize: bool = False, passes=None, engine=None) -> LoweredModule:
    """Type-check-directed lowering of a RichWasm module to Wasm.

    With ``optimize=True`` the lowered module is post-processed by the
    :mod:`repro.opt` pass pipeline (``passes`` overrides the default one);
    the :class:`LoweredModule` then carries the optimization statistics and
    its ``wasm`` field is the optimized module.

    ``engine`` records an execution-engine preference (``"flat"``/``"tree"``)
    on the result, consumed by :meth:`LoweredModule.instantiate`; ``None``
    means the default engine (the flat VM).
    """

    lowered = ModuleLowering(module, memory_pages=memory_pages).lower()
    lowered.engine = engine
    if optimize:
        from ..opt import optimize_module

        result = optimize_module(lowered.wasm, passes)
        lowered.wasm = result.module
        lowered.optimization = result
    return lowered


__all__ = [name for name in dir() if not name.startswith("_")]
