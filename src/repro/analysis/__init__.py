"""Analysis utilities: implementation-size metrics and the empirical
type-safety (progress/preservation) harness."""

from .metrics import (
    CategoryStats,
    FileStats,
    InstructionDelta,
    analyze_file,
    count_typing_rules,
    format_optimization_report,
    format_report,
    gather_metrics,
    optimization_delta,
    repository_root,
)
from .safety import SafetyHarness, SafetyReport, SafetyViolation, check_store_invariants

__all__ = [name for name in dir() if not name.startswith("_")]
