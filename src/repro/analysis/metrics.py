"""Formalization/implementation size metrics (paper §4.1, "Coq development").

The paper reports the size of its Coq development: 14k lines of
specifications (definitions and theorem statements) and 52k lines of proofs.
The analogue for this reproduction is the split between *specification-like*
code (the syntax, type system and semantics definitions), *systems* code
(compilers, substrates), and the *evidence* replacing the proofs (tests and
the empirical safety harness).  ``bench_formalization_stats`` regenerates the
table from this module.

Not to be confused with :mod:`repro.obs.metrics`, the *runtime telemetry*
registry (counters/gauges/histograms recorded by the cache, pool and batch
runner): this module measures the repository itself, paper-statistics style.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class FileStats:
    path: str
    lines: int
    code_lines: int
    docstring_or_comment_lines: int


@dataclass
class CategoryStats:
    name: str
    files: list[FileStats] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        return sum(f.lines for f in self.files)

    @property
    def code_lines(self) -> int:
        return sum(f.code_lines for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


#: Mapping from repository directory prefixes to report categories, mirroring
#: the paper's spec/proof split: "specification" covers the definitions the
#: Coq development formalizes, "systems" the compilers and substrates, and
#: "evidence" the tests/benchmarks standing in for the mechanized proofs.
DEFAULT_CATEGORIES: dict[str, tuple[str, ...]] = {
    "specification (syntax, typing, semantics)": (
        os.path.join("src", "repro", "core"),
    ),
    "systems (compilers, substrates, FFI)": (
        os.path.join("src", "repro", "wasm"),
        os.path.join("src", "repro", "lower"),
        os.path.join("src", "repro", "ml"),
        os.path.join("src", "repro", "l3"),
        os.path.join("src", "repro", "ffi"),
        os.path.join("src", "repro", "analysis"),
    ),
    "evidence (tests, benchmarks, examples)": (
        "tests",
        "benchmarks",
        "examples",
    ),
}


def analyze_file(path: str) -> FileStats:
    """Count total, code, and comment/docstring lines of one Python file."""

    total = 0
    code = 0
    doc = 0
    in_docstring = False
    delimiter: Optional[str] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            total += 1
            stripped = line.strip()
            if in_docstring:
                doc += 1
                if delimiter and delimiter in stripped:
                    in_docstring = False
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                doc += 1
                delimiter = stripped[:3]
                # A one-line docstring opens and closes on the same line.
                if not (stripped.count(delimiter) >= 2 and len(stripped) > 3):
                    in_docstring = True
                continue
            if not stripped:
                continue
            if stripped.startswith("#"):
                doc += 1
                continue
            code += 1
    return FileStats(path=path, lines=total, code_lines=code, docstring_or_comment_lines=doc)


def collect_python_files(root: str, prefixes: Iterable[str]) -> list[str]:
    found: list[str] = []
    for prefix in prefixes:
        base = os.path.join(root, prefix)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for filename in filenames:
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(found)


def repository_root() -> str:
    """The repository root (three levels above this file)."""

    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", ".."))


def gather_metrics(root: Optional[str] = None) -> list[CategoryStats]:
    """Gather line-count metrics for each report category."""

    root = root if root is not None else repository_root()
    categories: list[CategoryStats] = []
    for name, prefixes in DEFAULT_CATEGORIES.items():
        category = CategoryStats(name)
        for path in collect_python_files(root, prefixes):
            category.files.append(analyze_file(path))
        categories.append(category)
    return categories


def count_typing_rules() -> dict[str, int]:
    """Count implemented rules, mirroring the paper's per-judgement figures."""

    from ..core.typing.instruction_typing import InstructionChecker
    from ..core.semantics.reduction import Interpreter

    instruction_rules = len(
        [name for name in dir(InstructionChecker) if name.startswith("_check_")]
    )
    reduction_rules = len([name for name in dir(Interpreter) if name.startswith("_exec_")])
    return {
        "instruction typing rules": instruction_rules,
        "reduction rules": reduction_rules,
    }


# ---------------------------------------------------------------------------
# Optimizer instruction-count deltas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstructionDelta:
    """Instruction-count change of one module through the optimizer."""

    name: str
    before: int
    after: int

    @property
    def removed(self) -> int:
        return self.before - self.after

    @property
    def reduction(self) -> float:
        return self.removed / self.before if self.before else 0.0


def optimization_delta(before, after, *, name: str = "module") -> InstructionDelta:
    """The instruction-count delta between two Wasm modules (pre/post opt)."""

    return InstructionDelta(name, before.instruction_count(), after.instruction_count())


def format_optimization_report(deltas: Iterable[InstructionDelta]) -> str:
    """A textual table of per-module optimizer instruction-count deltas."""

    deltas = list(deltas)
    lines = [f"{'module':<28} {'before':>8} {'after':>8} {'removed':>8} {'reduction':>10}"]
    for delta in deltas:
        lines.append(
            f"{delta.name:<28} {delta.before:>8} {delta.after:>8} {delta.removed:>8} {delta.reduction:>9.1%}"
        )
    if deltas:
        before = sum(d.before for d in deltas)
        after = sum(d.after for d in deltas)
        total = InstructionDelta("TOTAL", before, after)
        lines.append(
            f"{total.name:<28} {total.before:>8} {total.after:>8} {total.removed:>8} {total.reduction:>9.1%}"
        )
    return "\n".join(lines)


def format_report(categories: list[CategoryStats]) -> str:
    """A textual table comparable to the paper's §4.1 size report."""

    lines = [
        "Formalization / implementation size (paper: 14k spec + 52k proof Coq lines)",
        f"{'category':<48} {'files':>6} {'lines':>8} {'code':>8}",
    ]
    for category in categories:
        lines.append(
            f"{category.name:<48} {category.file_count:>6} {category.total_lines:>8} {category.code_lines:>8}"
        )
    total_lines = sum(c.total_lines for c in categories)
    total_code = sum(c.code_lines for c in categories)
    lines.append(f"{'TOTAL':<48} {'':>6} {total_lines:>8} {total_code:>8}")
    for name, value in count_typing_rules().items():
        lines.append(f"{name}: {value}")
    return "\n".join(lines)
