"""Empirical type-safety harness (paper §4.1: progress and preservation).

The paper proves type safety in Coq.  The reproduction replaces the
mechanized proof with an empirical harness:

* **progress** — executing a well-typed program never gets *stuck*: every
  step either completes, traps for a legitimate dynamic reason
  (``unreachable``, array bounds), or reduces further.  Any other Python
  exception escaping the interpreter counts as a stuck state.
* **preservation** — after every reduction step the store remains well
  formed: every reachable reference points at an allocated cell of the right
  shape, no linear cell is reachable from two distinct GC cells (no aliasing
  of owned memory from the collector's point of view), and no bare
  capability is stored in the garbage-collected memory.

The harness runs a program under the interpreter with an ``on_step`` hook
that re-validates these invariants, and reports counts that the SAFETY
benchmark and the property-based tests aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.semantics import Interpreter, Trap
from ..core.semantics.store import Store
from ..core.syntax import (
    ConcreteLoc,
    MemKind,
    Module,
    Value,
    heap_value_contains_cap,
    heap_value_locations,
)
from ..core.typing import check_module
from ..core.typing.errors import RichWasmError, RichWasmTypeError


class SafetyViolation(RichWasmError):
    """A progress or preservation violation observed at runtime."""


@dataclass
class SafetyReport:
    """The outcome of running a program under the safety harness."""

    steps: int = 0
    store_checks: int = 0
    traps: int = 0
    stuck: int = 0
    preservation_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.preservation_violations and self.stuck == 0


def check_store_invariants(store: Store) -> list[str]:
    """Check the store well-formedness invariants of Fig. 8.

    Returns a list of violation descriptions (empty when the store is fine).
    """

    violations: list[str] = []

    # 1. Every location reachable from a heap value must still be allocated.
    for space in (store.linear, store.unrestricted):
        for loc in list(space.locations()):
            cell = space.lookup(loc)
            for successor in heap_value_locations(cell.value):
                if isinstance(successor, ConcreteLoc) and not store.memory(successor.mem).contains(successor):
                    violations.append(
                        f"dangling reference: cell {loc} points at freed location {successor}"
                    )

    # 2. No bare capability may be stored in the garbage-collected memory.
    for loc in list(store.unrestricted.locations()):
        cell = store.unrestricted.lookup(loc)
        if heap_value_contains_cap(cell.value):
            violations.append(f"bare capability stored in GC memory at {loc}")

    # 3. A linear cell must not be owned by two different GC cells (the
    #    collector could otherwise free it twice through finalizers).
    owners: dict[ConcreteLoc, ConcreteLoc] = {}
    for loc in list(store.unrestricted.locations()):
        cell = store.unrestricted.lookup(loc)
        for successor in heap_value_locations(cell.value):
            if isinstance(successor, ConcreteLoc) and successor.mem is MemKind.LIN:
                if successor in owners and owners[successor] != loc:
                    violations.append(
                        f"linear cell {successor} reachable from two GC cells"
                        f" ({owners[successor]} and {loc})"
                    )
                owners[successor] = loc
    return violations


@dataclass
class SafetyHarness:
    """Runs modules while re-checking store invariants after every step."""

    check_every: int = 1
    max_steps: Optional[int] = 200_000

    def run_module(
        self,
        module: Module,
        invocations: Sequence[tuple[str, Sequence[Value]]],
        *,
        imports: Optional[dict[str, Module]] = None,
    ) -> SafetyReport:
        """Type-check, instantiate and run a module under the harness."""

        check_module(module)
        report = SafetyReport()

        def on_step(_instr, store: Store) -> None:
            report.steps += 1
            if report.steps % self.check_every:
                return
            report.store_checks += 1
            report.preservation_violations.extend(check_store_invariants(store))

        interpreter = Interpreter(max_steps=self.max_steps, on_step=on_step)
        instance_handles: dict[str, object] = {}
        if imports:
            for name, dependency in imports.items():
                check_module(dependency)
                index = interpreter.instantiate(dependency)
                instance_handles[name] = interpreter.store.instance(index)
        index = interpreter.instantiate(module, instance_handles or None)

        exports = module.exported_functions()
        if "_init" in exports:
            interpreter.invoke_export(index, "_init")
        for export, args in invocations:
            try:
                interpreter.invoke_export(index, export, list(args))
            except Trap:
                # A trap is a legitimate outcome (progress holds): the
                # configuration reduced to `trap`, it did not get stuck.
                report.traps += 1
            except RichWasmTypeError:
                raise
            except RichWasmError:
                report.traps += 1
            except Exception as exc:  # noqa: BLE001 - anything else is "stuck"
                report.stuck += 1
                report.preservation_violations.append(
                    f"interpreter raised {type(exc).__name__}: {exc} (stuck state)"
                )
        return report
