"""Instance pooling: recycle Wasm instances instead of re-instantiating.

Instantiation re-runs data segments, constant expressions, the ``start``
function and any ``_init`` exports on every request.  A pooled instance is
built once, its post-initialization state captured as an
:class:`InstanceImage`, and every release *resets* the live runtime state —
memory bytes (shrinking a grown memory back), globals, table, function slots
and the engine's step counters — to that image in place.

Reset is required to be observationally equivalent to a fresh instantiate:
results, trap messages, final memory, globals and cumulative ``steps`` of a
pooled-reset instance must be bit-identical to a fresh instance's on both
engines.  :func:`repro.opt.run_pool_reset_cross_check` enforces exactly
that, and the ``tests/runtime`` suite runs it in CI.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..obs.metrics import default_registry
from ..wasm.ast import WasmModule
from ..wasm.interpreter import HostFunction, WasmInstance, WasmInterpreter, WasmValue

# Process-wide pool telemetry (every pool in the process accumulates here;
# the per-pool view stays on ``InstancePool.stats``).
_POOL_INSTANTIATIONS = default_registry().counter(
    "runtime.pool.instantiations", "fresh instances built by instance pools"
)
_POOL_RESETS = default_registry().counter(
    "runtime.pool.resets", "successful in-place instance resets"
)
_POOL_RESET_FAILURES = default_registry().counter(
    "runtime.pool.reset_failures", "resets that failed (instance discarded)"
)
_POOL_DISCARDS = default_registry().counter(
    "runtime.pool.discards", "instances dropped (failed reset or over capacity)"
)


@dataclass(frozen=True)
class InstanceImage:
    """The reset target: an instance's state right after initialization."""

    memory: Optional[bytes]
    globals: tuple
    table: tuple
    funcs: tuple
    steps: int
    max_steps: Optional[int]

    @classmethod
    def capture(cls, interpreter: WasmInterpreter, instance: WasmInstance) -> "InstanceImage":
        return cls(
            memory=bytes(instance.memory.data) if instance.memory is not None else None,
            globals=tuple(instance.globals),
            table=tuple(instance.table),
            funcs=tuple(instance.funcs),
            steps=interpreter.steps,
            max_steps=interpreter.max_steps,
        )


class PooledInstance:
    """One pooled ``(interpreter, instance)`` pair plus its reset image."""

    __slots__ = ("interpreter", "instance", "image", "generation")

    def __init__(self, interpreter: WasmInterpreter, instance: WasmInstance, image: InstanceImage):
        self.interpreter = interpreter
        self.instance = instance
        self.image = image
        self.generation = 0

    @property
    def steps(self) -> int:
        return self.interpreter.steps

    def invoke(self, export: str, args: Sequence[WasmValue] = ()) -> list[WasmValue]:
        return self.interpreter.invoke(self.instance, export, list(args))

    def reset(self) -> None:
        """Restore the post-initialization image in place.

        Memory resets through :meth:`~repro.wasm.LinearMemory.reset` (an
        identity-preserving, resizing restore), globals/table/funcs through
        slice assignment, and the engine's ``steps``/``max_steps`` go back to
        their captured values — so the next invocation observes exactly what
        it would on a fresh instance.
        """

        instance, image = self.instance, self.image
        if instance.memory is not None:
            instance.memory.reset(image.memory)
        instance.globals[:] = image.globals
        instance.table[:] = image.table
        instance.funcs[:] = image.funcs
        self.interpreter.steps = image.steps
        self.interpreter.max_steps = image.max_steps
        self.generation += 1


@dataclass
class PoolStats:
    created: int = 0
    acquired: int = 0
    released: int = 0
    resets: int = 0
    reset_failures: int = 0
    discarded: int = 0

    @property
    def reuses(self) -> int:
        return self.acquired - self.created


class InstancePool:
    """A pool of reusable instances of one Wasm module.

    ``setup`` (``setup(interpreter, instance)``) runs once per fresh
    instance, after instantiation and before the image capture — the place
    for ``_init`` exports or host-driven warm-up whose effects should be part
    of the pooled baseline.  ``host_imports`` may be a dict (shared — only
    safe for stateless hosts) or a zero-argument factory called once per
    fresh instance.

    Passing an :class:`~repro.wasm.engine.ExecutionEngine` *instance* as
    ``engine`` is rejected: pooled entries each need their own engine, or
    their step budgets would pollute each other.
    """

    def __init__(
        self,
        module: WasmModule,
        *,
        engine: Optional[str] = None,
        max_steps: Optional[int] = None,
        host_imports=None,
        setup: Optional[Callable[[WasmInterpreter, WasmInstance], None]] = None,
        max_size: int = 4,
    ) -> None:
        from ..wasm.engine import ExecutionEngine

        if isinstance(engine, ExecutionEngine):
            raise TypeError(
                "InstancePool needs an engine *name* (or None); a shared engine "
                "instance would pool step counters across pooled instances"
            )
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.module = module
        self.engine = engine
        self.max_steps = max_steps
        self._host_imports = host_imports
        self._setup = setup
        self.max_size = max_size
        self._free: list[PooledInstance] = []
        self._in_use = 0
        self.stats = PoolStats()

    # -- lifecycle ---------------------------------------------------------

    def _resolve_hosts(self) -> Optional[dict[tuple[str, str], HostFunction]]:
        hosts = self._host_imports
        if hosts is None or isinstance(hosts, dict):
            return hosts
        return hosts()

    def _fresh(self) -> PooledInstance:
        interpreter = WasmInterpreter(max_steps=self.max_steps, engine=self.engine)
        instance = interpreter.instantiate(self.module, self._resolve_hosts())
        if self._setup is not None:
            self._setup(interpreter, instance)
        image = InstanceImage.capture(interpreter, instance)
        self.stats.created += 1
        _POOL_INSTANTIATIONS.inc()
        return PooledInstance(interpreter, instance, image)

    def acquire(self) -> PooledInstance:
        """Take an instance — a recycled one when available, else fresh."""

        entry = self._free.pop() if self._free else self._fresh()
        self._in_use += 1
        self.stats.acquired += 1
        return entry

    def release(self, entry: PooledInstance) -> None:
        """Reset ``entry`` and return it to the pool (or discard at capacity).

        A failed reset (e.g. a host function kept a zero-copy memory view
        alive past its call, so the resizing restore raises ``BufferError``)
        never propagates: the un-resettable instance is discarded — the next
        acquire builds a fresh one — and counted in ``stats.reset_failures``.
        Callers releasing in a ``finally`` (the batch runner) therefore keep
        their request outcome, and isolation holds either way: the broken
        instance is gone.
        """

        self._in_use -= 1
        self.stats.released += 1
        try:
            entry.reset()
        except Exception:
            self.stats.reset_failures += 1
            self.stats.discarded += 1
            _POOL_RESET_FAILURES.inc()
            _POOL_DISCARDS.inc()
            return
        self.stats.resets += 1
        _POOL_RESETS.inc()
        if len(self._free) < self.max_size:
            self._free.append(entry)
        else:
            self.stats.discarded += 1
            _POOL_DISCARDS.inc()

    @contextmanager
    def instance(self):
        """``with pool.instance() as entry: entry.invoke(...)``"""

        entry = self.acquire()
        try:
            yield entry
        finally:
            self.release(entry)

    # -- introspection -----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._free) + self._in_use

    @property
    def idle(self) -> int:
        return len(self._free)

    def warm(self, count: int) -> None:
        """Pre-create instances up to ``count`` idle entries."""

        while len(self._free) < min(count, self.max_size):
            self._free.append(self._fresh())
