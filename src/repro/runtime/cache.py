"""Content-hash-keyed memoization of the compile pipeline.

Every request through the naive path pays link → lower → optimize → decode
from source.  :class:`ModuleCache` memoizes each of those stages separately
under content hashes, so a serving process compiles each distinct program
exactly once and every later request reuses the artifacts:

* **link** — ``{name: RichWasm Module}`` → linked ``Module``;
* **lower** — linked ``Module`` (+ lowering/optimization parameters) →
  :class:`~repro.lower.LoweredModule` (optimization runs inside this stage
  when requested, so the cached artifact is the optimized module);
* **decode** — lowered :class:`~repro.wasm.ast.WasmModule` →
  :class:`~repro.wasm.decode.DecodedModule`, the per-module flat code every
  :class:`~repro.wasm.engine.FlatVMEngine` instance shares;
* **translate** — lowered ``WasmModule`` →
  :class:`~repro.wasm.pygen.ModuleTranslation`, the generated Python source
  (and its exec'd function objects) the compiled tier runs.  The artifact is
  instance-independent, so a content hit seeds the per-object memo
  (:func:`repro.wasm.pygen.adopt_translation`) and a structurally identical
  module skips source generation and ``exec`` entirely.

* **typecheck** — RichWasm ``Module`` → its
  :class:`~repro.core.typing.ModuleCheckResult` (threaded into linking, so
  re-linking overlapping module sets re-checks nothing).

Keys are SHA-256 digests of the (immutable) ASTs plus the compile-relevant
configuration — the canonical :meth:`repro.api.CompileConfig.content_key`
(legacy keyword callers are bridged onto the same keyspace).  Since PR 5 the
digests come from :func:`repro.core.syntax.structural_digest` — a recursive
structural hash cached on interned type nodes and frozen AST dataclasses —
instead of hashing whole ``repr`` strings, so re-keying a module only walks
the parts not digested before.  Keys stay deterministic across processes
(the digest covers class names, enum member names and primitive field
values, never ``id()`` or ``hash()``) and hashing by content rather than
identity means two independently built but structurally identical programs
share one compile; the stages are keyed separately, so e.g. two different
module sets that link to the same module still share the lowering and
decode.

:meth:`ModuleCache.compile_program` runs the whole pipeline and returns a
:class:`CompiledProgram` bundle, the unit the instance pool and batch runner
consume.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..compilepipe import FunctionUnitCache
from ..core.syntax import Module
from ..core.syntax.intern import structural_digest
from ..lower import LoweredModule, lower_module
from ..obs.metrics import default_registry
from ..wasm import validate_module
from ..wasm.ast import WasmModule
from ..wasm.decode import DecodedModule, adopt_decode, decode_module

# Process-wide cache telemetry: one counter, labeled by stage and outcome
# (hit/miss here; the facade records its bypass decisions under the same
# name).  The per-cache integer view stays on ``ModuleCache.stats``.
_CACHE_EVENTS = default_registry().counter(
    "runtime.cache.events", "ModuleCache stage lookups by stage/outcome"
)


def content_key(*parts: object) -> str:
    """SHA-256 digest over the structural digest of each part.

    The ASTs on every pipeline boundary (surface modules, RichWasm, Wasm)
    are frozen dataclasses built from tuples, enums and primitives;
    :func:`repro.core.syntax.structural_digest` hashes exactly that
    structure and caches the digest on every frozen node it visits, so equal
    trees produce equal keys regardless of object identity (and regardless
    of the producing process), while re-keying an already-digested module is
    a cache lookup rather than a full-tree ``repr``.
    """

    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(structural_digest(part))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _program_fingerprint(richwasm, config_key: str, override) -> Optional[str]:
    """A cheap, collision-safe fingerprint of the program-key inputs.

    ``None`` when the module resists pickling — the caller falls back to
    the structural walk.
    """

    try:
        blob = pickle.dumps(
            ("program", richwasm, config_key, override),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception:
        return None
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one pipeline stage.

    :meth:`record` is the *only* increment path: it bumps the integer view
    and mirrors the event to the process-wide ``runtime.cache.events``
    counter under one lock, so the two views cannot drift apart (previously
    each stage method incremented both separately, with nothing keeping a
    future call site from updating one and not the other).  ``evictions``
    only moves for bounded/durable tiers (the in-memory stages never evict;
    the :class:`repro.cluster.DiskCache` stages do).
    """

    stage: str = ""
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def record(self, event: str) -> None:
        with self._lock:
            if event == "hit":
                self.hits += 1
            elif event == "evict":
                self.evictions += 1
            else:
                self.misses += 1
            _CACHE_EVENTS.inc(stage=self.stage, event=event)

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0


@dataclass
class CompiledProgram:
    """The fully compiled, shareable form of one program.

    Everything here is immutable or treated as such: instances built from it
    share ``wasm`` (and therefore the module-level ``decoded`` flat code) but
    never mutate it.  ``key`` is the content hash the cache filed the program
    under.  ``config`` records the :class:`repro.api.CompileConfig` the
    program was compiled under (``None`` for pre-facade callers);
    ``diagnostics`` the :class:`repro.api.Diagnostics` of the most recent
    facade call that produced or returned this artifact.
    """

    richwasm: Module
    lowered: LoweredModule
    engine: Optional[str] = None
    config: Optional[object] = None
    diagnostics: Optional[object] = None
    #: The key the cache filed the program under; ``None`` off the cache
    #: paths until :attr:`key` is first read (hashing the whole program AST
    #: is measurable, so uncached one-shot compiles do not pay it eagerly).
    cached_key: Optional[str] = None

    @property
    def key(self) -> str:
        if self.cached_key is None:
            config_key = self.config.content_key() if self.config is not None else None
            self.cached_key = content_key("program", self.richwasm, config_key, None)
        return self.cached_key

    @property
    def wasm(self) -> WasmModule:
        return self.lowered.wasm

    @property
    def decoded(self) -> DecodedModule:
        return decode_module(self.lowered.wasm)

    def instantiate(self, *, host_imports=None, max_steps=None, engine=None):
        """Instantiate on a fresh engine: ``(interpreter, instance)``."""

        return self.lowered.instantiate(
            host_imports=host_imports,
            max_steps=max_steps,
            engine=engine if engine is not None else self.engine,
        )

    def instance_pool(self, **kwargs) -> "InstancePool":
        """An :class:`~repro.runtime.InstancePool` recycling instances of
        this program (keyword arguments forwarded to the pool)."""

        from .pool import InstancePool

        kwargs.setdefault("engine", self.engine)
        return InstancePool(self.wasm, **kwargs)


class ModuleCache:
    """Memoizes link/lower/decode so each program compiles once.

    One cache serves many programs; per-stage :class:`CacheStats` live in
    ``stats``.  The cache is unbounded by design — a serving tier hosts a
    fixed catalogue of programs — but :meth:`clear` drops everything.

    ``disk`` optionally attaches a durable tier (a
    :class:`repro.cluster.DiskCache`), making the lookup order *memory →
    disk → compile* for the picklable stages (``link``, ``lower``,
    ``program``): a memory miss consults the disk store before compiling,
    and every freshly compiled artifact is filed to disk, so a different
    process sharing the cache directory warm-starts instead of recompiling.
    ``decode`` and ``translate`` stay process-local — their artifacts embed
    resolved handlers and ``exec``'d callables — and are recomputed from the
    disk-loaded Wasm (a small fraction of a cold compile).  The disk tier's
    per-stage hit/miss/evict stats appear in :attr:`stats` under
    ``disk.<stage>`` names.
    """

    def __init__(self, disk=None) -> None:
        self._linked: dict[str, Module] = {}
        self._lowered: dict[str, LoweredModule] = {}
        self._decoded: dict[str, DecodedModule] = {}
        self._translated: dict[str, object] = {}
        self._programs: dict[str, CompiledProgram] = {}
        self._typechecked: dict[str, object] = {}
        #: Function-granular units under the module-level stages: a miss at
        #: module granularity (one edited function) still reuses every
        #: unchanged function's typecheck/lower/optimize/validate/decode/
        #: translate work through this cache.
        self.units = FunctionUnitCache()
        #: The durable tier (duck-typed ``get``/``put``/``stats``; see
        #: :class:`repro.cluster.DiskCache`), or ``None`` for memory-only.
        self.disk = disk
        #: The :class:`repro.parcompile.ParcompileReport` of the most recent
        #: :meth:`lower` (or warm-program translate) that ran with
        #: ``compile_workers > 1``; ``None`` after serial compiles.  The
        #: facade reads this to populate ``Diagnostics.parcompile``.
        self.last_parcompile = None
        self._memory_stats: dict[str, CacheStats] = {
            stage: CacheStats(stage)
            for stage in ("typecheck", "link", "lower", "decode", "translate", "program")
        }

    @property
    def stats(self) -> dict[str, CacheStats]:
        """Per-stage stats: the memory stages plus the attached disk tier's
        ``disk.<stage>`` entries (one merged view for ``Service.stats``)."""

        if self.disk is None:
            return self._memory_stats
        return {**self._memory_stats, **self.disk.stats}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(
            f"{stage}={len(store)}"
            for stage, store in (
                ("link", self._linked),
                ("lower", self._lowered),
                ("decode", self._decoded),
                ("translate", self._translated),
            )
        )
        return f"ModuleCache({sizes})"

    def clear(self) -> None:
        """Drop every stage table (module- and function-granular) and zero
        the statistics.

        Artifacts the cache already handed out — `CompiledProgram`s held by
        callers, translations adopted into the per-object pygen memo, decode
        artifacts pinned by live instances — are owned by their consumers
        and keep working; clearing only forgets the content-keyed indexes.
        """

        self._linked.clear()
        self._lowered.clear()
        self._decoded.clear()
        self._translated.clear()
        self._programs.clear()
        self._typechecked.clear()
        self.units.clear()
        for stats in self.stats.values():
            stats.reset()

    # -- stage: typecheck --------------------------------------------------

    def typecheck(self, module: Module):
        """Type-check a RichWasm module, memoized by content.

        Returns the :class:`~repro.core.typing.ModuleCheckResult` (raises the
        usual ``RichWasmTypeError`` subclass on ill-typed modules — failures
        are not cached).  :meth:`link` threads this into
        :func:`repro.ffi.link.link_modules`, so a library module shared by
        many programs is checked once per cache, not once per link.
        """

        from ..core.typing import check_module

        key = content_key("typecheck", module)
        result = self._typechecked.get(key)
        if result is not None:
            self._memory_stats["typecheck"].record("hit")
            return result
        self._memory_stats["typecheck"].record("miss")
        result = check_module(module, unit_cache=self.units)
        self._typechecked[key] = result
        return result

    def typecheck_known(self, module: Module) -> bool:
        """Whether ``module``'s check result is already memoized (no stats
        counted, no check performed) — lets the facade skip a standalone
        whole-module check when lowering will drive the checker anyway."""

        return content_key("typecheck", module) in self._typechecked

    # -- stage: link -------------------------------------------------------

    def link(self, modules: dict[str, Module], *, name: str = "linked", check: bool = True) -> Module:
        """Statically link ``modules`` (memoized by content).

        ``check=False`` skips the cross-module import/export re-check —
        safe when the modules came from an already-checked ``Program``
        (the :class:`repro.api.CompileConfig.check_links` toggle).  The
        per-module and linked-result type checks run through the memoized
        :meth:`typecheck` stage.
        """

        from ..ffi.link import link_modules

        key = content_key("link", name, sorted(modules), [modules[k] for k in sorted(modules)])
        linked = self._linked.get(key)
        if linked is None and self.disk is not None:
            linked = self.disk.get("link", key)
            if linked is not None:
                self._linked[key] = linked
        if linked is not None:
            self._memory_stats["link"].record("hit")
            return linked
        self._memory_stats["link"].record("miss")
        linked = link_modules(modules, name=name, check=check, checker=self.typecheck)
        self._linked[key] = linked
        if self.disk is not None:
            self.disk.put("link", key, linked)
        return linked

    # -- stage: lower (+ optimize) ----------------------------------------

    def lower(
        self,
        richwasm: Module,
        *,
        memory_pages: int = 4,
        optimize: bool = False,
        passes=None,
        engine: Optional[str] = None,
        validate: bool = True,
        config=None,
    ) -> LoweredModule:
        """Lower (and optionally optimize) ``richwasm``, memoized by content.

        The stage key is ``content_key(richwasm, config.content_key())`` —
        callers without a :class:`repro.api.CompileConfig` get one built
        from the legacy keywords, so both surfaces share a single keyspace.
        An explicit ``passes`` list overrides the config's pipeline (and is
        folded into the key by pass name).

        Hits return a shallow copy so callers can adjust bookkeeping fields
        (``engine``) without contaminating the cached artifact; the expensive
        payload (``wasm``, and with it the decode memo) stays shared.
        """

        config = self._config_of(
            config, memory_pages=memory_pages, optimize=optimize, validate=validate
        )
        if engine is None:
            engine = config.engine
        override = None if passes is None else tuple(p.name for p in passes)
        key = content_key("lower", richwasm, config.content_key(), override)
        lowered = self._lowered.get(key)
        if lowered is None and self.disk is not None:
            lowered = self.disk.get("lower", key)
            if lowered is not None:
                self._lowered[key] = lowered
        self.last_parcompile = None
        if lowered is None:
            self._memory_stats["lower"].record("miss")
            report = None
            if getattr(config, "compile_workers", 1) > 1:
                # Pre-seed the function-unit cache from a worker pool; the
                # serial pipeline below recomposes from the seeds, so the
                # result is bit-identical to a serial compile (and any pool
                # failure just means fewer seeds).
                from ..parcompile import precompute_function_units

                report = precompute_function_units(
                    richwasm, config, self.units, disk=self.disk, passes=passes
                )
            lowered = lower_module(richwasm, config=config, passes=passes, unit_cache=self.units)
            if config.validate_wasm:
                validate_module(lowered.wasm, unit_cache=self.units)
            if getattr(config, "compile_workers", 1) > 1 and engine == "compiled":
                from ..parcompile import precompute_translate_units

                report = precompute_translate_units(
                    lowered.wasm, config, self.units, disk=self.disk, report=report
                )
            self.last_parcompile = report
            self._lowered[key] = lowered
            if self.disk is not None:
                self.disk.put("lower", key, replace(lowered, engine=None, diagnostics=None))
        else:
            self._memory_stats["lower"].record("hit")
        return replace(lowered, engine=engine, diagnostics=None)

    # -- stage: decode -----------------------------------------------------

    def decode(self, wasm: WasmModule) -> DecodedModule:
        """Flat-decode ``wasm``, memoized once per object by the module-level
        memo in :mod:`repro.wasm.decode`.

        Always returns *this object's* decode — the artifact the flat VM
        actually executes — never a structurally-equal twin's (the engine
        resolves flat code by module identity).  The content-keyed side
        table only pins the artifact alive and feeds the hit/miss stats;
        content-level sharing already happens one stage earlier, where
        :meth:`lower` dedupes equal programs to a single ``WasmModule``
        object.
        """

        key = content_key("decode", wasm)
        self._memory_stats["decode"].record("hit" if key in self._decoded else "miss")
        decoded = decode_module(wasm, unit_cache=self.units)
        self._decoded[key] = decoded
        return decoded

    # -- stage: translate --------------------------------------------------

    def translate(self, wasm: WasmModule):
        """Translate ``wasm`` to compiled-tier Python source, memoized by
        content.

        Misses run :func:`repro.wasm.pygen.translate_module` (itself
        memoized per module object); hits seed the per-object memo with the
        cached :class:`~repro.wasm.pygen.ModuleTranslation`
        (:func:`~repro.wasm.pygen.adopt_translation`).  Unlike decode —
        which the flat VM resolves by module identity — the translation is
        instance-independent, so sharing one artifact across structurally
        identical module objects is sound: all mutable state flows through
        the per-instance runtime object at call time.
        """

        from ..wasm.pygen import adopt_translation, translate_module

        key = content_key("translate", wasm)
        translation = self._translated.get(key)
        if translation is not None:
            self._memory_stats["translate"].record("hit")
            adopt_translation(wasm, translation)
            return translation
        self._memory_stats["translate"].record("miss")
        translation = translate_module(wasm, unit_cache=self.units)
        self._translated[key] = translation
        return translation

    # -- stage: program (the memoized bundle) ------------------------------

    def program_key(self, richwasm: Module, config, passes=None) -> str:
        """The program-level cache key: linked content + config content.

        With a disk tier attached, a *fingerprint shortcut* skips the
        structural walk on warm starts: the pickle bytes of the inputs hash
        in C speed, and the disk's ``key`` stage maps that fingerprint to
        the structural key computed the first time.  The shortcut is sound
        because pickle faithfully encodes the frozen AST — equal bytes imply
        equal structure, so a mapped key is always the key the walk would
        produce.  The converse does not hold (equal structures built with
        different internal sharing pickle differently), so a fingerprint
        miss only costs the ordinary structural digest, never correctness.
        """

        override = None if passes is None else tuple(p.name for p in passes)
        if self.disk is not None:
            fingerprint = _program_fingerprint(richwasm, config.content_key(), override)
            if fingerprint is not None:
                key = self.disk.get("key", fingerprint)
                if isinstance(key, str):
                    return key
                key = content_key("program", richwasm, config.content_key(), override)
                self.disk.put("key", fingerprint, key)
                return key
        return content_key("program", richwasm, config.content_key(), override)

    def get_program(self, key: str, *, engine: Optional[str] = None, config=None,
                    richwasm: Optional[Module] = None) -> Optional[CompiledProgram]:
        """Look a compiled program up (counted in ``stats["program"]``).

        The engine preference — and the config's other execution-bookkeeping
        fields (``max_steps``, ``pool_size``, cache policy) — are
        per-caller, not part of the compiled content: a hit under a
        different engine *or config* hands out a variant sharing the cached
        payload instead of silently serving the first caller's settings
        (e.g. dropping a later caller's step budget).

        With a disk tier attached and ``richwasm`` supplied, a memory miss
        consults the durable store: the payload there is the lowered module
        (pickle-safe, bookkeeping stripped), from which the process-local
        decode/translate artifacts are recomputed — a small fraction of the
        full compile the hit avoids.
        """

        self.last_parcompile = None
        program = self._programs.get(key)
        if program is None and self.disk is not None and richwasm is not None:
            lowered = self.disk.get("program", key)
            if lowered is not None:
                lowered = replace(lowered, engine=engine)
                flat = self.disk.get("decode", key)
                if flat is not None and len(flat) == len(lowered.wasm.functions):
                    adopt_decode(lowered.wasm, flat)
                self.decode(lowered.wasm)
                if engine == "compiled":
                    if config is not None and getattr(config, "compile_workers", 1) > 1:
                        # A disk-warm program still retranslates locally (the
                        # exec'd callables never persist) — pre-seed those
                        # units too, from the disk wire entries or the pool.
                        from ..parcompile import precompute_translate_units

                        self.last_parcompile = precompute_translate_units(
                            lowered.wasm, config, self.units, disk=self.disk
                        )
                    self.translate(lowered.wasm)
                program = CompiledProgram(
                    richwasm=richwasm, lowered=lowered, engine=engine,
                    config=config, cached_key=key,
                )
                self._programs[key] = program
        if program is None:
            self._memory_stats["program"].record("miss")
            return None
        self._memory_stats["program"].record("hit")
        if program.engine != engine or (config is not None and config != program.config):
            program = CompiledProgram(
                richwasm=program.richwasm,
                lowered=replace(program.lowered, engine=engine),
                engine=engine,
                config=config if config is not None else program.config,
                diagnostics=program.diagnostics,
                cached_key=key,
            )
        return program

    def put_program(self, key: str, richwasm: Module, lowered: LoweredModule, *,
                    engine: Optional[str] = None, config=None) -> CompiledProgram:
        program = CompiledProgram(
            richwasm=richwasm, lowered=lowered, engine=engine, config=config, cached_key=key
        )
        self._programs[key] = program
        if self.disk is not None:
            self.disk.put("program", key, replace(lowered, engine=None, diagnostics=None))
            # Flat code is immutable plain data keyed by the same content
            # hash, so persisting it spares warm starts the per-function
            # decode + digest pass (see ``adopt_decode``).
            self.disk.put("decode", key, self.decode(lowered.wasm).flat)
        return program

    # -- the whole pipeline ------------------------------------------------

    def compile_program(
        self,
        modules,
        *,
        name: str = "linked",
        memory_pages: int = 4,
        optimize: bool = False,
        passes=None,
        engine: Optional[str] = None,
        config=None,
    ) -> CompiledProgram:
        """Link → lower → optimize → decode, every stage memoized.

        ``modules`` is a ``{name: RichWasm Module}`` mapping (e.g. from
        :meth:`repro.ffi.InteropScenario.modules`), an
        :class:`repro.ffi.Program`, or a single already-linked RichWasm
        :class:`Module`.  A :class:`repro.api.CompileConfig` supersedes the
        individual keywords (and is what :func:`repro.api.compile` passes).
        """

        config = self._config_of(config, memory_pages=memory_pages, optimize=optimize, name=name)
        richwasm = self._as_linked(modules, name=config.link_name, check=config.check_links)
        if engine is None:
            engine = config.engine
        key = self.program_key(richwasm, config, passes)
        program = self.get_program(key, engine=engine, config=config, richwasm=richwasm)
        if program is None:
            lowered = self.lower(richwasm, config=config, passes=passes, engine=engine)
            self.decode(lowered.wasm)
            if engine == "compiled":
                self.translate(lowered.wasm)
            program = self.put_program(key, richwasm, lowered, engine=engine, config=config)
        return program

    def _config_of(self, config, *, memory_pages: int = 4, optimize: bool = False,
                   validate: bool = True, name: str = "linked"):
        """The legacy-keyword → config bridge keeping one cache keyspace."""

        if config is not None:
            return config
        from ..api.config import CompileConfig

        return CompileConfig(
            opt_level="O2" if optimize else "O0",
            memory_pages=memory_pages,
            validate_wasm=validate,
            link_name=name,
            cache="private",
        )

    def _as_linked(self, modules, *, name: str, check: bool = True) -> Module:
        if isinstance(modules, Module):
            return modules
        if hasattr(modules, "modules") and not isinstance(modules, dict):
            modules = modules.modules  # repro.ffi.Program
        if callable(modules):
            modules = modules()
        if not isinstance(modules, dict):
            raise TypeError(
                "compile_program expects a {name: Module} dict, a Program, or a linked Module; "
                f"got {type(modules).__name__}"
            )
        # Always link, even a singleton: linking namespaces the exports
        # (``module.export``), so this path stays interchangeable with
        # ``Program.lower()``.
        return self.link(modules, name=name, check=check)
