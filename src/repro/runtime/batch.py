"""Batch execution: many independent requests over pooled instances.

:class:`BatchRunner` is the run-many half of the runtime layer: it drives a
stream of :class:`Request`\\ s (export + args, optionally a per-request
``max_steps`` budget) against an :class:`~repro.runtime.InstancePool`.
Each request gets a freshly-reset instance, so requests are isolated from
each other: a trap (including a blown step budget) is recorded on that
request's :class:`RequestOutcome` and the instance's state is discarded by
the pool reset — later requests never observe it.

Per-request budgets are expressed against the engine's *cumulative* counter
(``max_steps = steps_now + budget``), so a budget always means "this many
steps for this request" regardless of what the pooled engine executed
before; the pool reset restores the baseline afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..wasm.interpreter import WasmTrap, WasmValue
from .pool import InstancePool


@dataclass(frozen=True)
class Request:
    """One invocation: an export name, its arguments, an optional budget."""

    export: str
    args: tuple = ()
    max_steps: Optional[int] = None


@dataclass(frozen=True)
class Session:
    """A stateful request: a whole call script served by *one* pooled
    instance under one budget (e.g. Fig. 9's init → tick* → total)."""

    calls: tuple = ()  # of (export, args)
    max_steps: Optional[int] = None

    @property
    def export(self) -> str:  # uniform display with Request
        return f"<session:{len(self.calls)} calls>"

    @property
    def args(self) -> tuple:
        return ()


@dataclass(frozen=True)
class RequestOutcome:
    """What one request observed: results or a trap, and its step cost."""

    request: Request
    ok: bool
    values: Optional[list[WasmValue]]
    trap: Optional[str]
    steps: int


@dataclass
class BatchReport:
    """Aggregate statistics over one :meth:`BatchRunner.run`."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.outcomes)

    @property
    def ok_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def trap_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def total_steps(self) -> int:
        return sum(outcome.steps for outcome in self.outcomes)

    @property
    def requests_per_sec(self) -> Optional[float]:
        return self.requests / self.wall_s if self.wall_s else None

    def traps(self) -> list[RequestOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def format_report(self) -> str:
        lines = [
            f"batch: {self.requests} request(s), {self.ok_count} ok, {self.trap_count} trapped, "
            f"{self.total_steps} steps in {self.wall_s:.4f}s"
            + (f" ({self.requests_per_sec:,.0f} req/s)" if self.requests_per_sec else "")
        ]
        for outcome in self.traps():
            lines.append(f"  TRAP {outcome.request.export}{outcome.request.args!r}: {outcome.trap}")
        return "\n".join(lines)


def _normalize_requests(requests: Sequence[Union[Request, "Session", tuple]]) -> list:
    normalized = []
    for request in requests:
        if isinstance(request, (Request, Session)):
            normalized.append(request)
        else:
            export, args = request[0], tuple(request[1]) if len(request) > 1 else ()
            budget = request[2] if len(request) > 2 else None
            normalized.append(Request(export, args, budget))
    return normalized


class BatchRunner:
    """Drives request batches over an instance pool with trap isolation."""

    def __init__(self, pool: InstancePool) -> None:
        self.pool = pool

    def run_one(self, request: Union[Request, Session, tuple]) -> RequestOutcome:
        if not isinstance(request, (Request, Session)):
            (request,) = _normalize_requests([request])
        entry = self.pool.acquire()
        try:
            interpreter = entry.interpreter
            before = interpreter.steps
            if request.max_steps is not None:
                budget = before + request.max_steps
                interpreter.max_steps = (
                    budget if interpreter.max_steps is None else min(interpreter.max_steps, budget)
                )
            try:
                if isinstance(request, Session):
                    values = [entry.invoke(export, tuple(args)) for export, args in request.calls]
                else:
                    values = entry.invoke(request.export, request.args)
                return RequestOutcome(request, True, values, None, interpreter.steps - before)
            except WasmTrap as trap:
                return RequestOutcome(request, False, None, str(trap), interpreter.steps - before)
        finally:
            self.pool.release(entry)

    def run(self, requests: Sequence[Union[Request, tuple]]) -> BatchReport:
        """Execute every request on its own pooled-reset instance."""

        report = BatchReport()
        start = time.perf_counter()
        for request in _normalize_requests(requests):
            report.outcomes.append(self.run_one(request))
        report.wall_s = time.perf_counter() - start
        return report
