"""Batch execution: many independent requests over pooled instances.

:class:`BatchRunner` is the run-many half of the runtime layer: it drives a
stream of :class:`Request`\\ s (export + args, optionally a per-request
``max_steps`` budget) against an :class:`~repro.runtime.InstancePool`.
Each request gets a freshly-reset instance, so requests are isolated from
each other: a trap (including a blown step budget) is recorded on that
request's :class:`RequestOutcome` and the instance's state is discarded by
the pool reset — later requests never observe it.

Per-request budgets are expressed against the engine's *cumulative* counter
(``max_steps = steps_now + budget``), so a budget always means "this many
steps for this request" regardless of what the pooled engine executed
before; the pool reset restores the baseline afterwards.

Every request is observable: :meth:`BatchRunner.run_one` runs under a
``request`` span (child of whatever span is active — a ``service.call``, a
benchmark phase — or a fresh trace), propagating an explicit
``Request.trace_id`` when the caller set one; traps are tagged on the span
and classified into stable :func:`classify_trap` kinds, and per-outcome
counters land in the :func:`repro.obs.default_registry`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..obs.metrics import default_registry
from ..obs.trace import get_tracer
from ..wasm.interpreter import WasmTrap, WasmValue
from .pool import InstancePool

_REQUESTS = default_registry().counter(
    "runtime.requests", "BatchRunner requests by outcome (ok/trap)"
)
_TRAPS = default_registry().counter(
    "runtime.traps", "trap-isolated request failures by classified kind"
)
_REQUEST_STEPS = default_registry().histogram(
    "runtime.request_steps", "engine steps consumed per request"
)

#: ``(substring, kind)`` patterns classifying trap messages, first match
#: wins.  Kinds are part of the obs stability contract: they appear as
#: metric labels and span attrs, so renames are schema-level changes.
_TRAP_KIND_PATTERNS = (
    ("step budget exhausted", "step_budget"),
    ("out-of-bounds memory access", "oob_memory"),
    ("unreachable executed", "unreachable"),
    ("out of table bounds", "table_bounds"),
    ("indirect call type mismatch", "call_type_mismatch"),
    ("division by zero", "div_by_zero"),
    ("remainder by zero", "rem_by_zero"),
    ("float-to-int conversion", "invalid_conversion"),
    ("conversion of NaN/inf", "invalid_conversion"),
    ("integer overflow", "int_overflow"),
    ("module has no memory", "no_memory"),
    ("branch escaped function body", "branch_escaped"),
)


def classify_trap(message: str) -> str:
    """Map a trap message onto its stable kind (``"other"`` when novel).

    Trap isolation stores only the message on the outcome; metric labels and
    span tags need a low-cardinality category, which is what these kinds
    are.
    """

    for needle, kind in _TRAP_KIND_PATTERNS:
        if needle in message:
            return kind
    return "other"


@dataclass(frozen=True)
class Request:
    """One invocation: an export name, its arguments, an optional budget.

    ``trace_id`` optionally pins the request's span to a caller-assigned
    trace (e.g. an id minted at an upstream process boundary); left ``None``,
    the span inherits the ambient trace or starts a fresh one.
    """

    export: str
    args: tuple = ()
    max_steps: Optional[int] = None
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class Session:
    """A stateful request: a whole call script served by *one* pooled
    instance under one budget (e.g. Fig. 9's init → tick* → total).

    ``session_id`` identifies the session for sticky routing: the
    :class:`repro.cluster.Dispatcher` hashes it so every session with the
    same id lands on the same worker process.  In-process execution ignores
    it (one pool, no routing).
    """

    calls: tuple = ()  # of (export, args)
    max_steps: Optional[int] = None
    trace_id: Optional[str] = None
    session_id: Optional[str] = None

    @property
    def export(self) -> str:  # uniform display with Request
        return f"<session:{len(self.calls)} calls>"

    @property
    def args(self) -> tuple:
        return ()


@dataclass(frozen=True)
class RequestOutcome:
    """What one request observed: results or a trap, and its step cost.

    ``trap_kind`` is the :func:`classify_trap` category of ``trap`` (``None``
    on success) — the structured field metric labels and dashboards key on,
    where the free-text message is for humans.  ``trace_id`` is the trace the
    request's span ran under (the request's own when set, else the span's;
    ``None`` only when tracing is disabled and the request carried no id).
    """

    request: Request
    ok: bool
    values: Optional[list[WasmValue]]
    trap: Optional[str]
    steps: int
    trap_kind: Optional[str] = None
    trace_id: Optional[str] = None


@dataclass
class BatchReport:
    """Aggregate statistics over one :meth:`BatchRunner.run`."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.outcomes)

    @property
    def ok_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def trap_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def total_steps(self) -> int:
        return sum(outcome.steps for outcome in self.outcomes)

    def trap_kinds(self) -> dict[str, int]:
        """Trapped-request counts by :func:`classify_trap` kind."""

        kinds: dict[str, int] = {}
        for outcome in self.outcomes:
            if not outcome.ok and outcome.trap_kind is not None:
                kinds[outcome.trap_kind] = kinds.get(outcome.trap_kind, 0) + 1
        return kinds

    @property
    def requests_per_sec(self) -> Optional[float]:
        return self.requests / self.wall_s if self.wall_s else None

    def traps(self) -> list[RequestOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def format_report(self) -> str:
        lines = [
            f"batch: {self.requests} request(s), {self.ok_count} ok, {self.trap_count} trapped, "
            f"{self.total_steps} steps in {self.wall_s:.4f}s"
            + (f" ({self.requests_per_sec:,.0f} req/s)" if self.requests_per_sec else "")
        ]
        for outcome in self.traps():
            kind = f" [{outcome.trap_kind}]" if outcome.trap_kind else ""
            lines.append(f"  TRAP {outcome.request.export}{outcome.request.args!r}{kind}: {outcome.trap}")
        return "\n".join(lines)


def _normalize_requests(requests: Sequence[Union[Request, "Session", tuple]]) -> list:
    normalized = []
    for request in requests:
        if isinstance(request, (Request, Session)):
            normalized.append(request)
        else:
            export, args = request[0], tuple(request[1]) if len(request) > 1 else ()
            budget = request[2] if len(request) > 2 else None
            normalized.append(Request(export, args, budget))
    return normalized


class BatchRunner:
    """Drives request batches over an instance pool with trap isolation."""

    def __init__(self, pool: InstancePool) -> None:
        self.pool = pool

    def run_one(self, request: Union[Request, Session, tuple]) -> RequestOutcome:
        if not isinstance(request, (Request, Session)):
            (request,) = _normalize_requests([request])
        with get_tracer().span("request", trace_id=request.trace_id, export=request.export) as span:
            entry = self.pool.acquire()
            try:
                interpreter = entry.interpreter
                before = interpreter.steps
                if request.max_steps is not None:
                    budget = before + request.max_steps
                    interpreter.max_steps = (
                        budget if interpreter.max_steps is None else min(interpreter.max_steps, budget)
                    )
                    span.set_attr(budget=request.max_steps)
                trace_id = span.trace_id or request.trace_id
                try:
                    if isinstance(request, Session):
                        values = [entry.invoke(export, tuple(args)) for export, args in request.calls]
                    else:
                        values = entry.invoke(request.export, request.args)
                    outcome = RequestOutcome(
                        request, True, values, None, interpreter.steps - before, trace_id=trace_id
                    )
                except WasmTrap as trap:
                    message = str(trap)
                    kind = classify_trap(message)
                    span.set_trap(message, kind=kind)
                    _TRAPS.inc(kind=kind)
                    outcome = RequestOutcome(
                        request, False, None, message, interpreter.steps - before,
                        trap_kind=kind, trace_id=trace_id,
                    )
                _REQUESTS.inc(outcome="ok" if outcome.ok else "trap")
                _REQUEST_STEPS.observe(outcome.steps)
                span.set_attr(steps=outcome.steps, ok=outcome.ok)
                return outcome
            finally:
                self.pool.release(entry)

    def run(self, requests: Sequence[Union[Request, tuple]]) -> BatchReport:
        """Execute every request on its own pooled-reset instance."""

        report = BatchReport()
        start = time.perf_counter()
        for request in _normalize_requests(requests):
            report.outcomes.append(self.run_one(request))
        report.wall_s = time.perf_counter() - start
        return report
