"""The compile-once / run-many execution service (the serving layer).

The ROADMAP's north star is heavy traffic; the naive path re-pays the whole
pipeline — link, type-directed lowering, optimization, flat decode,
instantiation — on *every* run.  This package is the standard serving
architecture for that shape of workload:

* :class:`ModuleCache` (:mod:`repro.runtime.cache`) — content-hash-keyed
  memoization of each pipeline stage (link → lower/optimize → decode), so a
  program compiles once and its :class:`CompiledProgram` artifacts are
  shared by every instance;
* :class:`InstancePool` (:mod:`repro.runtime.pool`) — recycles instances by
  resetting memory/globals/tables/steps to their post-initialization image
  instead of re-instantiating, bit-identically to a fresh instance (enforced
  by :func:`repro.opt.run_pool_reset_cross_check`);
* :class:`BatchRunner` (:mod:`repro.runtime.batch`) — drives request streams
  (single invocations or stateful :class:`Session` call scripts) over the
  pool with per-request ``max_steps`` budgets and per-request trap
  isolation.

:func:`scenario_service` wires all three up for an
:class:`repro.ffi.InteropScenario` (or one of the ``ffi.scenarios``
builders), running the linked program's ``_init`` exports as the pooled
baseline.
"""

from __future__ import annotations

from typing import Optional

from .batch import BatchReport, BatchRunner, Request, RequestOutcome, Session
from .cache import CacheStats, CompiledProgram, ModuleCache, content_key
from .pool import InstanceImage, InstancePool, PooledInstance, PoolStats

_DEFAULT_CACHE: Optional[ModuleCache] = None


def default_cache() -> ModuleCache:
    """The process-wide :class:`ModuleCache` (created on first use)."""

    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ModuleCache()
    return _DEFAULT_CACHE


def run_initializers_setup(interpreter, instance) -> None:
    """Pool ``setup`` hook running every ``<module>._init`` export, mirroring
    :meth:`repro.ffi.WasmProgramInstance.run_initializers`."""

    for export in instance.exports:
        if export.endswith("._init"):
            interpreter.invoke(instance, export)


def scenario_service(
    scenario,
    *,
    cache: Optional[ModuleCache] = None,
    engine: Optional[str] = None,
    optimize: bool = False,
    memory_pages: int = 4,
    max_steps: Optional[int] = None,
    pool_size: int = 4,
) -> BatchRunner:
    """A ready-to-serve :class:`BatchRunner` for an FFI interop scenario.

    ``scenario`` is an :class:`repro.ffi.InteropScenario`, one of the
    ``repro.ffi.scenarios`` builders (called with no arguments), or anything
    :meth:`ModuleCache.compile_program` accepts.  The scenario's modules are
    linked/lowered/decoded through ``cache`` (the process-wide default cache
    when ``None``) and served from an :class:`InstancePool` whose baseline
    image includes the program's ``_init`` exports.
    """

    if callable(scenario) and not hasattr(scenario, "modules"):
        scenario = scenario()
    cache = cache if cache is not None else default_cache()
    compiled = cache.compile_program(scenario, engine=engine, optimize=optimize, memory_pages=memory_pages)
    pool = compiled.instance_pool(
        max_steps=max_steps,
        setup=run_initializers_setup,
        max_size=pool_size,
    )
    return BatchRunner(pool)


__all__ = [
    "BatchReport",
    "BatchRunner",
    "CacheStats",
    "CompiledProgram",
    "InstanceImage",
    "InstancePool",
    "ModuleCache",
    "PoolStats",
    "PooledInstance",
    "Request",
    "RequestOutcome",
    "Session",
    "content_key",
    "default_cache",
    "run_initializers_setup",
    "scenario_service",
]
