"""The compile-once / run-many execution service (the serving layer).

The ROADMAP's north star is heavy traffic; the naive path re-pays the whole
pipeline — link, type-directed lowering, optimization, flat decode,
instantiation — on *every* run.  This package is the standard serving
architecture for that shape of workload:

* :class:`ModuleCache` (:mod:`repro.runtime.cache`) — content-hash-keyed
  memoization of each pipeline stage (link → lower/optimize → decode), so a
  program compiles once and its :class:`CompiledProgram` artifacts are
  shared by every instance;
* :class:`InstancePool` (:mod:`repro.runtime.pool`) — recycles instances by
  resetting memory/globals/tables/steps to their post-initialization image
  instead of re-instantiating, bit-identically to a fresh instance (enforced
  by :func:`repro.opt.run_pool_reset_cross_check`);
* :class:`BatchRunner` (:mod:`repro.runtime.batch`) — drives request streams
  (single invocations or stateful :class:`Session` call scripts) over the
  pool with per-request ``max_steps`` budgets and per-request trap
  isolation.

:func:`scenario_service` wires all three up for an
:class:`repro.ffi.InteropScenario` (or one of the ``ffi.scenarios``
builders), running the linked program's ``_init`` exports as the pooled
baseline.
"""

from __future__ import annotations

from typing import Optional

from .._compat import UNSET as _UNSET, legacy_config as _legacy_config
from .batch import BatchReport, BatchRunner, Request, RequestOutcome, Session
from .cache import CacheStats, CompiledProgram, ModuleCache, content_key
from .pool import InstanceImage, InstancePool, PooledInstance, PoolStats

_DEFAULT_CACHE: Optional[ModuleCache] = None


def default_cache() -> ModuleCache:
    """The process-wide :class:`ModuleCache` (created on first use)."""

    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ModuleCache()
    return _DEFAULT_CACHE


def run_initializers_setup(interpreter, instance) -> None:
    """Pool ``setup`` hook running every ``<module>._init`` export, mirroring
    :meth:`repro.ffi.WasmProgramInstance.run_initializers`."""

    for export in instance.exports:
        if export.endswith("._init"):
            interpreter.invoke(instance, export)


def scenario_service(
    scenario,
    *,
    config=None,
    cache: Optional[ModuleCache] = None,
    engine=_UNSET,
    optimize=_UNSET,
    memory_pages=_UNSET,
    max_steps=_UNSET,
    pool_size=_UNSET,
) -> BatchRunner:
    """A ready-to-serve :class:`BatchRunner` for an FFI interop scenario.

    ``scenario`` is an :class:`repro.ffi.InteropScenario`, one of the
    ``repro.ffi.scenarios`` builders (called with no arguments), or anything
    :func:`repro.api.compile` accepts.  The scenario is compiled and pooled
    via :func:`repro.api.serve` under ``config`` (a
    :class:`repro.api.CompileConfig`; the default policy is the process-wide
    shared cache, and ``cache=`` pins an explicit one); the pool's baseline
    image includes the program's ``_init`` exports.  The per-parameter
    keywords are the deprecated pre-:mod:`repro.api` surface (one
    :class:`DeprecationWarning` per call).
    """

    config = _legacy_config(
        "scenario_service", config,
        {
            "engine": engine,
            "optimize": optimize,
            "memory_pages": memory_pages,
            "max_steps": max_steps,
            "pool_size": pool_size,
        },
        cache_policy="shared",
    )
    from ..api import serve

    return serve(scenario, config, cache=cache).runner


__all__ = [
    "BatchReport",
    "BatchRunner",
    "CacheStats",
    "CompiledProgram",
    "InstanceImage",
    "InstancePool",
    "ModuleCache",
    "PoolStats",
    "PooledInstance",
    "Request",
    "RequestOutcome",
    "Session",
    "content_key",
    "default_cache",
    "run_initializers_setup",
    "scenario_service",
]
