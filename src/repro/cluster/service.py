""":class:`ClusterService` — the multi-process mirror of ``api.Service``.

Built by ``repro.api.serve(..., workers=N)`` for ``N > 1``: the parent
compiles once (populating the shared :class:`~repro.cluster.DiskCache` when
the config carries a ``cache_dir``), then ships the linked RichWasm module
to ``N`` worker processes, each of which builds its own single-process
:class:`~repro.api.Service` (pool + batch runner) — warm-starting from disk
rather than recompiling when a cache directory is shared.

The surface mirrors :class:`~repro.api.Service` call for call — ``call``
(raising :class:`~repro.wasm.interpreter.WasmTrap` on traps), ``run_one``,
``run``, ``session``, ``stats``, ``resolve``, ``exports``, ``diagnostics``
— with the execution fanned out by the :class:`~repro.cluster.Dispatcher`
(round-robin requests, sticky sessions, bounded queues, worker respawn).
Export resolution happens parent-side against the same export table, so
lenient names behave identically in both tiers.

The service is a context manager; :meth:`close` shuts the workers down
(``with api.serve(prog, workers=4) as svc: ...``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..api.service import resolve_export
from ..obs.metrics import merge_snapshots
from ..obs.trace import get_tracer
from ..runtime.batch import BatchReport, Request, RequestOutcome, Session, _normalize_requests
from ..wasm.interpreter import WasmTrap
from .dispatcher import Dispatcher, WorkerPool

__all__ = ["ClusterService", "ClusterStats"]


@dataclass(frozen=True)
class ClusterStats:
    """One snapshot across the whole cluster.

    ``workers`` maps slot → the worker's own record (pid, pool counters,
    cache stage stats); ``metrics`` is every worker's registry snapshot
    folded through :func:`repro.obs.merge_snapshots` (no double-counting);
    ``cache`` is the *parent-side* compile cache's stage stats (the workers'
    disk tiers report within their own records).
    """

    workers: dict = field(default_factory=dict)
    respawns: int = 0
    metrics: list = field(default_factory=list)
    cache: Optional[dict] = None


class ClusterService:
    """A compiled program served by N worker processes behind a dispatcher."""

    def __init__(
        self,
        compiled,
        config,
        *,
        cache=None,
        queue_depth: int = 32,
        backpressure: str = "block",
        start_method: Optional[str] = None,
        obs_jsonl_template: Optional[str] = None,
    ) -> None:
        self.compiled = compiled
        self.config = config
        self._cache = cache
        self._exports = tuple(sorted(compiled.wasm.exported_functions()))
        payload = {
            # Workers rebuild from the linked RichWasm (picklable across
            # spawn/fork); each runs a plain single-process serve.
            "richwasm": compiled.richwasm,
            "config": config.replace(workers=1),
        }
        if obs_jsonl_template:
            payload["obs_jsonl_template"] = obs_jsonl_template
        with get_tracer().span("cluster.start", workers=config.workers):
            self.pool = WorkerPool(
                payload,
                workers=config.workers,
                queue_depth=queue_depth,
                start_method=start_method,
            )
            self.dispatcher = Dispatcher(self.pool, backpressure=backpressure)
            self.pool.wait_ready()
        self._closed = False

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self.pool.handles)

    @property
    def exports(self) -> tuple[str, ...]:
        return self._exports

    @property
    def diagnostics(self):
        """The parent-side compile :class:`~repro.api.Diagnostics`."""

        return getattr(self.compiled, "diagnostics", None)

    def resolve(self, name: str) -> str:
        return resolve_export(self._exports, name)

    def stats(self) -> ClusterStats:
        """Cluster-wide counters: per-worker records + merged metrics."""

        workers = self.dispatcher.worker_stats()
        return ClusterStats(
            workers=workers,
            respawns=self.pool.respawns,
            metrics=merge_snapshots(
                *(record["metrics"] for record in workers.values())
            ),
            cache=dict(self._cache.stats) if self._cache is not None else None,
        )

    # -- execution ---------------------------------------------------------

    def call(self, export: str, args: Sequence = (), *, max_steps: Optional[int] = None):
        """One invocation on some worker; returns the result values.

        Traps raise :class:`WasmTrap` exactly like the in-process service —
        including the typed worker-death trap when the serving process dies
        mid-request.
        """

        with get_tracer().span("cluster.call", export=export):
            outcome = self.dispatcher.run_one(
                Request(self.resolve(export), tuple(args), max_steps)
            )
            if not outcome.ok:
                raise WasmTrap(outcome.trap)
            return outcome.values

    def run_one(self, request) -> RequestOutcome:
        """One :class:`Request`/:class:`Session` (or tuple), trap-isolated."""

        (request,) = _normalize_requests([request])
        return self.dispatcher.run_one(self._resolved(request))

    def run(self, requests) -> BatchReport:
        """A batch fanned out across the workers (bounded-queue throttled)."""

        resolved = [self._resolved(request) for request in _normalize_requests(requests)]
        with get_tracer().span("cluster.run", requests=len(resolved), workers=self.workers):
            return self.dispatcher.run(resolved)

    def session(self, calls, *, max_steps: Optional[int] = None,
                session_id: Optional[str] = None) -> RequestOutcome:
        """A stateful call script on one worker's pooled instance.

        ``session_id`` pins the script sticky: every session with the same
        id is served by the same worker process.
        """

        calls = tuple(calls)
        with get_tracer().span("cluster.session", calls=len(calls)):
            return self.run_one(
                Session(calls=calls, max_steps=max_steps, session_id=session_id)
            )

    def warm(self, count: int) -> None:
        """No-op mirror of ``Service.warm``: workers pre-warm their own
        pools at startup (the ready handshake covers it)."""

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.shutdown()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    def _resolved(self, request):
        if isinstance(request, Session):
            return dataclasses.replace(
                request,
                calls=tuple((self.resolve(export), tuple(args)) for export, args in request.calls),
            )
        return dataclasses.replace(request, export=self.resolve(request.export))
