"""``repro.cluster`` — sharded multi-process serving + the durable cache.

The scale-out tier over the single-process serving stack: PR 5's
deterministic content keys made compile artifacts shareable across
processes, and this package cashes that in twice —

* :class:`DiskCache` (:mod:`repro.cluster.diskcache`) — the on-disk
  :class:`~repro.runtime.ModuleCache` backend: content key → pickled
  artifact under a cache-root directory, atomic writes, version-stamped
  entries, corruption-tolerant reads (a bad entry is a miss + eviction,
  never a crash), mtime-LRU eviction under a byte budget.  Attached via
  ``CompileConfig(cache_dir=...)``, lookups tier memory → disk → compile,
  so a cold *process* with a warm cache directory skips the compile.
* :class:`WorkerPool` / :class:`Dispatcher`
  (:mod:`repro.cluster.dispatcher`) — N ``multiprocessing`` workers, each
  owning its own instance pool and batch runner warmed from the shared disk
  cache; round-robin requests, sticky sessions (``session_id`` hash →
  worker), bounded per-worker queues with block-or-fail backpressure,
  per-request trap isolation, worker-death detection with typed
  ``worker_died`` outcomes and respawn.
* :class:`ClusterService` (:mod:`repro.cluster.service`) — the
  :class:`~repro.api.Service`-mirroring surface ``repro.api.serve(...,
  workers=N)`` returns.

Quickstart::

    from repro import api

    with api.serve(sources, workers=4, cache_dir="/var/cache/repro") as svc:
        svc.call("m.tick", [3])
        svc.session([("m.init", []), ("m.tick", [1])], session_id="user-1")
"""

# Submodules load lazily (PEP 562): the facade reaches for DiskCache on
# every cache_dir-configured compile, and a disk-warm start should not pay
# for importing the multiprocessing dispatcher it may never use.
_EXPORTS = {
    "DISK_FORMAT": "diskcache",
    "DiskCache": "diskcache",
    "DiskEntry": "diskcache",
    "shared_disk_module_cache": "diskcache",
    "ClusterError": "dispatcher",
    "ClusterQueueFull": "dispatcher",
    "Dispatcher": "dispatcher",
    "WorkerPool": "dispatcher",
    "TRAP_KIND_WORKER_DIED": "dispatcher",
    "ClusterService": "service",
    "ClusterStats": "service",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "DISK_FORMAT",
    "DiskCache",
    "DiskEntry",
    "shared_disk_module_cache",
    "ClusterError",
    "ClusterQueueFull",
    "ClusterService",
    "ClusterStats",
    "Dispatcher",
    "WorkerPool",
    "TRAP_KIND_WORKER_DIED",
]
