"""The dispatcher: route requests across N worker processes.

:class:`Dispatcher` owns a :class:`WorkerPool` of ``multiprocessing``
workers (each running :func:`repro.cluster.worker.worker_main`) and routes
the same request objects :class:`~repro.runtime.BatchRunner` takes:

* stateless :class:`~repro.runtime.Request`\\ s go **round-robin** over the
  live workers;
* stateful :class:`~repro.runtime.Session`\\ s with a ``session_id`` route
  **sticky** — ``sha256(session_id) mod workers`` — so every script of the
  same session lands on the same worker process (and therefore observes the
  same pool; the hash is content-based, surviving respawns and restarts);

with **backpressure**: each worker's request queue is bounded
(``queue_depth``), and a submit against a full queue either blocks
(``backpressure="block"``, the default) or raises the typed
:class:`ClusterQueueFull` (``backpressure="fail"``).

Worker death is detected while collecting (a dead process with in-flight
requests): only *that worker's* in-flight requests fail — each with a typed
:class:`~repro.runtime.RequestOutcome` (``trap_kind="worker_died"``) — the
slot respawns with a fresh queue, and subsequent traffic proceeds.  Trap
isolation inside a live worker is exactly ``BatchRunner``'s: traps come back
as ``ok=False`` outcomes with their classified ``trap_kind``, never as
dispatcher errors.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import queue as queue_mod
import time
from typing import Optional, Sequence, Union

from ..obs.trace import get_tracer
from ..runtime.batch import (
    BatchReport,
    Request,
    RequestOutcome,
    Session,
    _normalize_requests,
)
from .worker import wire_to_outcome, worker_main

__all__ = ["ClusterError", "ClusterQueueFull", "Dispatcher", "WorkerPool", "TRAP_KIND_WORKER_DIED"]

#: ``RequestOutcome.trap_kind`` for requests lost to a dead worker — part of
#: the obs stability contract, alongside the ``classify_trap`` kinds.
TRAP_KIND_WORKER_DIED = "worker_died"

#: ``trap_kind`` for protocol-level worker errors (malformed request, unknown
#: export reaching the worker): the request failed, the worker lives on.
TRAP_KIND_WORKER_ERROR = "worker_error"


class ClusterError(RuntimeError):
    """A cluster-level failure (startup, protocol, shutdown)."""


class ClusterQueueFull(ClusterError):
    """Backpressure: the routed worker's bounded queue is full
    (``backpressure="fail"`` mode; ``"block"`` mode waits instead)."""


class _WorkerHandle:
    """One worker slot: process + its bounded request queue + in-flight ids."""

    __slots__ = ("slot", "process", "queue", "pending", "ready", "generation")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process = None
        self.queue = None
        self.pending: dict[int, object] = {}  # request id -> request object
        self.ready = False
        self.generation = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """Spawns and supervises the N worker processes.

    ``payload`` is the picklable bundle each worker builds its service from
    (linked RichWasm module + a ``workers=1`` config, optionally a per-worker
    ``obs_jsonl`` path template — ``{worker}`` expands to the slot index).
    """

    def __init__(
        self,
        payload: dict,
        *,
        workers: int,
        queue_depth: int = 32,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ClusterError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ClusterError(f"queue_depth must be >= 1, got {queue_depth}")
        self.payload = payload
        self.queue_depth = queue_depth
        self.context = mp.get_context(start_method)
        self.results = self.context.Queue()
        self.handles = [_WorkerHandle(slot) for slot in range(workers)]
        self.respawns = 0
        for handle in self.handles:
            self._spawn(handle)

    # -- lifecycle ---------------------------------------------------------

    def _worker_payload(self, slot: int) -> dict:
        payload = dict(self.payload)
        template = payload.pop("obs_jsonl_template", None)
        if template:
            payload["obs_jsonl"] = str(template).format(worker=slot)
        return payload

    def _spawn(self, handle: _WorkerHandle) -> None:
        # A fresh queue per (re)spawn: messages stranded in a dead worker's
        # queue belong to its generation and are failed by the reaper, never
        # replayed against the replacement.
        handle.queue = self.context.Queue(maxsize=self.queue_depth)
        handle.ready = False
        handle.generation += 1
        handle.process = self.context.Process(
            target=worker_main,
            args=(handle.slot, handle.queue, self.results, self._worker_payload(handle.slot)),
            daemon=True,
            name=f"repro-cluster-w{handle.slot}",
        )
        handle.process.start()

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every worker reports ready (startup errors raise)."""

        deadline = time.monotonic() + timeout
        while not all(h.ready for h in self.handles):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError("cluster startup timed out")
            try:
                record = self.results.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                for handle in self.handles:
                    if not handle.ready and not handle.alive:
                        raise ClusterError(
                            f"worker {handle.slot} died during startup "
                            f"(exitcode {handle.process.exitcode})"
                        )
                continue
            if record.get("op") == "ready":
                self.handles[record["worker"]].ready = True
            elif record.get("op") == "error":
                raise ClusterError(record.get("message") or "worker startup failed")

    def respawn(self, handle: _WorkerHandle) -> list:
        """Replace a dead worker; returns the requests it had in flight."""

        stranded = list(handle.pending.items())
        handle.pending.clear()
        self._spawn(handle)
        self.respawns += 1
        return stranded

    def shutdown(self, timeout: float = 5.0) -> None:
        for handle in self.handles:
            if handle.alive:
                try:
                    handle.queue.put({"op": "shutdown"}, timeout=timeout)
                except queue_mod.Full:
                    pass
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(timeout=timeout)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=timeout)
        self.results.close()
        for handle in self.handles:
            if handle.queue is not None:
                handle.queue.close()


class Dispatcher:
    """Routes requests over a :class:`WorkerPool` and collects outcomes."""

    def __init__(
        self,
        pool: WorkerPool,
        *,
        backpressure: str = "block",
        submit_timeout: float = 30.0,
        result_timeout: float = 60.0,
    ) -> None:
        if backpressure not in ("block", "fail"):
            raise ClusterError(
                f"backpressure must be 'block' or 'fail', got {backpressure!r}"
            )
        self.pool = pool
        self.backpressure = backpressure
        self.submit_timeout = submit_timeout
        self.result_timeout = result_timeout
        self._next_id = 0
        self._rr = 0  # round-robin cursor
        self._outcomes: dict[int, RequestOutcome] = {}  # collected, unclaimed
        self._stats_replies: dict[int, dict] = {}

    # -- routing -----------------------------------------------------------

    def route(self, request: Union[Request, Session]) -> int:
        """The worker slot ``request`` routes to (sticky or round-robin)."""

        session_id = getattr(request, "session_id", None)
        if session_id is not None:
            digest = hashlib.sha256(str(session_id).encode("utf-8")).digest()
            return int.from_bytes(digest[:8], "big") % len(self.pool.handles)
        slot = self._rr % len(self.pool.handles)
        self._rr += 1
        return slot

    def _wire_message(self, request: Union[Request, Session], request_id: int, trace_id) -> dict:
        if isinstance(request, Session):
            return {
                "op": "session", "id": request_id,
                "calls": [[export, list(args)] for export, args in request.calls],
                "max_steps": request.max_steps, "trace_id": trace_id,
                "session_id": request.session_id,
            }
        return {
            "op": "request", "id": request_id, "export": request.export,
            "args": list(request.args), "max_steps": request.max_steps,
            "trace_id": trace_id,
        }

    # -- submit / collect --------------------------------------------------

    def submit(self, request: Union[Request, Session, tuple], *,
               timeout: Optional[float] = None) -> int:
        """Enqueue one request; returns its id (claim with :meth:`collect`).

        Routing happens here; a dead target worker is respawned first (its
        stranded in-flight requests are failed into the outcome buffer).
        Backpressure applies per the dispatcher's mode: ``"fail"`` never
        blocks (a full queue raises :class:`ClusterQueueFull`); ``"block"``
        waits up to ``timeout`` (default ``submit_timeout``) before raising.
        """

        if not isinstance(request, (Request, Session)):
            (request,) = _normalize_requests([request])
        handle = self.pool.handles[self.route(request)]
        if not handle.alive:
            self._reap(handle)
        request_id = self._next_id
        self._next_id += 1
        # Propagate the ambient trace (or the request's own) across the
        # process boundary so the worker-side request span joins it.
        trace_id = request.trace_id
        if trace_id is None:
            span = get_tracer().current_span()
            trace_id = getattr(span, "trace_id", None)
        message = self._wire_message(request, request_id, trace_id)
        try:
            if self.backpressure == "fail":
                handle.queue.put(message, block=False)
            else:
                wait = self.submit_timeout if timeout is None else timeout
                handle.queue.put(message, timeout=wait)
        except queue_mod.Full:
            raise ClusterQueueFull(
                f"worker {handle.slot} queue is full "
                f"({self.pool.queue_depth} request(s) deep)"
            ) from None
        handle.pending[request_id] = request
        return request_id

    def collect(self, request_id: int) -> RequestOutcome:
        """Block until ``request_id``'s outcome arrives (buffering others)."""

        deadline = time.monotonic() + self.result_timeout
        while True:
            outcome = self._outcomes.pop(request_id, None)
            if outcome is not None:
                return outcome
            self._pump(deadline, waiting_for=request_id)

    def _pump(self, deadline: float, *, waiting_for: Optional[int] = None) -> None:
        """Drain one result-queue record (or reap dead workers on idle)."""

        try:
            record = self.pool.results.get(timeout=0.05)
        except queue_mod.Empty:
            self._reap_dead()
            if waiting_for is not None and waiting_for not in self._outcomes:
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"timed out waiting for request {waiting_for} "
                        f"({self.result_timeout}s)"
                    )
            return
        op = record.get("op")
        if op == "result":
            self._file_result(record)
        elif op == "error":
            self._file_error(record)
        elif op == "stats":
            self._stats_replies[record["id"]] = record["stats"]
        elif op == "ready":
            self.pool.handles[record["worker"]].ready = True

    def _file_result(self, record: dict) -> None:
        handle = self.pool.handles[record["worker"]]
        request = handle.pending.pop(record["id"], None)
        if request is None:
            return  # duplicate/stale (e.g. raced a reap that already failed it)
        self._outcomes[record["id"]] = wire_to_outcome(record["outcome"], request)

    def _file_error(self, record: dict) -> None:
        handle = self.pool.handles[record["worker"]]
        request = handle.pending.pop(record["id"], None)
        if request is None:
            if record.get("id") is None:
                raise ClusterError(record.get("message") or "worker error")
            return
        self._outcomes[record["id"]] = RequestOutcome(
            request=request, ok=False, values=None,
            trap=record.get("message") or "worker error", steps=0,
            trap_kind=TRAP_KIND_WORKER_ERROR, trace_id=request.trace_id,
        )

    # -- death handling ----------------------------------------------------

    def _reap_dead(self) -> None:
        for handle in self.pool.handles:
            if not handle.alive:
                self._reap(handle)

    def _reap(self, handle) -> None:
        """Fail the dead worker's in-flight requests (typed) and respawn."""

        exitcode = handle.process.exitcode if handle.process is not None else None
        for request_id, request in self.pool.respawn(handle):
            self._outcomes[request_id] = RequestOutcome(
                request=request, ok=False, values=None,
                trap=(
                    f"worker {handle.slot} died (exitcode {exitcode}) "
                    "with this request in flight"
                ),
                steps=0, trap_kind=TRAP_KIND_WORKER_DIED,
                trace_id=request.trace_id,
            )

    # -- batch surface -----------------------------------------------------

    def run_one(self, request: Union[Request, Session, tuple]) -> RequestOutcome:
        return self.collect(self.submit(request))

    def run(self, requests: Sequence[Union[Request, Session, tuple]]) -> BatchReport:
        """Submit a whole batch (interleaving collection under backpressure)
        and gather every outcome into a :class:`BatchReport`."""

        report = BatchReport()
        start = time.perf_counter()
        ids: list[int] = []
        for request in _normalize_requests(requests):
            deadline = time.monotonic() + self.submit_timeout
            while True:
                try:
                    # Short waits interleaved with result draining: under
                    # backpressure the submitter keeps consuming outcomes, so
                    # a bounded queue throttles rather than deadlocks.
                    ids.append(self.submit(request, timeout=0.05))
                    break
                except ClusterQueueFull:
                    if self.backpressure == "fail":
                        raise
                    if time.monotonic() > deadline:
                        raise
                    self._pump(deadline)
        report.outcomes.extend(self.collect(request_id) for request_id in ids)
        report.wall_s = time.perf_counter() - start
        return report

    # -- stats -------------------------------------------------------------

    def worker_stats(self) -> dict[int, dict]:
        """Per-slot stats records from every live worker (dead slots absent).

        Each record is the worker's ``{"pid", "pool", "cache", "metrics"}``
        bundle; merge the metrics with :func:`repro.obs.merge_snapshots`.
        """

        pending: dict[int, int] = {}
        for handle in self.pool.handles:
            if not handle.alive:
                continue
            request_id = self._next_id
            self._next_id += 1
            try:
                handle.queue.put({"op": "stats", "id": request_id}, timeout=self.submit_timeout)
            except queue_mod.Full:
                continue
            pending[request_id] = handle.slot
        stats: dict[int, dict] = {}
        deadline = time.monotonic() + self.result_timeout
        while pending and time.monotonic() < deadline:
            ready = [rid for rid in pending if rid in self._stats_replies]
            for request_id in ready:
                stats[pending.pop(request_id)] = self._stats_replies.pop(request_id)
            if not pending:
                break
            alive_slots = {h.slot for h in self.pool.handles if h.alive}
            pending = {rid: slot for rid, slot in pending.items() if slot in alive_slots}
            if not pending:
                break
            self._pump(deadline)
        return stats
