"""A persistent on-disk artifact cache: content key → pickled artifact.

:class:`DiskCache` is the durable tier under the in-memory
:class:`repro.runtime.ModuleCache`: compile artifacts (linked modules,
lowered modules, whole program payloads) are pickled under their content
keys in a cache-root directory, so a *different process* — a freshly
spawned cluster worker, a repeat CLI run — warm-starts from disk instead of
re-paying typecheck → lower → optimize.  PR 5 made the content keys
deterministic across processes (structural digests, no ``id()``/``hash()``
leakage) precisely so this sharing is sound: equal keys mean equal
artifacts, whichever process produced them.

Durability contract:

* **Atomic writes** — every entry is written to a same-directory temp file
  and published with :func:`os.replace`, so readers only ever observe a
  complete entry.  Two processes racing to write the same key both succeed;
  last-write-wins and both payloads are equivalent by construction (same
  key ⇒ same content).
* **Version stamp** — each entry embeds :data:`DISK_FORMAT` plus its stage
  and key; a mismatch (an old cache directory, a hash collision across
  stages) is a miss, and the stale entry is evicted.
* **Corruption tolerance** — a truncated, unreadable or unpicklable entry
  is *never* an error: it is treated as a miss, evicted, and recompiled.
  The cache is an accelerator; the compiler is always the fallback.
* **LRU eviction** — with a ``max_bytes`` budget, entries are evicted
  oldest-``mtime`` first after each write (reads touch the mtime, so the
  order is least-recently-*used*, not written).

Per-stage hit/miss/evict counts are kept in the same
:class:`~repro.runtime.cache.CacheStats` shape as the memory tier (stage
names prefixed ``disk.``) and mirror into the process-wide
``runtime.cache.events`` counter, so one obs report shows both tiers.
"""

from __future__ import annotations

import os
import pickle
import threading
from pathlib import Path
from typing import Optional, Union

from ..runtime.cache import CacheStats

__all__ = ["DISK_FORMAT", "DiskCache", "DiskEntry", "shared_disk_module_cache"]

#: Entry format version.  Bumped whenever the pickled payload layout (or
#: anything about how entries are interpreted) changes; a stamp mismatch is
#: a miss + eviction, never an attempt to read the old layout.
DISK_FORMAT = 1

_SUFFIX = ".pkl"


class DiskEntry:
    """One on-disk entry's metadata (introspection/eviction bookkeeping)."""

    __slots__ = ("stage", "key", "path", "size", "mtime")

    def __init__(self, stage: str, key: str, path: Path, size: int, mtime: float) -> None:
        self.stage = stage
        self.key = key
        self.path = path
        self.size = size
        self.mtime = mtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskEntry({self.stage}/{self.key[:12]}…, {self.size}B)"


class DiskCache:
    """Content-keyed pickle store under one cache-root directory.

    Safe for concurrent use by threads and processes: writes are atomic
    (temp file + ``os.replace``), reads tolerate entries vanishing mid-scan
    (another process's eviction), and a corrupt entry degrades to a miss.
    ``max_bytes`` bounds the total entry bytes with mtime-LRU eviction
    (``None`` = unbounded).

    Stage names are free-form directory names.  The module-level stages
    (``link``/``lower``/``program``/``decode``/``key``) are written by
    :class:`repro.runtime.ModuleCache`; parallel compiles
    (:mod:`repro.parcompile`) additionally publish per-function units under
    ``unit.<stage>`` names (e.g. ``unit.translate``) so workers of later
    compiles warm-read each other's function-granular work.
    """

    def __init__(self, root: Union[str, Path], *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be a positive int or None, got {max_bytes!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        #: Per-stage :class:`CacheStats` under ``disk.<stage>`` names; the
        #: ``record`` path mirrors every event into ``runtime.cache.events``.
        self.stats: dict[str, CacheStats] = {}
        self._lock = threading.Lock()
        self._tmp_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache({str(self.root)!r}, entries={len(self.entries())})"

    # -- stats -------------------------------------------------------------

    def _stats(self, stage: str) -> CacheStats:
        name = f"disk.{stage}"
        stats = self.stats.get(name)
        if stats is None:
            with self._lock:
                stats = self.stats.setdefault(name, CacheStats(name))
        return stats

    # -- paths -------------------------------------------------------------

    def _path(self, stage: str, key: str) -> Path:
        # Two-level fanout keeps directories small under large catalogues.
        return self.root / stage / key[:2] / (key + _SUFFIX)

    def _tmp_path(self, path: Path) -> Path:
        with self._lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        return path.with_name(f".{path.name}.{os.getpid()}.{counter}.tmp")

    # -- the store ---------------------------------------------------------

    def get(self, stage: str, key: str):
        """The payload filed under ``(stage, key)``, or ``None`` on a miss.

        Every failure mode of reading — missing file, truncated pickle,
        unpicklable payload, a foreign or version-mismatched stamp — is a
        miss; everything except "missing file" additionally evicts the bad
        entry.  A hit touches the entry's mtime (the LRU clock).
        """

        path = self._path(stage, key)
        stats = self._stats(stage)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            stats.record("miss")
            return None
        except Exception:
            # Truncated write from a crashed process, disk corruption, an
            # artifact pickled by an incompatible code version — evict and
            # recompile rather than ever crash the caller.
            stats.record("miss")
            self._evict(path, stats)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != DISK_FORMAT
            or entry.get("stage") != stage
            or entry.get("key") != key
        ):
            stats.record("miss")
            self._evict(path, stats)
            return None
        stats.record("hit")
        try:
            os.utime(path)
        except OSError:
            pass  # concurrently evicted; the payload in hand stays valid
        return entry["payload"]

    def put(self, stage: str, key: str, payload) -> bool:
        """File ``payload`` under ``(stage, key)``; ``True`` on success.

        The write is atomic (temp file + ``os.replace``) and failures —
        unpicklable payloads, a full or read-only disk — leave the cache
        unchanged and return ``False`` (the artifact still serves the
        in-memory tier; durability is best-effort).
        """

        path = self._path(stage, key)
        tmp = self._tmp_path(path)
        entry = {"format": DISK_FORMAT, "stage": stage, "key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        if self.max_bytes is not None:
            self._evict_over_budget()
        return True

    # -- eviction ----------------------------------------------------------

    def _evict(self, path: Path, stats: CacheStats) -> None:
        try:
            os.unlink(path)
        except OSError:
            return  # already gone (another process won the eviction race)
        stats.record("evict")

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries until total bytes fit the budget."""

        entries = self.entries()
        total = sum(entry.size for entry in entries)
        if total <= self.max_bytes:
            return
        for entry in sorted(entries, key=lambda e: e.mtime):
            self._evict(entry.path, self._stats(entry.stage))
            total -= entry.size
            if total <= self.max_bytes:
                return

    # -- introspection -----------------------------------------------------

    def entries(self) -> list[DiskEntry]:
        """Every entry currently on disk (races tolerated: a concurrently
        evicted file is simply absent from the listing)."""

        found: list[DiskEntry] = []
        try:
            stages = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            return found
        for stage_dir in stages:
            for path in stage_dir.glob(f"*/*{_SUFFIX}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append(
                    DiskEntry(stage_dir.name, path.stem, path, stat.st_size, stat.st_mtime)
                )
        return found

    def keys(self, stage: str) -> set[str]:
        """The keys currently stored under one stage (race-tolerant like
        :meth:`entries`) — the determinism tests compare these sets across
        serial and parallel compiles."""

        return {entry.key for entry in self.entries() if entry.stage == stage}

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def clear(self) -> None:
        """Remove every entry (the directory itself stays)."""

        for entry in self.entries():
            try:
                os.unlink(entry.path)
            except OSError:
                pass
        for stats in self.stats.values():
            stats.reset()


# ---------------------------------------------------------------------------
# the facade's "shared" policy over a cache directory
# ---------------------------------------------------------------------------

_SHARED_CACHES: dict[str, object] = {}
_SHARED_LOCK = threading.Lock()


def shared_disk_module_cache(cache_dir: Union[str, Path], *, max_bytes: Optional[int] = None):
    """The process-wide disk-backed :class:`~repro.runtime.ModuleCache` for
    ``cache_dir`` (one per resolved directory, like
    :func:`repro.runtime.default_cache` is one per process).

    Repeated facade calls under ``cache="shared"`` + the same ``cache_dir``
    share both tiers: the memory stage tables *and* the durable store.  A
    later call that supplies ``max_bytes`` retunes the existing store's
    budget rather than silently forking a second cache over the same
    directory.
    """

    from ..runtime.cache import ModuleCache

    key = os.path.realpath(os.fspath(cache_dir))
    with _SHARED_LOCK:
        cached = _SHARED_CACHES.get(key)
        if cached is None:
            cached = ModuleCache(disk=DiskCache(key, max_bytes=max_bytes))
            _SHARED_CACHES[key] = cached
        elif max_bytes is not None:
            cached.disk.max_bytes = max_bytes
        return cached
